//! Print the paper's coordination programs.
//!
//! Renders the Fig 2 (static), §V (2-CPU) and Fig 4 (dynamic) networks
//! back to S-Net source with the pretty-printer, and round-trips the
//! static net through parse → compile to show that the printed text is
//! a real program, not just a dump.
//!
//! ```text
//! cargo run --example show_networks
//! ```

use snet_apps::{image_slot, merger_net, raytracing_net, NetVariant};
use snet_lang::{compile, expr_source, extract_registry, to_source};

fn main() {
    let slot = image_slot();

    println!("=== Fig 3: the merger subnet ===\n");
    println!("{}\n", expr_source(&merger_net()));

    for (title, variant) in [
        ("Fig 2: static fork-join", NetVariant::Static),
        ("§V: 2-CPU static variant", NetVariant::Static2Cpu),
        ("Fig 4: dynamic token scheduling", NetVariant::Dynamic),
    ] {
        let net = raytracing_net(variant, slot.clone(), None);
        println!("=== {title} ===\n");
        println!("{}\n", to_source(&net).expect("printable"));
    }

    // The printed text is executable: parse and compile it back.
    let net = raytracing_net(NetVariant::Static, slot, None);
    let src = to_source(&net).expect("printable");
    let reg = extract_registry(&net);
    let reparsed = compile(&src, &reg).expect("the printed program re-compiles");
    assert_eq!(
        to_source(&reparsed).expect("printable"),
        src,
        "printing is a fixed point"
    );
    println!("round trip: print -> parse -> compile -> print is a fixed point: ok");
}
