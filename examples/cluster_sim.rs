//! One Fig 6 data point, dissected.
//!
//! Runs the static S-Net net and the MPI baseline on the simulated
//! 8-node testbed and prints what the simulator saw: virtual
//! makespans, runtime-overhead counters, bytes on the wire, process
//! counts. This is the experiment the paper's §V tables summarize,
//! at single-run granularity.
//!
//! ```text
//! cargo run --release --example cluster_sim -- [nodes] [size]
//! ```

use snet_apps::{run_mpi_raytrace, run_snet_cluster, SnetConfig, Workload};
use snet_dist::OverheadModel;
use snet_raytracer::ScenePreset;
use snet_simnet::ClusterSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let size: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);

    let wl = Workload {
        preset: ScenePreset::Clustered,
        spheres: 150,
        seed: 2010,
        width: size,
        height: size,
    };
    let cluster = ClusterSpec::paper_testbed(nodes);
    println!(
        "simulated testbed: {nodes} nodes x {} CPUs, {:.1} MB/s links, {:?} latency",
        cluster.cpus_per_node,
        cluster.link_bandwidth / 1e6,
        cluster.link_latency,
    );

    let reference = wl.reference_image();

    let snet = run_snet_cluster(
        &wl,
        &SnetConfig::fig6_static(nodes),
        cluster,
        OverheadModel::default(),
    )
    .expect("S-Net run completes");
    assert_eq!(snet.image, reference, "S-Net picture must be exact");

    let mpi = run_mpi_raytrace(&wl, nodes, 1, cluster).expect("MPI run completes");
    assert_eq!(mpi.image, reference, "MPI picture must be exact");

    println!("\nS-Net Static ({nodes} nodes)");
    println!("  virtual runtime : {:>10.3} s", snet.makespan_secs);
    println!("  processes       : {:>10}", snet.processes);
    println!("  events          : {:>10}", snet.events);
    println!("  record hops     : {:>10}", snet.stats.records_hopped);
    println!("  glue ops        : {:>10}", snet.stats.glue_ops);
    println!("  box ops         : {:>10}", snet.stats.box_ops);
    println!("  wire bytes      : {:>10}", snet.stats.wire_bytes);
    println!("  sync fires      : {:>10}", snet.stats.sync_fires);
    println!("  star unfoldings : {:>10}", snet.stats.star_unfoldings);
    let cpus = cluster.cpus_per_node as f64;
    print!("  CPU utilization :");
    for (i, busy) in snet.cpu_busy_secs.iter().enumerate() {
        print!(" n{i}={:.0}%", 100.0 * busy / (snet.makespan_secs * cpus));
    }
    println!(" (idle time = load imbalance)");

    println!("\nMPI baseline ({} ranks)", mpi.ranks);
    println!("  virtual runtime : {:>10.3} s", mpi.makespan_secs);

    let ratio = snet.makespan_secs / mpi.makespan_secs;
    println!(
        "\nS-Net/MPI ratio: {ratio:.3} — the coordination overhead the paper \
         reports amortizing from 2 nodes on"
    );
    println!("both pictures byte-identical to the sequential render: ok");
}
