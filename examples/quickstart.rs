//! Quickstart: build a tiny S-Net streaming network and run it.
//!
//! Demonstrates the core methodology of the paper in ~60 lines:
//! *algorithm engineering* is the plain `double` function; *concurrency
//! engineering* is the coordination source text; the two only meet at
//! the box signature. Flow inheritance carries labels the boxes never
//! mention.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use snet_core::boxdef::{BoxOutput, Work};
use snet_core::{Record, Value};
use snet_lang::{compile, BoxRegistry};
use snet_runtime::Net;

fn main() {
    // --- Algorithm engineering: an ordinary sequential function. -----
    // `double` knows nothing about streams, threads or routing.
    let mut registry = BoxRegistry::new();
    registry.register("double", |r: &Record| {
        let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
        Ok(BoxOutput::one(
            Record::new().with_field("x", Value::Int(2 * x)),
            Work::ops(1),
        ))
    });

    // --- Concurrency engineering: the coordination program. ----------
    // Records with field `x` are doubled `<n>` times by unrolling a
    // star; the filter decrements the counter after every pass.
    let source = r#"
        net repeat_double {
            box double ((x) -> (x));
        } connect
            ( double .. [ {<n>} -> {<n = n - 1>} ] ) * {<n> == 0}
    "#;
    let net = compile(source, &registry).expect("the program is well-formed");
    println!("network: {net}");

    // --- Execution: asynchronous components over bounded channels. ---
    let inputs: Vec<Record> = (1..=5)
        .map(|i| Record::new().with_field("x", Value::Int(i)).with_tag("n", i))
        .collect();
    let outputs = Net::new(net).run_batch(inputs).expect("runs to completion");

    let mut results: Vec<(i64, i64)> = outputs
        .iter()
        .map(|r| {
            (
                r.field("x").and_then(|v| v.as_int()).expect("x survives"),
                r.tag("n").expect("n survives"),
            )
        })
        .collect();
    results.sort_unstable();
    for (x, n) in &results {
        println!("x = {x:3}  (counter ended at {n})");
    }
    // i doubled i times = i * 2^i.
    assert_eq!(
        results,
        (1..=5).map(|i| (i << i, 0)).collect::<Vec<_>>(),
        "each record is doubled <n> times"
    );
    println!("ok: every record was doubled exactly <n> times");
}
