//! Quickstart: build a tiny S-Net streaming network and run it — as a
//! batch and as a live stream, on both concurrent engines.
//!
//! Demonstrates the core methodology of the paper in ~100 lines:
//! *algorithm engineering* is the plain `double` function; *concurrency
//! engineering* is the coordination source text; the two only meet at
//! the box signature. Flow inheritance carries labels the boxes never
//! mention. The same compiled network then runs unchanged on the
//! threaded engine (a thread per component, the paper's literal model)
//! and the scheduled engine (a persistent work-stealing worker pool),
//! through the engine-generic `Engine`/`StreamHandle` API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use snet_core::boxdef::{BoxOutput, Work};
use snet_core::{Record, Value};
use snet_lang::{compile, BoxRegistry};
use snet_runtime::{Engine, Net, SchedNet, StreamHandle};

/// Streams records one at a time through any engine: sends push against
/// the handle's bounded ingress while this thread drains outputs — the
/// continuous-stream execution mode the paper's runtime section is
/// about, as opposed to a one-shot batch.
fn stream_through<E: Engine>(engine: &E, inputs: Vec<Record>) -> Vec<(i64, i64)> {
    let handle = engine.start();
    let mut results = Vec::new();
    std::thread::scope(|s| {
        let h = &handle;
        s.spawn(move || {
            for rec in inputs {
                h.send(rec).expect("network accepts input");
            }
            h.close_input();
        });
        while let Some(r) = h.recv() {
            results.push((
                r.field("x").and_then(|v| v.as_int()).expect("x survives"),
                r.tag("n").expect("n survives"),
            ));
        }
    });
    handle.finish().expect("runs to completion");
    results.sort_unstable();
    results
}

fn main() {
    // --- Algorithm engineering: an ordinary sequential function. -----
    // `double` knows nothing about streams, threads or routing.
    let mut registry = BoxRegistry::new();
    registry.register("double", |r: &Record| {
        let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
        Ok(BoxOutput::one(
            Record::new().with_field("x", Value::Int(2 * x)),
            Work::ops(1),
        ))
    });

    // --- Concurrency engineering: the coordination program. ----------
    // Records with field `x` are doubled `<n>` times by unrolling a
    // star; the filter decrements the counter after every pass.
    let source = r#"
        net repeat_double {
            box double ((x) -> (x));
        } connect
            ( double .. [ {<n>} -> {<n = n - 1>} ] ) * {<n> == 0}
    "#;
    let net = compile(source, &registry).expect("the program is well-formed");
    println!("network: {net}");

    let inputs: Vec<Record> = (1..=5)
        .map(|i| {
            Record::new()
                .with_field("x", Value::Int(i))
                .with_tag("n", i)
        })
        .collect();
    // i doubled i times = i * 2^i.
    let expected: Vec<(i64, i64)> = (1..=5).map(|i| (i << i, 0)).collect();

    // --- Execution: one-shot batch on the threaded engine. -----------
    let outputs = Net::new(net.clone())
        .run_batch(inputs.clone())
        .expect("runs to completion");
    let mut batch: Vec<(i64, i64)> = outputs
        .iter()
        .map(|r| {
            (
                r.field("x").and_then(|v| v.as_int()).expect("x survives"),
                r.tag("n").expect("n survives"),
            )
        })
        .collect();
    batch.sort_unstable();
    assert_eq!(batch, expected, "each record is doubled <n> times");
    println!("batch (threaded engine):");
    for (x, n) in &batch {
        println!("  x = {x:3}  (counter ended at {n})");
    }

    // --- Execution: the same net as a live stream, either engine. ----
    // `stream_through` is engine-generic: the threaded engine's bounded
    // entry channel and the scheduled engine's capped entry mailbox
    // both push back on the sender; outputs arrive while input is
    // still being fed.
    let threaded = Net::new(net.clone());
    let sched = SchedNet::new(net);
    for results in [
        stream_through(&threaded, inputs.clone()),
        stream_through(&sched, inputs),
    ] {
        assert_eq!(results, expected, "streaming preserves the batch semantics");
    }
    println!("streaming (threaded + sched engines): same results, fed record by record");
    println!("ok: every record was doubled exactly <n> times on every path");
}
