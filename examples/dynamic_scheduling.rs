//! Watch Fig 4's token-based dynamic scheduling at work.
//!
//! First runs the dynamic (token-scheduled) raytracing net *locally*,
//! streamed through the unified handle API on both real engines — the
//! thread-per-component engine and the persistent-pool scheduled
//! engine — to show the same coordination program executing live.
//! Then sweeps the token count for a fixed task count on the simulated
//! 8-node testbed and prints the resulting virtual runtimes — a single
//! row of Fig 5 — together with the synchrocell statistics that reveal
//! the mechanism: every tokenless section must win a token in a
//! `[| {sect}, {<node>} |]` synchrocell before it may run, and leftover
//! tokens strand in unfired cells when the stream ends.
//!
//! ```text
//! cargo run --release --example dynamic_scheduling -- [tasks] [size]
//! ```

use snet_apps::{
    image_slot, input_record, raytracing_net, run_snet_cluster, NetVariant, Schedule, SnetConfig,
    Workload,
};
use snet_dist::OverheadModel;
use snet_raytracer::ScenePreset;
use snet_runtime::{Engine, Net, SchedNet, StreamHandle};
use snet_simnet::ClusterSpec;

const NODES: usize = 8;

/// Streams the single input record of the raytracing net through any
/// engine and returns the wall time: the net's `genImg` sink consumes
/// the stream (the picture lands in the image slot), so the drain loop
/// simply waits for end-of-stream.
fn stream_locally<E: Engine>(engine: &E, wl: &Workload, cfg: &SnetConfig) -> std::time::Duration {
    let t0 = std::time::Instant::now();
    let handle = engine.start();
    handle.send(input_record(wl, cfg)).expect("input accepted");
    handle.close_input();
    while handle.recv().is_some() {}
    handle.finish().expect("render completes");
    t0.elapsed()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let tasks: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let size: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);

    // ---- Local streaming execution, both engines, unified API. ----
    let local_wl = Workload {
        preset: ScenePreset::Clustered,
        spheres: 35,
        seed: 2010,
        width: 96,
        height: 96,
    };
    let local_cfg = SnetConfig {
        variant: NetVariant::Dynamic,
        nodes: 4,
        tasks: 8,
        tokens: 4,
        schedule: Schedule::Block,
    };
    let reference_small = local_wl.reference_image();
    println!(
        "dynamic net streamed locally ({}x{} probe render, 8 tasks / 4 tokens):",
        96, 96
    );
    {
        let slot = image_slot();
        let threaded = Net::new(raytracing_net(NetVariant::Dynamic, slot.clone(), None));
        let took = stream_locally(&threaded, &local_wl, &local_cfg);
        let img = slot.lock().take().expect("picture produced");
        assert_eq!(img, reference_small, "threaded engine must render exactly");
        println!(
            "  {:>8}: {took:>10.3?} (thread per component)",
            threaded.name()
        );
    }
    {
        let slot = image_slot();
        let sched = SchedNet::new(raytracing_net(NetVariant::Dynamic, slot.clone(), None));
        let took = stream_locally(&sched, &local_wl, &local_cfg);
        let img = slot.lock().take().expect("picture produced");
        assert_eq!(img, reference_small, "scheduled engine must render exactly");
        println!(
            "  {:>8}: {took:>10.3?} (persistent worker pool)",
            sched.name()
        );
    }
    println!();

    let wl = Workload {
        preset: ScenePreset::Clustered,
        spheres: 150,
        seed: 2010,
        width: size,
        height: size,
    };
    let reference = wl.reference_image();
    println!("dynamic scheduling on {NODES} dual-CPU nodes, {tasks} tasks, {size}x{size} image");
    println!(
        "{:>7} {:>12} {:>12} {:>14} {:>15}",
        "tokens", "runtime (s)", "sync fires", "tokens stranded", "star unfoldings"
    );

    let mut best = (0u32, f64::INFINITY);
    for tokens in [4u32, 8, 16, 32, 48, 64] {
        let tokens = tokens.min(tasks);
        let cfg = SnetConfig {
            variant: NetVariant::Dynamic,
            nodes: NODES,
            tasks,
            tokens,
            schedule: Schedule::Block,
        };
        let out = run_snet_cluster(
            &wl,
            &cfg,
            ClusterSpec::paper_testbed(NODES),
            OverheadModel::default(),
        )
        .expect("dynamic run completes");
        assert_eq!(out.image, reference, "picture must stay exact");
        println!(
            "{tokens:>7} {:>12.3} {:>12} {:>14} {:>15}",
            out.makespan_secs,
            out.stats.sync_fires,
            out.stats.sync_stranded,
            out.stats.star_unfoldings,
        );
        if out.makespan_secs < best.1 {
            best = (tokens, out.makespan_secs);
        }
        if tokens == tasks {
            break; // more tokens than tasks changes nothing
        }
    }
    println!(
        "\nbest: {} tokens ({:.3} s) — the paper finds 16 (two per node, one per CPU)",
        best.0, best.1
    );
}
