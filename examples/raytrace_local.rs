//! Render the paper's case study on the local threaded engine.
//!
//! Runs the full Fig 2 network — `splitter .. solver!@<node> ..
//! merger .. genImg` — on this machine's threads (real parallelism,
//! not simulation), verifies the picture against the sequential
//! Algorithm 1 render, and writes it next to the target directory.
//!
//! ```text
//! cargo run --release --example raytrace_local -- [size] [tasks]
//! ```

use snet_apps::{run_snet_local, NetVariant, Schedule, SnetConfig, Workload};
use snet_raytracer::ScenePreset;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let tasks: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let wl = Workload {
        preset: ScenePreset::Clustered,
        spheres: 120,
        seed: 2010,
        width: size,
        height: size,
    };
    let cfg = SnetConfig {
        variant: NetVariant::Static,
        // On the threaded engine placement tags pick solver *instances*
        // (threads), not machines — more "nodes" means more render
        // threads.
        nodes: std::thread::available_parallelism().map_or(4, |n| n.get()),
        tasks,
        tokens: tasks,
        schedule: Schedule::Block,
    };

    println!(
        "rendering {size}x{size} ({tasks} sections over {} solver threads)…",
        cfg.nodes
    );
    let t0 = Instant::now();
    let image = run_snet_local(&wl, &cfg).expect("the network runs to completion");
    let parallel_time = t0.elapsed();

    let t1 = Instant::now();
    let reference = wl.reference_image();
    let sequential_time = t1.elapsed();

    assert_eq!(
        image, reference,
        "coordinated render must be byte-identical"
    );
    let out = std::path::Path::new("target").join("raytrace_local.ppm");
    image.write_ppm(&out).expect("write ppm");
    println!(
        "ok: image matches the sequential render (checksum {:#018x})",
        image.checksum()
    );
    println!(
        "S-Net threaded: {parallel_time:?}   sequential: {sequential_time:?}   -> {}",
        out.display()
    );
}
