//! Stress test: topology scale the thread-per-component engine cannot
//! reach.
//!
//! The generated network is a star whose body is a 16-branch parallel
//! composition of 16-deep box pipelines. Every star unfolding
//! instantiates ~290 component instances (16 × 16 boxes plus glue); a
//! 6-level unfolding is ~1,750 components. Under the threaded engine
//! that is ~1,750 OS threads *per run* — past default thread limits in
//! constrained environments and far past the point where spawn cost
//! dominates. The scheduled engine runs the same topology on a 4-worker
//! pool, and must still agree with the deterministic interpreter on the
//! output multiset.

use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::filter::OutputTemplate;
use snet_core::{BinOp, FilterSpec, NetSpec, Pattern, Record, TagExpr, Value, Variant};
use snet_runtime::{EngineConfig, Interp, SchedNet};

const WIDTH: usize = 16; // parallel branches
const DEPTH: usize = 16; // pipeline stages per branch
const ROUNDS: i64 = 6; // star unfoldings per record

/// A box consuming `{x}` and emitting `{x: x + 1}`.
fn inc_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("inc", &["x"], &[&["x"]]),
        |r| {
            let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("x", Value::Int(x + 1)),
                Work::ops(1),
            ))
        },
    ))
}

/// `[ {<n>} -> {<n = n - 1>} ]`.
fn dec_filter() -> NetSpec {
    NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
        vec![OutputTemplate::empty().set_tag(
            "n",
            TagExpr::bin(BinOp::Sub, TagExpr::tag("n"), TagExpr::Const(1)),
        )],
    ))
}

/// deep pipelines × wide parallel × star: the scaling shape every
/// later PR (sharding, batching, placement) has to survive.
fn stress_net() -> NetSpec {
    let branch = || NetSpec::pipeline((0..DEPTH).map(|_| inc_box()));
    let wide = NetSpec::parallel((0..WIDTH).map(|_| branch()).collect());
    let body = NetSpec::serial(wide, dec_filter());
    let exit = Pattern::guarded(
        Variant::empty(),
        TagExpr::bin(BinOp::Le, TagExpr::tag("n"), TagExpr::Const(0)),
    );
    NetSpec::star(body, exit)
}

fn batch(records: i64) -> Vec<Record> {
    (0..records)
        .map(|i| {
            Record::new()
                .with_field("x", Value::Int(i))
                .with_tag("n", ROUNDS)
        })
        .collect()
}

fn multiset(records: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = records.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

#[test]
fn deep_wide_star_topology_runs_on_a_small_worker_pool() {
    let inputs = batch(64);
    let expected = Interp::new(&stress_net())
        .run_batch(inputs.clone())
        .expect("oracle completes");
    // Every record makes ROUNDS passes, each adding DEPTH increments.
    assert!(expected.outputs.iter().all(|r| r.tag("n") == Some(0)));

    let net = SchedNet::with_config(
        stress_net(),
        EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        },
    );
    let (outs, trace) = net
        .run_batch_traced(inputs)
        .expect("sched engine completes");
    assert_eq!(multiset(&outs), multiset(&expected.outputs));

    // The topology really did reach stress scale: ROUNDS unfoldings,
    // each running 64 records through 16 × 16 boxes.
    use std::sync::atomic::Ordering;
    assert_eq!(trace.star_unfoldings.load(Ordering::Relaxed), ROUNDS as u64);
    assert_eq!(
        trace.box_ops.load(Ordering::Relaxed),
        64 * ROUNDS as u64 * DEPTH as u64,
    );
}

#[test]
fn stress_topology_is_repeatable_across_pool_sizes() {
    let inputs = batch(16);
    let expected = Interp::new(&stress_net())
        .run_batch(inputs.clone())
        .unwrap();
    for workers in [1usize, 2, 8] {
        let net = SchedNet::with_config(
            stress_net(),
            EngineConfig {
                workers,
                ..EngineConfig::default()
            },
        );
        let outs = net.run_batch(inputs.clone()).unwrap();
        assert_eq!(
            multiset(&outs),
            multiset(&expected.outputs),
            "workers = {workers}"
        );
    }
}
