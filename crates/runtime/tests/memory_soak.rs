//! Million-record soak: peak RSS stays under the bounded-memory
//! ceiling the streaming design promises.
//!
//! A feeder thread pushes 1M records through a depth-8 unfused pipeline
//! (nine mailboxes — the full hand-off graph, the worst case for
//! resident buffers) while the consumer is deliberately *throttled*, so
//! ingress backpressure and every per-component high-water mark are
//! actually exercised. Records in flight are bounded by
//! `channel_capacity` (ingress + egress channels) plus the
//! per-component high-water mark (`16 × channel_capacity`), so peak
//! RSS growth over the run must be a function of the topology and
//! configuration — **not** of the record count. Without bounded
//! channels (or with a leak in the recycling layer) a throttled
//! consumer lets the full million records pile up resident, which costs
//! ~100+ MB and fails the bound by an order of magnitude.

use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::{NetSpec, Record, Value};
use snet_runtime::{EngineConfig, SchedNet};

/// `VmHWM` (peak resident set) of this process in bytes (Linux).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|line| {
        let kb: u64 = line
            .strip_prefix("VmHWM:")?
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse()
            .ok()?;
        Some(kb * 1024)
    })
}

fn inc_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("inc", &["x"], &[&["x"]]),
        |r| {
            let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("x", Value::Int(x + 1)),
                Work::ops(1),
            ))
        },
    ))
}

#[test]
fn million_record_soak_stays_under_the_rss_ceiling() {
    // The full million in optimized builds; enough to dwarf the ceiling
    // by >10x in debug builds too, without a multi-minute test step.
    let records: usize = if cfg!(debug_assertions) {
        250_000
    } else {
        1_000_000
    };
    const DEPTH: usize = 8;
    let config = EngineConfig {
        fuse: false,
        ..EngineConfig::default()
    };
    let net = SchedNet::with_config(NetSpec::pipeline((0..DEPTH).map(|_| inc_box())), config);

    // Warm-up run: worker threads (stacks!), pools, and channel
    // capacities all come into existence here, so the measured growth
    // below is the streaming steady state, not one-time setup.
    let outs = net
        .run_batch(
            (0..1024)
                .map(|i| Record::new().with_field("x", Value::Int(i)))
                .collect(),
        )
        .expect("warm-up run failed");
    assert_eq!(outs.len(), 1024);

    let Some(before) = peak_rss_bytes() else {
        eprintln!("no /proc/self/status; skipping RSS soak on this platform");
        return;
    };

    let handle = net.start();
    let received = std::thread::scope(|scope| {
        let feeder = {
            let handle = &handle;
            scope.spawn(move || {
                for i in 0..records {
                    // Blocking send: parks on the ingress bound whenever
                    // the throttled consumer lets the pipeline back up.
                    handle
                        .send(Record::new().with_field("x", Value::Int(i as i64)))
                        .expect("send failed");
                }
                handle.close_input();
            })
        };
        let mut received = 0usize;
        let mut check = 0u64;
        while let Some(rec) = handle.recv() {
            check += rec.field("x").and_then(|v| v.as_int()).unwrap_or(0) as u64;
            received += 1;
            // Throttle: pause the consumer every 8k records so the
            // backpressure path (full egress channel, high-water
            // yields, parked feeder) is genuinely exercised.
            if received.is_multiple_of(8192) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        feeder.join().expect("feeder panicked");
        // Spot-check the stream actually flowed through all stages:
        // sum of (i + DEPTH) over 0..records.
        let expect: u64 = (0..records as u64).sum::<u64>() + records as u64 * DEPTH as u64;
        assert_eq!(check, expect);
        received
    });
    handle.finish().expect("run failed");
    assert_eq!(received, records);

    let after = peak_rss_bytes().expect("VmHWM read before, must read after");
    let growth = after.saturating_sub(before);

    // The ceiling, derived from the configuration: records in flight
    // are bounded by the ingress channel + one high-water mark per
    // component (DEPTH boxes + sink) + the egress channel, each record
    // costing well under 1 KiB here. Everything else (pool freelists,
    // deferred heap, trace counters) is configuration-sized too. 16 MiB
    // of slack covers allocator fragmentation and thread-cache noise; a
    // million resident records (~100+ MB) fails by an order of
    // magnitude, in debug-mode record counts too.
    let cap = config.channel_capacity;
    let high_water = cap * 16;
    let in_flight = cap + (DEPTH + 1) * high_water + cap;
    let ceiling = 16 * 1024 * 1024 + (in_flight as u64) * 1024;
    eprintln!(
        "soak: {records} records, RSS growth {:.1} MiB (ceiling {:.1} MiB, \
         {in_flight} bounded in-flight records)",
        growth as f64 / (1024.0 * 1024.0),
        ceiling as f64 / (1024.0 * 1024.0),
    );
    assert!(
        growth < ceiling,
        "peak RSS grew {growth} bytes over the soak — past the {ceiling}-byte \
         ceiling derived from channel_capacity={cap}; streaming memory must \
         not scale with record count"
    );
}
