//! Robustness properties under deterministic fault injection.
//!
//! Every test drives the same content-keyed chaos schedules
//! ([`snet_runtime::faultinject`]) through the reference interpreter,
//! the threaded engine, and the scheduled engine, so the *same* records
//! fault in each — which is what lets us assert convergence, dead-letter
//! partitioning, and cross-engine parity rather than merely "it didn't
//! crash".

use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::{NetSpec, Record, SnetError, Value};
use snet_runtime::faultinject::{chaos, chaos_with_stats, FaultSpec};
use snet_runtime::{Engine, EngineConfig, FailurePolicy, Interp, Net, SchedNet, StreamHandle};
use std::time::Duration;

/// A box consuming `{x}` and emitting `{x: x + 1}`.
fn inc_box() -> BoxDef {
    BoxDef::from_fn(BoxSig::parse("inc", &["x"], &[&["x"]]), |r| {
        let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
        Ok(BoxOutput::one(
            Record::new().with_field("x", Value::Int(x + 1)),
            Work::ops(1),
        ))
    })
}

fn inputs(n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new().with_field("x", Value::Int(i)))
        .collect()
}

fn multiset(records: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = records.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

/// The retry policy used throughout: enough attempts to outlast every
/// bounded schedule below, with a negligible backoff so tests stay fast.
fn retry() -> FailurePolicy {
    FailurePolicy::Retry {
        max_attempts: 4,
        backoff: Duration::from_micros(10),
    }
}

#[test]
fn retry_converges_to_fault_free_output_on_all_engines() {
    let spec = FaultSpec::errors(0xfeed, 3, 2); // every 3rd record fails twice
    let expected = Interp::new(&NetSpec::Box(inc_box()))
        .run_batch(inputs(40))
        .unwrap();

    // Fresh chaos wrap per engine: the per-record fault budget lives in
    // the wrapper, and a shared one would let the first run spend it.
    for run in [
        |net: NetSpec, cfg: EngineConfig| Net::with_config(net, cfg).run_batch(inputs(40)),
        |net: NetSpec, cfg: EngineConfig| SchedNet::with_config(net, cfg).run_batch(inputs(40)),
    ] {
        let (flaky, stats) = chaos_with_stats(&inc_box(), spec);
        let cfg = EngineConfig {
            policy: retry(),
            ..EngineConfig::default()
        };
        let outs = run(NetSpec::Box(flaky), cfg).unwrap();
        assert_eq!(multiset(&outs), multiset(&expected.outputs));
        assert!(stats.injected() > 0, "schedule injected nothing");
    }

    let (flaky, stats) = chaos_with_stats(&inc_box(), spec);
    let interp = Interp::new(&NetSpec::Box(flaky)).with_policy(retry());
    let res = interp.run_batch(inputs(40)).unwrap();
    assert_eq!(multiset(&res.outputs), multiset(&expected.outputs));
    assert!(res.dead_letters.is_empty());
    assert!(stats.injected() > 0);
}

#[test]
fn retry_recovers_from_formatted_panics() {
    // Panic payloads here are `String`s (formatted), exercising the
    // catch-site downcast on every engine.
    let spec = FaultSpec::panics(0xabad, 2, 1);
    let expected = Interp::new(&NetSpec::Box(inc_box()))
        .run_batch(inputs(24))
        .unwrap();
    let cfg = EngineConfig {
        policy: retry(),
        ..EngineConfig::default()
    };

    let (flaky, stats) = chaos_with_stats(&inc_box(), spec);
    let outs = Net::with_config(NetSpec::Box(flaky), cfg)
        .run_batch(inputs(24))
        .unwrap();
    assert_eq!(multiset(&outs), multiset(&expected.outputs));
    assert!(stats.injected() > 0);

    let (flaky, stats) = chaos_with_stats(&inc_box(), spec);
    let outs = SchedNet::with_config(NetSpec::Box(flaky), cfg)
        .run_batch(inputs(24))
        .unwrap();
    assert_eq!(multiset(&outs), multiset(&expected.outputs));
    assert!(stats.injected() > 0);
}

#[test]
fn retry_counts_surface_in_the_trace() {
    let spec = FaultSpec::errors(0xfeed, 3, 2);
    let (flaky, stats) = chaos_with_stats(&inc_box(), spec);
    let cfg = EngineConfig {
        policy: retry(),
        ..EngineConfig::default()
    };
    let report = SchedNet::with_config(NetSpec::Box(flaky), cfg)
        .run_batch_report(inputs(40))
        .unwrap();
    let retries = report.trace.get(&report.trace.retries);
    assert_eq!(retries, stats.injected(), "each injection costs one retry");
    assert!(retries > 0);
}

/// Predicts the fault partition for permanent faults: records the
/// schedule selects are diverted, the rest flow through.
fn partition(spec: FaultSpec, batch: &[Record]) -> (Vec<Record>, Vec<Record>) {
    batch.iter().cloned().partition(|r| spec.selects(r))
}

#[test]
fn dead_letter_partitions_the_input_set() {
    let spec = FaultSpec::errors(0x0dead, 3, u32::MAX); // permanent
    let batch = inputs(30);
    let (doomed, healthy) = partition(spec, &batch);
    assert!(
        !doomed.is_empty() && !healthy.is_empty(),
        "degenerate schedule"
    );
    let expected_outputs = Interp::new(&NetSpec::Box(inc_box()))
        .run_batch(healthy.clone())
        .unwrap();

    let cfg = EngineConfig {
        policy: FailurePolicy::DeadLetter,
        ..EngineConfig::default()
    };

    let check = |outputs: Vec<Record>, dead: Vec<snet_runtime::DeadLetter>, engine: &str| {
        assert_eq!(
            outputs.len() + dead.len(),
            batch.len(),
            "{engine}: outputs + dead letters must partition the input set"
        );
        assert_eq!(
            multiset(&outputs),
            multiset(&expected_outputs.outputs),
            "{engine}"
        );
        let dead_recs: Vec<Record> = dead.iter().map(|d| d.record.clone()).collect();
        assert_eq!(multiset(&dead_recs), multiset(&doomed), "{engine}");
        for d in &dead {
            assert_eq!(d.report.component, "inc", "{engine}");
            assert_eq!(d.report.attempts, 1, "{engine}");
            assert!(
                matches!(d.report.cause, SnetError::BoxFailure { .. }),
                "{engine}: cause was {:?}",
                d.report.cause
            );
        }
    };

    let report = Net::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg)
        .run_batch_report(batch.clone())
        .unwrap();
    check(report.outputs, report.dead_letters, "threaded");

    let report = SchedNet::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg)
        .run_batch_report(batch.clone())
        .unwrap();
    check(report.outputs, report.dead_letters, "sched");

    let res = Interp::new(&NetSpec::Box(chaos(&inc_box(), spec)))
        .with_policy(FailurePolicy::DeadLetter)
        .run_batch(batch.clone())
        .unwrap();
    check(res.outputs, res.dead_letters, "interp");
}

#[test]
fn engines_agree_on_the_error_variant_under_fail_fast() {
    // Permanent faults on every record: each engine must report the
    // injected BoxFailure (whichever record wins the race to fail).
    let spec = FaultSpec::errors(7, 1, u32::MAX);
    let batch = inputs(8);

    let interp_err = Interp::new(&NetSpec::Box(chaos(&inc_box(), spec)))
        .run_batch(batch.clone())
        .unwrap_err();
    let threaded_err = Net::new(NetSpec::Box(chaos(&inc_box(), spec)))
        .run_batch(batch.clone())
        .unwrap_err();
    let sched_err = SchedNet::new(NetSpec::Box(chaos(&inc_box(), spec)))
        .run_batch(batch)
        .unwrap_err();

    for (engine, err) in [
        ("interp", &interp_err),
        ("threaded", &threaded_err),
        ("sched", &sched_err),
    ] {
        match err {
            SnetError::BoxFailure { name, cause } => {
                assert_eq!(name, "inc", "{engine}");
                assert!(cause.contains("injected fault"), "{engine}: {cause}");
            }
            other => panic!("{engine}: expected BoxFailure, got {other:?}"),
        }
    }
}

#[test]
fn engines_agree_on_dead_letter_survivors() {
    // Same permanent schedule, DeadLetter policy: all three engines
    // must keep the same survivors and divert the same records.
    let spec = FaultSpec::panics(0x5eed, 4, u32::MAX);
    let batch = inputs(32);
    let cfg = EngineConfig {
        policy: FailurePolicy::DeadLetter,
        ..EngineConfig::default()
    };

    let oracle = Interp::new(&NetSpec::Box(chaos(&inc_box(), spec)))
        .with_policy(FailurePolicy::DeadLetter)
        .run_batch(batch.clone())
        .unwrap();
    assert!(!oracle.dead_letters.is_empty(), "degenerate schedule");

    for (engine, report) in [
        (
            "threaded",
            Net::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg)
                .run_batch_report(batch.clone())
                .unwrap(),
        ),
        (
            "sched",
            SchedNet::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg)
                .run_batch_report(batch.clone())
                .unwrap(),
        ),
    ] {
        assert_eq!(
            multiset(&report.outputs),
            multiset(&oracle.outputs),
            "{engine}: surviving outputs diverge from the oracle"
        );
        let dead: Vec<Record> = report
            .dead_letters
            .iter()
            .map(|d| d.record.clone())
            .collect();
        let oracle_dead: Vec<Record> = oracle
            .dead_letters
            .iter()
            .map(|d| d.record.clone())
            .collect();
        assert_eq!(multiset(&dead), multiset(&oracle_dead), "{engine}");
    }
}

#[test]
fn glue_errors_divert_under_dead_letter() {
    // A split on `<k>` fed a record with no `<k>`: under FailFast that
    // is fatal; under DeadLetter the dispatcher diverts it and the rest
    // of the batch flows on. Same on all three engines.
    let net = NetSpec::split(NetSpec::Box(inc_box()), "k");
    let mut batch = vec![
        Record::new()
            .with_field("x", Value::Int(1))
            .with_tag("k", 0),
        Record::new().with_field("x", Value::Int(2)), // no <k>
        Record::new()
            .with_field("x", Value::Int(3))
            .with_tag("k", 1),
    ];
    let cfg = EngineConfig {
        policy: FailurePolicy::DeadLetter,
        ..EngineConfig::default()
    };

    let res = Interp::new(&net)
        .with_policy(FailurePolicy::DeadLetter)
        .run_batch(batch.clone())
        .unwrap();
    assert_eq!(res.outputs.len(), 2);
    assert_eq!(res.dead_letters.len(), 1);
    assert_eq!(res.dead_letters[0].report.component, "split-dispatch");
    assert!(matches!(
        res.dead_letters[0].report.cause,
        SnetError::MissingTag(_)
    ));

    for report in [
        Net::with_config(net.clone(), cfg)
            .run_batch_report(batch.clone())
            .unwrap(),
        SchedNet::with_config(net.clone(), cfg)
            .run_batch_report(batch.clone())
            .unwrap(),
    ] {
        assert_eq!(report.outputs.len(), 2);
        assert_eq!(report.dead_letters.len(), 1);
        assert_eq!(report.dead_letters[0].report.component, "split-dispatch");
    }

    // And FailFast still refuses.
    batch.rotate_left(1); // lead with the bad record to lose the race less
    assert!(matches!(
        Interp::new(&net).run_batch(batch).unwrap_err(),
        SnetError::MissingTag(_)
    ));
}

#[test]
fn streaming_dead_letters_arrive_on_the_handle() {
    let spec = FaultSpec::errors(0x0dead, 3, u32::MAX);
    let batch = inputs(30);
    let (doomed, _) = partition(spec, &batch);
    let cfg = EngineConfig {
        policy: FailurePolicy::DeadLetter,
        ..EngineConfig::default()
    };

    fn drive<E: Engine>(engine: &E, batch: Vec<Record>) -> (Vec<Record>, Vec<Record>) {
        let h = engine.start();
        let mut outs = Vec::new();
        let mut dead = Vec::new();
        std::thread::scope(|s| {
            let h = &h;
            s.spawn(move || {
                let _ = h.send_all(batch);
                h.close_input();
            });
            loop {
                while let Some(d) = h.try_recv_dead_letter() {
                    dead.push(d.record);
                }
                match h.recv() {
                    Some(r) => outs.push(r),
                    None => break,
                }
            }
        });
        while let Some(d) = h.try_recv_dead_letter() {
            dead.push(d.record);
        }
        h.finish().unwrap();
        (outs, dead)
    }

    let sched = SchedNet::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg);
    let (outs, dead) = drive(&sched, batch.clone());
    assert_eq!(outs.len() + dead.len(), batch.len());
    assert_eq!(multiset(&dead), multiset(&doomed));

    let net = Net::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg);
    let (outs, dead) = drive(&net, batch.clone());
    assert_eq!(outs.len() + dead.len(), batch.len());
    assert_eq!(multiset(&dead), multiset(&doomed));
}

#[test]
fn per_box_policy_overrides_the_engine_default() {
    // Two flaky boxes in series; only the first opts into DeadLetter.
    // The engine default is FailFast, so the second box's faults kill
    // the run — but a schedule that only ever hits the first box lets
    // the override show.
    let spec = FaultSpec::errors(0x0dd, 2, u32::MAX);
    let flaky = chaos(&inc_box(), spec).with_policy(FailurePolicy::DeadLetter);
    let net = NetSpec::serial(NetSpec::Box(flaky), NetSpec::Box(inc_box()));
    let batch = inputs(16);
    let (doomed, _) = partition(spec, &batch);
    assert!(!doomed.is_empty());

    // Engine default FailFast; the override still diverts.
    let report = SchedNet::new(net.clone())
        .run_batch_report(batch.clone())
        .unwrap();
    assert_eq!(report.dead_letters.len(), doomed.len());
    let report = Net::new(net).run_batch_report(batch).unwrap();
    assert_eq!(report.dead_letters.len(), doomed.len());
}

/// A net whose every activation stalls, for cancellation and deadline
/// tests: slow enough that a run over `n` records cannot finish before
/// the test reacts, fast enough to drain promptly afterwards.
fn stalling_net() -> NetSpec {
    NetSpec::Box(chaos(
        &inc_box(),
        FaultSpec::stalls(1, 1, Duration::from_millis(10)),
    ))
}

#[test]
fn cancel_reports_cancelled_and_leaves_the_pool_reusable() {
    let sched = SchedNet::with_config(
        stalling_net(),
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
    );

    let h = sched.start();
    for rec in inputs(200) {
        h.send(rec).unwrap();
    }
    // Partial outputs must remain retrievable across cancel.
    let first = h.recv().expect("at least one output before cancel");
    assert!(first.field("x").is_some());
    h.cancel();
    let mut drained = 1;
    while h.recv().is_some() {
        drained += 1;
    }
    assert!(drained < 200, "cancel did not stop the run");
    match h.finish() {
        Err(SnetError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // The pool survives: same workers, and the next run succeeds.
    let spawned = sched.workers_spawned();
    let outs = sched.run_batch(inputs(3)).unwrap();
    assert_eq!(outs.len(), 3);
    assert_eq!(sched.workers_spawned(), spawned, "cancel respawned workers");
}

#[test]
fn cancel_works_on_the_threaded_engine() {
    let net = Net::new(stalling_net());
    let h = net.start();
    for rec in inputs(100) {
        h.send(rec).unwrap();
    }
    let _ = h.recv().expect("one output before cancel");
    h.cancel();
    while h.recv().is_some() {}
    match h.finish() {
        Err(SnetError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn deadlines_expire_with_deadline_exceeded() {
    let cfg = EngineConfig {
        deadline: Some(Duration::from_millis(30)),
        ..EngineConfig::default()
    };
    let batch = inputs(100); // ~1s of stalls: cannot finish in 30ms

    match Net::with_config(stalling_net(), cfg).run_batch(batch.clone()) {
        Err(SnetError::DeadlineExceeded) => {}
        other => panic!("threaded: expected DeadlineExceeded, got {other:?}"),
    }
    match SchedNet::with_config(stalling_net(), cfg).run_batch(batch.clone()) {
        Err(SnetError::DeadlineExceeded) => {}
        other => panic!("sched: expected DeadlineExceeded, got {other:?}"),
    }
    match Interp::new(&stalling_net())
        .with_deadline(Duration::from_millis(30))
        .run_batch(batch)
    {
        Err(SnetError::DeadlineExceeded) => {}
        other => panic!("interp: expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn deadline_costs_nothing_when_disabled_and_run_still_completes() {
    // Fault machinery fully disabled: FailFast, no deadline. The run
    // must behave exactly as before the robustness work.
    let outs = SchedNet::new(NetSpec::Box(inc_box()))
        .run_batch(inputs(100))
        .unwrap();
    assert_eq!(outs.len(), 100);
}

#[test]
fn string_panic_payloads_reach_failure_reports() {
    // The chaos panic payload is formatted (a `String`); the catch
    // sites must extract it rather than reporting "non-string panic
    // payload".
    let spec = FaultSpec::panics(3, 1, u32::MAX);
    let cfg = EngineConfig {
        policy: FailurePolicy::DeadLetter,
        ..EngineConfig::default()
    };
    for report in [
        Net::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg)
            .run_batch_report(inputs(4))
            .unwrap(),
        SchedNet::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg)
            .run_batch_report(inputs(4))
            .unwrap(),
    ] {
        assert_eq!(report.dead_letters.len(), 4);
        for d in &report.dead_letters {
            match &d.report.cause {
                SnetError::BoxFailure { cause, .. } => {
                    assert!(
                        cause.contains("injected panic in inc"),
                        "payload lost: {cause}"
                    );
                }
                other => panic!("expected BoxFailure, got {other:?}"),
            }
        }
    }
}

#[test]
fn failure_reports_compose_with_dyn_error_callers() {
    // The anyhow-style shape: `?` through `Box<dyn Error>`, then walk
    // the source chain back to the SnetError.
    fn run() -> Result<Vec<Record>, Box<dyn std::error::Error>> {
        let spec = FaultSpec::errors(7, 1, u32::MAX);
        let outs = SchedNet::new(NetSpec::Box(chaos(&inc_box(), spec))).run_batch(inputs(2))?;
        Ok(outs)
    }
    let err = run().unwrap_err();
    assert!(err.to_string().contains("box inc failed"));

    // A diverted record's report chains component → cause.
    let spec = FaultSpec::errors(7, 1, u32::MAX);
    let report = SchedNet::with_config(
        NetSpec::Box(chaos(&inc_box(), spec)),
        EngineConfig {
            policy: FailurePolicy::DeadLetter,
            ..EngineConfig::default()
        },
    )
    .run_batch_report(inputs(1))
    .unwrap();
    let dl = &report.dead_letters[0];
    let as_std: &dyn std::error::Error = &dl.report;
    let source = as_std.source().expect("report chains to its cause");
    assert!(source.to_string().contains("injected fault"));

    // TrySendError composes the same way once the run is gone.
    let sched = SchedNet::new(NetSpec::Box(inc_box()));
    let h = sched.start();
    h.cancel();
    let err = loop {
        // Cancellation is cooperative; the ingress refuses once the
        // teardown lands.
        match h.try_send(Record::new().with_field("x", Value::Int(1))) {
            Err(e) => break e,
            Ok(()) => std::thread::sleep(Duration::from_millis(1)),
        }
    };
    let as_std: &dyn std::error::Error = &err;
    assert!(as_std.to_string().contains("ingress"));
}

#[test]
fn chaos_schedule_is_reproducible_across_runs() {
    // Two identical runs on fresh wrappers divert exactly the same
    // records in the same per-run count — the harness's core promise.
    let spec = FaultSpec::errors(0xc0ffee, 3, u32::MAX);
    let cfg = EngineConfig {
        policy: FailurePolicy::DeadLetter,
        ..EngineConfig::default()
    };
    let a = SchedNet::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg)
        .run_batch_report(inputs(50))
        .unwrap();
    let b = SchedNet::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg)
        .run_batch_report(inputs(50))
        .unwrap();
    let recs = |r: &[snet_runtime::DeadLetter]| -> Vec<Record> {
        r.iter().map(|d| d.record.clone()).collect()
    };
    assert_eq!(
        multiset(&recs(&a.dead_letters)),
        multiset(&recs(&b.dead_letters))
    );
    assert_eq!(multiset(&a.outputs), multiset(&b.outputs));
}

#[test]
fn engine_generic_code_reaches_fault_apis_through_the_traits() {
    // The unified API: cancel + dead letters without naming an engine.
    fn survivors<E: Engine>(engine: &E, batch: Vec<Record>) -> (usize, usize) {
        let report = engine.run_batch_report(batch).unwrap();
        (report.outputs.len(), report.dead_letters.len())
    }
    let spec = FaultSpec::errors(0x0dead, 3, u32::MAX);
    let batch = inputs(30);
    let (doomed, healthy) = partition(spec, &batch);
    let cfg = EngineConfig {
        policy: FailurePolicy::DeadLetter,
        ..EngineConfig::default()
    };
    for (outs, dead) in [
        survivors(
            &Net::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg),
            batch.clone(),
        ),
        survivors(
            &SchedNet::with_config(NetSpec::Box(chaos(&inc_box(), spec)), cfg),
            batch.clone(),
        ),
    ] {
        assert_eq!(outs, healthy.len());
        assert_eq!(dead, doomed.len());
    }
}
