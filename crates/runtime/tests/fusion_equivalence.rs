//! Property tests: operator fusion is semantically invisible.
//!
//! A fused run (`fuse: true`, the default), an unfused run
//! (`fuse: false`, the exact pre-fusion execution), and the reference
//! interpreter must agree on the output multiset for randomly generated
//! networks — including nets whose chains are broken by sync, star and
//! split boundaries, and chains whose boxes carry per-box
//! [`FailurePolicy`] overrides under seeded [`faultinject::chaos`]
//! schedules. The fault-attribution guarantee is asserted directly:
//! a dead letter minted inside a fused chain names the original box,
//! not the chain.

use proptest::prelude::*;
use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, RecordVec, Work};
use snet_core::filter::OutputTemplate;
use snet_core::{BinOp, FilterSpec, NetSpec, Pattern, Record, SyncSpec, TagExpr, Value, Variant};
use snet_runtime::faultinject::{chaos, FaultSpec};
use snet_runtime::{EngineConfig, FailurePolicy, Interp, Net, SchedNet};
use std::time::Duration;

/// A box consuming `{a}` and emitting `{a: a + 1}`.
fn add_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("add", &["a"], &[&["a"]]),
        |r| {
            let a = r.field("a").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("a", Value::Int(a + 1)),
                Work::ops(1),
            ))
        },
    ))
}

/// A box consuming `{a}` and emitting two records, `{a}` and `{b: a}`.
fn dup_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("dup", &["a"], &[&["a"], &["b"]]),
        |r| {
            let a = r.field("a").and_then(|v| v.as_int()).unwrap_or(0);
            let mut out = RecordVec::new();
            out.push(Record::new().with_field("a", Value::Int(a)));
            out.push(Record::new().with_field("b", Value::Int(a)));
            Ok(BoxOutput::many_into(out, Work::ops(2)))
        },
    ))
}

/// A filter renaming field `b` to `c`.
fn rename_filter() -> NetSpec {
    NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        vec![OutputTemplate::empty().rename_field("c", "b")],
    ))
}

/// A filter computing tag `<m> = <n> * 2` (leaves `<n>` untouched).
fn tag_filter() -> NetSpec {
    NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
        vec![OutputTemplate::empty().keep_tag("n").set_tag(
            "m",
            TagExpr::bin(BinOp::Mul, TagExpr::tag("n"), TagExpr::Const(2)),
        )],
    ))
}

/// `([ {<n>} -> {<n = n - 1>} ]) * {<n> <= 0}` — a chain boundary that
/// always terminates for finite `<n>`.
fn countdown_star() -> NetSpec {
    NetSpec::star(
        NetSpec::Filter(FilterSpec::new(
            Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
            vec![OutputTemplate::empty().set_tag(
                "n",
                TagExpr::bin(BinOp::Sub, TagExpr::tag("n"), TagExpr::Const(1)),
            )],
        )),
        Pattern::guarded(
            Variant::empty(),
            TagExpr::bin(BinOp::Le, TagExpr::tag("n"), TagExpr::Const(0)),
        ),
    )
}

/// SISO leaves — the raw material chains are made of.
fn siso_leaf() -> impl Strategy<Value = NetSpec> {
    prop_oneof![
        Just(add_box()),
        Just(dup_box()),
        Just(rename_filter()),
        Just(tag_filter()),
    ]
}

/// A serial run of 1–5 SISO leaves: length ≥ 2 fuses, length 1 stays a
/// plain component, so both planner paths appear in every sample set.
fn arb_chain() -> impl Strategy<Value = NetSpec> {
    prop::collection::vec(siso_leaf(), 1..6).prop_map(NetSpec::pipeline)
}

/// Chains glued together by the constructs that *break* fusion: serial
/// composition over a star boundary, parallel merge, and `!`-split.
/// The fragment stays confluent, so output multisets are well-defined.
fn arb_net() -> impl Strategy<Value = NetSpec> {
    arb_chain().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| NetSpec::serial(a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { NetSpec::serial(a, NetSpec::serial(countdown_star(), b)) }),
            prop::collection::vec(inner.clone(), 2..4).prop_map(NetSpec::parallel),
            inner.prop_map(|body| NetSpec::split(body, "k")),
        ]
    })
}

/// Records always carry `<n>` and `<k>` (so stars terminate and splits
/// route) plus a random subset of fields.
fn arb_record() -> impl Strategy<Value = Record> {
    (
        0i64..4,
        0i64..3,
        prop::option::of(0i64..100),
        prop::option::of(0i64..100),
    )
        .prop_map(|(n, k, a, b)| {
            let mut r = Record::new().with_tag("n", n).with_tag("k", k);
            if let Some(a) = a {
                r.set_field("a", Value::Int(a));
            }
            if let Some(b) = b {
                r.set_field("b", Value::Int(b));
            }
            r
        })
}

fn multiset(records: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = records.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

fn fused_cfg() -> EngineConfig {
    EngineConfig {
        fuse: true,
        ..EngineConfig::default()
    }
}

fn unfused_cfg() -> EngineConfig {
    EngineConfig {
        fuse: false,
        ..EngineConfig::default()
    }
}

/// Whether a compiled plan contains at least one fused chain — used to
/// keep the equivalence properties honest (a suite whose generator never
/// produces a fusable run proves nothing about fusion).
fn contains_chain(net: &NetSpec) -> bool {
    match net {
        NetSpec::FusedChain { .. } => true,
        NetSpec::Box(_) | NetSpec::Filter(_) | NetSpec::Sync(_) => false,
        NetSpec::Serial(a, b) => contains_chain(a) || contains_chain(b),
        NetSpec::Parallel { branches, .. } => branches.iter().any(contains_chain),
        NetSpec::Star { body, .. }
        | NetSpec::Split { body, .. }
        | NetSpec::At { body, .. }
        | NetSpec::Named { body, .. } => contains_chain(body),
    }
}

/// A flaky `{x} -> {x+1}` box on a content-keyed schedule.
fn flaky_inc(spec: FaultSpec) -> BoxDef {
    let inc = BoxDef::from_fn(BoxSig::parse("inc", &["x"], &[&["x"]]), |r| {
        let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
        Ok(BoxOutput::one(
            Record::new().with_field("x", Value::Int(x + 1)),
            Work::ops(1),
        ))
    });
    chaos(&inc, spec)
}

/// `{x} -> {x * 10}` — gives the chain healthy stages around the flaky
/// one, so fused execution crosses policy domains inside one task.
fn times_box(name: &str) -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse(name, &["x"], &[&["x"]]),
        |r| {
            let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("x", Value::Int(x * 10)),
                Work::ops(1),
            ))
        },
    ))
}

fn xs(n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new().with_field("x", Value::Int(i)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fused_equals_unfused_equals_interp(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..16),
    ) {
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let fused = SchedNet::with_config(net.clone(), fused_cfg())
            .run_batch(batch.clone())
            .unwrap();
        let unfused = SchedNet::with_config(net.clone(), unfused_cfg())
            .run_batch(batch.clone())
            .unwrap();
        let threaded = Net::with_config(net, fused_cfg()).run_batch(batch).unwrap();
        prop_assert_eq!(multiset(&fused), multiset(&expected.outputs));
        prop_assert_eq!(multiset(&unfused), multiset(&expected.outputs));
        prop_assert_eq!(multiset(&threaded), multiset(&expected.outputs));
    }

    #[test]
    fn fusion_preserves_work_accounting(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..12),
    ) {
        // ChainTally must fold into the trace exactly what per-component
        // tasks would have counted: abstract ops drive the cluster
        // simulator, so fusion must not change them.
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let (_, trace) = SchedNet::with_config(net, fused_cfg())
            .run_batch_traced(batch)
            .unwrap();
        prop_assert_eq!(
            trace.box_ops.load(std::sync::atomic::Ordering::Relaxed),
            expected.work.ops
        );
    }

    #[test]
    fn fused_matches_unfused_with_leading_sync(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..16),
    ) {
        // A synchrocell at the stream head is deterministic and is a
        // fusion boundary: everything downstream still fuses and must
        // agree with the oracle.
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let full = NetSpec::serial(cell, net);
        let expected = Interp::new(&full).run_batch(batch.clone()).unwrap();
        let fused = SchedNet::with_config(full.clone(), fused_cfg())
            .run_batch(batch.clone())
            .unwrap();
        let unfused = SchedNet::with_config(full, unfused_cfg()).run_batch(batch).unwrap();
        prop_assert_eq!(multiset(&fused), multiset(&expected.outputs));
        prop_assert_eq!(multiset(&unfused), multiset(&expected.outputs));
    }

    #[test]
    fn chaos_dead_letters_agree_fused_vs_unfused(
        seed in 0u64..1024,
        n in 8i64..40,
    ) {
        // A chain whose middle box is permanently flaky and opts into
        // DeadLetter while the engine default stays FailFast. The fused
        // run must divert exactly the records the schedule selects —
        // same set as the unfused run and the oracle — and each dead
        // letter must name the *original* box, not the chain.
        let spec = FaultSpec::errors(seed, 3, u32::MAX);
        let chain = |spec| {
            NetSpec::pipeline([
                times_box("pre"),
                NetSpec::Box(flaky_inc(spec).with_policy(FailurePolicy::DeadLetter)),
                times_box("post"),
            ])
        };
        prop_assert!(contains_chain(&snet_core::fuse(&chain(spec))));
        let batch = xs(n);
        let doomed: Vec<Record> = batch
            .iter()
            // The flaky stage sees `pre`'s output, so selection is keyed
            // on the record as it arrives *at that stage*.
            .filter(|r| {
                let x = r.field("x").and_then(|v| v.as_int()).unwrap();
                spec.selects(&Record::new().with_field("x", Value::Int(x * 10)))
            })
            .cloned()
            .collect();

        let oracle = Interp::new(&chain(spec)).run_batch(batch.clone()).unwrap();
        for (engine, report) in [
            (
                "sched-fused",
                SchedNet::with_config(chain(spec), fused_cfg())
                    .run_batch_report(batch.clone())
                    .unwrap(),
            ),
            (
                "sched-unfused",
                SchedNet::with_config(chain(spec), unfused_cfg())
                    .run_batch_report(batch.clone())
                    .unwrap(),
            ),
            (
                "threaded-fused",
                Net::with_config(chain(spec), fused_cfg())
                    .run_batch_report(batch.clone())
                    .unwrap(),
            ),
        ] {
            prop_assert_eq!(
                multiset(&report.outputs),
                multiset(&oracle.outputs),
                "{}: survivors diverge from the oracle", engine
            );
            prop_assert_eq!(report.dead_letters.len(), doomed.len(), "{}", engine);
            for d in &report.dead_letters {
                prop_assert_eq!(&d.report.component, "inc", "{}", engine);
            }
        }
        prop_assert_eq!(oracle.dead_letters.len(), doomed.len());
    }

    #[test]
    fn chaos_retry_converges_inside_fused_chains(
        seed in 0u64..1024,
        n in 8i64..32,
    ) {
        // Bounded faults + a per-box Retry override: the fused chain
        // must re-run only the failing stage (on the record as it
        // arrived there) and converge to the fault-free output.
        let spec = FaultSpec::errors(seed, 3, 2);
        let retry = FailurePolicy::Retry {
            max_attempts: 4,
            backoff: Duration::from_micros(10),
        };
        let chain = |flaky: BoxDef| {
            NetSpec::pipeline([
                times_box("pre"),
                NetSpec::Box(flaky.with_policy(retry)),
                times_box("post"),
            ])
        };
        let expected = Interp::new(&chain(flaky_inc(FaultSpec::errors(seed, 0, 0))))
            .run_batch(xs(n))
            .unwrap();
        // Fresh chaos wrap per run: the per-record fault budget lives in
        // the wrapper, and a shared one would let the first run spend it.
        for fuse in [true, false] {
            let cfg = EngineConfig { fuse, ..EngineConfig::default() };
            let outs = SchedNet::with_config(chain(flaky_inc(spec)), cfg)
                .run_batch(xs(n))
                .unwrap();
            prop_assert_eq!(
                multiset(&outs),
                multiset(&expected.outputs),
                "fuse={} diverged from fault-free output", fuse
            );
        }
    }
}

#[test]
fn generator_produces_fusable_chains() {
    // Keep the properties above honest: a depth-4 pipeline of SISO
    // leaves must actually fuse under the planner.
    let net = NetSpec::pipeline([add_box(), dup_box(), rename_filter(), tag_filter()]);
    assert!(contains_chain(&snet_core::fuse(&net)));
}

#[test]
fn boundaries_split_chains_into_fused_halves() {
    // pipeline .. star .. pipeline: the star breaks the chain, both
    // halves fuse, and all engines agree with the oracle.
    let half = || NetSpec::pipeline([add_box(), tag_filter()]);
    let net = NetSpec::serial(half(), NetSpec::serial(countdown_star(), half()));
    let plan = snet_core::fuse(&net);
    fn count_chains(net: &NetSpec) -> usize {
        match net {
            NetSpec::FusedChain { .. } => 1,
            NetSpec::Serial(a, b) => count_chains(a) + count_chains(b),
            NetSpec::Parallel { branches, .. } => branches.iter().map(count_chains).sum(),
            NetSpec::Star { body, .. }
            | NetSpec::Split { body, .. }
            | NetSpec::At { body, .. }
            | NetSpec::Named { body, .. } => count_chains(body),
            _ => 0,
        }
    }
    assert_eq!(count_chains(&plan), 2, "both halves must fuse: {plan}");

    let batch: Vec<Record> = (0..12)
        .map(|i| {
            Record::new()
                .with_tag("n", i % 4)
                .with_field("a", Value::Int(i))
        })
        .collect();
    let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
    let fused = SchedNet::with_config(net.clone(), fused_cfg())
        .run_batch(batch.clone())
        .unwrap();
    let unfused = SchedNet::with_config(net.clone(), unfused_cfg())
        .run_batch(batch.clone())
        .unwrap();
    let threaded = Net::with_config(net, fused_cfg()).run_batch(batch).unwrap();
    assert_eq!(multiset(&fused), multiset(&expected.outputs));
    assert_eq!(multiset(&unfused), multiset(&expected.outputs));
    assert_eq!(multiset(&threaded), multiset(&expected.outputs));
}

#[test]
fn mid_stream_sync_breaks_the_chain_and_still_agrees() {
    // A synchrocell *between* two fusable runs, fed in a deterministic
    // (stream-head-equivalent) position: the upstream chain output order
    // is FIFO through the fused task, so the cell's merges match the
    // oracle's.
    let cell = NetSpec::Sync(SyncSpec::new(vec![
        Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
        Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
    ]));
    let net = NetSpec::serial(
        NetSpec::pipeline([tag_filter(), tag_filter()]),
        NetSpec::serial(cell, NetSpec::pipeline([tag_filter(), tag_filter()])),
    );
    let plan = snet_core::fuse(&net);
    assert!(contains_chain(&plan));

    let batch: Vec<Record> = (0..10)
        .map(|i| {
            let r = Record::new().with_tag("n", i);
            if i % 2 == 0 {
                r.with_field("a", Value::Int(i))
            } else {
                r.with_field("b", Value::Int(i))
            }
        })
        .collect();
    let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
    let fused = SchedNet::with_config(net.clone(), fused_cfg())
        .run_batch(batch.clone())
        .unwrap();
    let unfused = SchedNet::with_config(net, unfused_cfg())
        .run_batch(batch)
        .unwrap();
    assert_eq!(multiset(&fused), multiset(&expected.outputs));
    assert_eq!(multiset(&unfused), multiset(&expected.outputs));
}
