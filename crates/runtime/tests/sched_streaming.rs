//! Lifecycle and backpressure regression tests for the scheduled
//! engine's persistent worker pool and streaming `start()` API.
//!
//! What is pinned down here, each a bug in the pre-streaming engine:
//!
//! * `run_batch` used to spawn and join a fresh worker pool on every
//!   call — consecutive batches must now reuse the same OS threads;
//! * the driver used to poll for quiescence on a 5 ms timeout loop —
//!   completion must be wake-driven, so short runs finish promptly;
//! * the entry mailbox used to accept the whole input unboundedly —
//!   streaming ingress must hold resident records at
//!   `EngineConfig::channel_capacity`;
//! * dropping a handle without `finish()` must neither deadlock nor
//!   leak pool threads.

use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::{NetSpec, Record, SnetError, Value};
use snet_runtime::{run_stream, EngineConfig, SchedNet, TrySendError};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

fn int_box(name: &str, f: fn(i64) -> i64) -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse(name, &["x"], &[&["x"]]),
        move |r| {
            let x = r
                .field("x")
                .and_then(|v| v.as_int())
                .ok_or_else(|| SnetError::Engine("expected int field x".into()))?;
            Ok(BoxOutput::one(
                Record::new().with_field("x", Value::Int(f(x))),
                Work::ops(1),
            ))
        },
    ))
}

fn recs(n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new().with_field("x", Value::Int(i)))
        .collect()
}

fn xs(records: &[Record]) -> Vec<i64> {
    let mut v: Vec<i64> = records
        .iter()
        .filter_map(|r| r.field("x").and_then(|v| v.as_int()))
        .collect();
    v.sort_unstable();
    v
}

/// Two consecutive `run_batch` calls on one `SchedNet` must run their
/// box code on the same pool threads: the set of distinct worker
/// thread ids across both runs stays within the configured pool size,
/// and the spawn counter never moves past it.
#[test]
fn run_batch_reuses_pool_threads() {
    let ids: Arc<Mutex<HashSet<ThreadId>>> = Arc::new(Mutex::new(HashSet::new()));
    let ids2 = Arc::clone(&ids);
    let probe = NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("probe", &["x"], &[&["x"]]),
        move |r| {
            ids2.lock().unwrap().insert(std::thread::current().id());
            Ok(BoxOutput::one(r.clone(), Work::ops(1)))
        },
    ));
    let workers = 2;
    let net = SchedNet::with_config(
        probe,
        EngineConfig {
            workers,
            ..EngineConfig::default()
        },
    );
    for round in 0..2 {
        let outs = net.run_batch(recs(64)).unwrap();
        assert_eq!(outs.len(), 64, "round {round}");
    }
    let distinct = ids.lock().unwrap().len();
    assert!(
        distinct <= workers,
        "two runs touched {distinct} distinct worker threads — a fresh pool \
         per run would show up to {}",
        2 * workers
    );
    assert_eq!(
        net.workers_spawned(),
        workers,
        "the pool must be spawned exactly once across runs"
    );
}

/// Completion is wake-driven (the sink's finalization signals the
/// driver), so a trivial depth-1 run must not pay a polling-interval
/// tail. 50 runs at the old 5 ms poll interval alone would take 250 ms;
/// the bound below fails even the cheapest polling regression while
/// leaving two orders of magnitude of headroom over the measured
/// per-run cost on a loaded CI box.
#[test]
fn short_runs_complete_promptly_without_polling() {
    let net = SchedNet::new(int_box("inc", |x| x + 1));
    net.run_batch(recs(1)).unwrap(); // spawn + warm the pool
    let t0 = Instant::now();
    for _ in 0..50 {
        let outs = net.run_batch(recs(1)).unwrap();
        assert_eq!(outs.len(), 1);
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(250),
        "50 warm depth-1 batches took {elapsed:?} — completion is polling, not wake-driven"
    );
}

/// Deterministic ingress bound: with the single worker wedged inside a
/// box call, the entry mailbox fills to exactly `channel_capacity` and
/// the next `try_send` reports `Full` instead of buffering.
#[test]
fn try_send_reports_full_at_configured_capacity() {
    // Gate protocol: 0 = no record seen, 1 = first record inside the
    // box (worker wedged), 2 = released.
    let gate = Arc::new((Mutex::new(0u8), Condvar::new()));
    let gate2 = Arc::clone(&gate);
    let gated = NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("gated", &["x"], &[&["x"]]),
        move |r| {
            let (lock, cv) = &*gate2;
            let mut st = lock.lock().unwrap();
            if *st == 0 {
                *st = 1;
                cv.notify_all();
            }
            while *st < 2 {
                st = cv.wait(st).unwrap();
            }
            drop(st);
            Ok(BoxOutput::one(r.clone(), Work::ops(1)))
        },
    ));
    let cap = 4;
    let net = SchedNet::with_config(
        gated,
        EngineConfig {
            workers: 1,
            channel_capacity: cap,
            ..EngineConfig::default()
        },
    );
    let h = net.start();
    h.send(Record::new().with_field("x", Value::Int(0)))
        .unwrap();
    {
        // Wait until the worker has claimed that record and is wedged
        // inside the box; from here on nothing drains the entry mailbox.
        let (lock, cv) = &*gate;
        let mut st = lock.lock().unwrap();
        while *st < 1 {
            st = cv.wait(st).unwrap();
        }
    }
    for i in 1..=cap as i64 {
        h.try_send(Record::new().with_field("x", Value::Int(i)))
            .unwrap_or_else(|_| panic!("record {i} fits under the capacity bound"));
    }
    assert_eq!(h.input_backlog(), cap, "entry mailbox filled to the bound");
    let overflow = Record::new().with_field("x", Value::Int(99));
    let back = match h.try_send(overflow) {
        Err(TrySendError::Full(rec)) => rec,
        other => panic!("expected Full at capacity, got {other:?}"),
    };
    // Release the worker; the blocking send path must now find space.
    {
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = 2;
        cv.notify_all();
    }
    h.send(back).unwrap();
    h.close_input();
    let mut outs = Vec::new();
    while let Some(r) = h.recv() {
        outs.push(r);
    }
    assert_eq!(xs(&outs), vec![0, 1, 2, 3, 4, 99]);
    h.finish().unwrap();
}

/// The issue's backpressure scenario: a producer pushes N ≫ capacity
/// records against a throttled consumer. Resident records in the entry
/// mailbox must never exceed the configured capacity while outputs
/// stream out, and every record must still arrive.
#[test]
fn slow_consumer_bounds_resident_records() {
    let cap = 8;
    let total = 400i64;
    let net = SchedNet::with_config(
        int_box("inc", |x| x + 1),
        EngineConfig {
            workers: 2,
            channel_capacity: cap,
            ..EngineConfig::default()
        },
    );
    let h = net.start();
    let max_backlog = AtomicUsize::new(0);
    let mut outs = Vec::new();
    std::thread::scope(|s| {
        let h = &h;
        s.spawn(move || {
            for rec in recs(total) {
                h.send(rec).expect("network stays up");
            }
            h.close_input();
        });
        while let Some(r) = h.recv() {
            outs.push(r);
            // Throttle the drain so ingress pressure actually builds.
            if outs.len() % 16 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
            max_backlog.fetch_max(h.input_backlog(), Ordering::Relaxed);
        }
    });
    h.finish().unwrap();
    assert_eq!(outs.len(), total as usize);
    assert_eq!(xs(&outs), (1..=total).collect::<Vec<_>>());
    let observed = max_backlog.load(Ordering::Relaxed);
    assert!(
        observed <= cap,
        "entry mailbox reached {observed} resident records with capacity {cap}"
    );
}

/// Dropping a handle without `finish()` — with input still open and
/// outputs undelivered in a full output channel — must tear the run
/// down without deadlocking a pool worker, and the pool must stay
/// usable (and un-respawned) for later runs.
#[test]
fn dropping_handle_without_finish_is_safe() {
    let net = SchedNet::with_config(
        int_box("inc", |x| x + 1),
        EngineConfig {
            workers: 2,
            channel_capacity: 2, // tiny output channel: the sink WILL block on undrained outputs
            ..EngineConfig::default()
        },
    );
    {
        let h = net.start();
        for i in 0..20 {
            h.send(Record::new().with_field("x", Value::Int(i)))
                .unwrap();
        }
        // No recv, no close, no finish.
    }
    // The pool survives the abandoned run and serves fresh ones.
    for _ in 0..2 {
        let outs = net.run_batch(recs(50)).unwrap();
        assert_eq!(xs(&outs), (1..=50).collect::<Vec<_>>());
    }
    assert_eq!(
        net.workers_spawned(),
        2,
        "abandoned run must not respawn the pool"
    );
    // `net` drops here; a deadlocked worker would hang the join and
    // thus the test.
}

/// Streaming a long input through a deep pipeline with a tiny ingress
/// bound: maximal send-side blocking must still deliver every record
/// in per-stream order.
#[test]
fn tight_capacity_streaming_soak() {
    let stages: Vec<NetSpec> = (0..8).map(|_| int_box("inc", |x| x + 1)).collect();
    let net = SchedNet::with_config(
        NetSpec::pipeline(stages),
        EngineConfig {
            workers: 2,
            channel_capacity: 2,
            ..EngineConfig::default()
        },
    );
    for round in 0..2 {
        let outs = run_stream(&net, recs(300)).unwrap();
        assert_eq!(xs(&outs), (8..308).collect::<Vec<_>>(), "round {round}");
    }
}
