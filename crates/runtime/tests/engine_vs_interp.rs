//! Property test: the threaded engine, the work-stealing scheduled
//! engine, and the deterministic reference interpreter agree on the
//! output *multiset* for randomly generated networks and record
//! batches.
//!
//! The generated networks are restricted to the confluent fragment of
//! S-Net — stateless components composed with `..`, `|`, `*` (with a
//! strictly decreasing body) and `!` — where the nondeterministic
//! arrival-order merge cannot change the set of produced records, only
//! their order. Synchrocells are covered separately with the cell in a
//! deterministic (stream-head) position.

use proptest::prelude::*;
use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, RecordVec, Work};
use snet_core::filter::OutputTemplate;
use snet_core::{BinOp, FilterSpec, NetSpec, Pattern, Record, SyncSpec, TagExpr, Value, Variant};
use snet_runtime::{run_stream, EngineConfig, Interp, Net, SchedNet};

/// A box consuming `{a}` and emitting `{a: a + 1}`.
fn add_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("add", &["a"], &[&["a"]]),
        |r| {
            let a = r.field("a").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("a", Value::Int(a + 1)),
                Work::ops(1),
            ))
        },
    ))
}

/// A box consuming `{a}` and emitting two records, `{a}` and `{b: a}`.
fn dup_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("dup", &["a"], &[&["a"], &["b"]]),
        |r| {
            let a = r.field("a").and_then(|v| v.as_int()).unwrap_or(0);
            let mut out = RecordVec::new();
            out.push(Record::new().with_field("a", Value::Int(a)));
            out.push(Record::new().with_field("b", Value::Int(a)));
            Ok(BoxOutput::many_into(out, Work::ops(2)))
        },
    ))
}

/// A filter renaming field `b` to `c`.
fn rename_filter() -> NetSpec {
    NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        vec![OutputTemplate::empty().rename_field("c", "b")],
    ))
}

/// A filter computing tag `<m> = <n> * 2` (leaves `<n>` untouched).
fn tag_filter() -> NetSpec {
    NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
        vec![OutputTemplate::empty().keep_tag("n").set_tag(
            "m",
            TagExpr::bin(BinOp::Mul, TagExpr::tag("n"), TagExpr::Const(2)),
        )],
    ))
}

/// The strictly-decreasing star body: `[ {<n>} -> {<n = n - 1>} ]`.
fn dec_filter() -> NetSpec {
    NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
        vec![OutputTemplate::empty().set_tag(
            "n",
            TagExpr::bin(BinOp::Sub, TagExpr::tag("n"), TagExpr::Const(1)),
        )],
    ))
}

/// `(dec) * {<n> <= 0}` — always terminates for finite `<n>`.
fn countdown_star() -> NetSpec {
    NetSpec::star(
        dec_filter(),
        Pattern::guarded(
            Variant::empty(),
            TagExpr::bin(BinOp::Le, TagExpr::tag("n"), TagExpr::Const(0)),
        ),
    )
}

fn leaf() -> impl Strategy<Value = NetSpec> {
    prop_oneof![
        Just(NetSpec::identity()),
        Just(add_box()),
        Just(dup_box()),
        Just(rename_filter()),
        Just(tag_filter()),
        Just(countdown_star()),
    ]
}

fn arb_net() -> impl Strategy<Value = NetSpec> {
    leaf().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| NetSpec::serial(a, b)),
            prop::collection::vec(inner.clone(), 2..4).prop_map(NetSpec::parallel),
            inner.prop_map(|body| NetSpec::split(body, "k")),
        ]
    })
}

/// Records always carry `<n>` and `<k>` (so stars terminate and splits
/// route) plus a random subset of fields.
fn arb_record() -> impl Strategy<Value = Record> {
    (
        0i64..4,
        0i64..3,
        prop::option::of(0i64..100),
        prop::option::of(0i64..100),
    )
        .prop_map(|(n, k, a, b)| {
            let mut r = Record::new().with_tag("n", n).with_tag("k", k);
            if let Some(a) = a {
                r.set_field("a", Value::Int(a));
            }
            if let Some(b) = b {
                r.set_field("b", Value::Int(b));
            }
            r
        })
}

fn multiset(records: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = records.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_interp_on_confluent_nets(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..20),
    ) {
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let actual = Net::new(net).run_batch(batch).unwrap();
        prop_assert_eq!(multiset(&actual), multiset(&expected.outputs));
    }

    #[test]
    fn engine_matches_interp_with_leading_sync(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..20),
    ) {
        // [| {a}, {b} |] at the head of the stream is fed in batch order
        // by both engines, so its merges are deterministic.
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let full = NetSpec::serial(cell, net);
        let expected = Interp::new(&full).run_batch(batch.clone()).unwrap();
        let actual = Net::new(full).run_batch(batch).unwrap();
        prop_assert_eq!(multiset(&actual), multiset(&expected.outputs));
    }

    #[test]
    fn engines_charge_identical_work(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..16),
    ) {
        // Abstract work is part of the semantics (it drives the cluster
        // simulator): both engines must charge the same total ops for
        // the same inputs on confluent nets.
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let (_, trace) = Net::new(net).run_batch_traced(batch).unwrap();
        prop_assert_eq!(
            trace.box_ops.load(std::sync::atomic::Ordering::Relaxed),
            expected.work.ops
        );
    }

    #[test]
    fn sched_engine_matches_interp_on_confluent_nets(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..20),
    ) {
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let actual = SchedNet::new(net).run_batch(batch).unwrap();
        prop_assert_eq!(multiset(&actual), multiset(&expected.outputs));
    }

    #[test]
    fn sched_engine_matches_interp_with_leading_sync(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..20),
    ) {
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let full = NetSpec::serial(cell, net);
        let expected = Interp::new(&full).run_batch(batch.clone()).unwrap();
        let actual = SchedNet::new(full).run_batch(batch).unwrap();
        prop_assert_eq!(multiset(&actual), multiset(&expected.outputs));
    }

    #[test]
    fn sched_engine_charges_identical_work(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..16),
    ) {
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let (_, trace) = SchedNet::new(net).run_batch_traced(batch).unwrap();
        prop_assert_eq!(
            trace.box_ops.load(std::sync::atomic::Ordering::Relaxed),
            expected.work.ops
        );
    }

    #[test]
    fn sched_engine_is_worker_count_invariant(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..12),
    ) {
        // The pool size must never change the output multiset.
        let one = SchedNet::with_config(net.clone(), EngineConfig { workers: 1, ..EngineConfig::default() })
            .run_batch(batch.clone())
            .unwrap();
        let eight = SchedNet::with_config(net, EngineConfig { workers: 8, ..EngineConfig::default() })
            .run_batch(batch)
            .unwrap();
        prop_assert_eq!(multiset(&one), multiset(&eight));
    }

    #[test]
    fn sched_batched_matches_unbatched_on_confluent_nets(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..20),
        handoff in prop_oneof![Just(8usize), Just(32), Just(128)],
    ) {
        // Batched hand-off must not change the produced multiset: a
        // batch=1 run (record-at-a-time, the pre-batching protocol) and
        // a batched run must agree with each other and the oracle.
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let unbatched = SchedNet::with_config(
            net.clone(),
            EngineConfig { batch: 1, ..EngineConfig::default() },
        )
        .run_batch(batch.clone())
        .unwrap();
        let batched = SchedNet::with_config(
            net,
            EngineConfig { batch: handoff, ..EngineConfig::default() },
        )
        .run_batch(batch)
        .unwrap();
        prop_assert_eq!(multiset(&unbatched), multiset(&expected.outputs));
        prop_assert_eq!(multiset(&batched), multiset(&expected.outputs));
    }

    #[test]
    fn sched_batching_preserves_per_stream_fifo_order(
        n_records in 1usize..48,
        keys in 2i64..4,
        depth in 1usize..5,
        handoff in prop_oneof![Just(1usize), Just(8), Just(32), Just(128)],
    ) {
        // Records that take the same path (same `<k>` replica of a
        // `!`-indexed pipeline) must come out in the order they went
        // in, at every hand-off batch size: batching may coalesce
        // hand-offs but never reorder an edge. `<s>` is a per-record
        // sequence number; `<n> = 0` keeps stars out of the picture.
        let net = NetSpec::split(
            NetSpec::pipeline((0..depth).map(|_| add_box())),
            "k",
        );
        let records: Vec<Record> = (0..n_records)
            .map(|i| {
                Record::new()
                    .with_tag("k", i as i64 % keys)
                    .with_tag("s", i as i64)
                    .with_field("a", Value::Int(i as i64))
            })
            .collect();
        let outs = SchedNet::with_config(
            net,
            EngineConfig { batch: handoff, ..EngineConfig::default() },
        )
        .run_batch(records)
        .unwrap();
        prop_assert_eq!(outs.len(), n_records);
        for k in 0..keys {
            let seq: Vec<i64> = outs
                .iter()
                .filter(|r| r.tag("k") == Some(k))
                .map(|r| r.tag("s").expect("sequence tag survives"))
                .collect();
            let expected: Vec<i64> =
                (0..n_records as i64).filter(|s| s % keys == k).collect();
            prop_assert_eq!(seq, expected, "stream k={} reordered", k);
        }
    }

    #[test]
    fn streamed_sched_matches_batch_and_interp(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..20),
    ) {
        // The streaming handle (bounded ingress, outputs draining
        // concurrently through the bounded output channel) must produce
        // the same multiset as the one-shot batch path and the oracle —
        // both runs sharing one SchedNet's persistent pool.
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let sched = SchedNet::new(net);
        let streamed = run_stream(&sched, batch.clone()).unwrap();
        let batched = sched.run_batch(batch).unwrap();
        prop_assert_eq!(multiset(&streamed), multiset(&expected.outputs));
        prop_assert_eq!(multiset(&batched), multiset(&expected.outputs));
    }

    #[test]
    fn streamed_threaded_matches_interp(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..12),
    ) {
        // The same engine-generic streaming driver over the threaded
        // engine: the unified handle API must not change its semantics.
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let streamed = run_stream(&Net::new(net), batch).unwrap();
        prop_assert_eq!(multiset(&streamed), multiset(&expected.outputs));
    }

    #[test]
    fn streamed_sched_under_tight_capacity_matches_interp(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..16),
    ) {
        // Capacity 1 maximizes ingress blocking and output-channel
        // stalls: the backpressure machinery must never drop, duplicate
        // or manufacture records.
        let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let sched = SchedNet::with_config(
            net,
            EngineConfig { channel_capacity: 1, ..EngineConfig::default() },
        );
        let streamed = run_stream(&sched, batch).unwrap();
        prop_assert_eq!(multiset(&streamed), multiset(&expected.outputs));
    }

    #[test]
    fn interp_is_deterministic(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 0..16),
    ) {
        let a = Interp::new(&net).run_batch(batch.clone()).unwrap();
        let b = Interp::new(&net).run_batch(batch).unwrap();
        prop_assert_eq!(
            a.outputs.iter().map(|r| format!("{r:?}")).collect::<Vec<_>>(),
            b.outputs.iter().map(|r| format!("{r:?}")).collect::<Vec<_>>()
        );
        prop_assert_eq!(a.work, b.work);
        prop_assert_eq!(a.stranded, b.stranded);
    }
}
