//! Steady-state allocation accounting for the scheduled engine.
//!
//! The buffer pool (`snet_core::pool`) exists so that streaming's hot
//! loop — mailbox drain, fused-chain traversal, producer-side
//! coalescing, sink delivery — reuses warmed buffers instead of
//! mallocing per activation. This test proves the claim with a counting
//! global allocator: after a warm-up phase (pools filled, worker pool
//! spawned, every mailbox/channel grown to its plateau), streaming tens
//! of thousands more records through a depth-16 **fused** pipeline must
//! perform ~zero further allocations — the budget is a small constant
//! for the whole window, not per record. The **unfused** path keeps
//! per-hop hand-off machinery and is pinned at a small per-record
//! constant instead.
//!
//! Both measurements run inside one `#[test]` so no sibling test thread
//! can allocate into the window.

use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::{NetSpec, Record, Value};
use snet_runtime::sched::TrySendError;
use snet_runtime::{EngineConfig, SchedNet};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap acquisition (alloc, zeroed alloc, and realloc)
/// process-wide — worker threads included, which is the point.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator; the only addition
// is a relaxed counter bump, which allocates nothing and touches no
// allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards verbatim; caller upholds the GlobalAlloc contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System` in `alloc`/`realloc`
        // with this layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards verbatim; caller upholds the GlobalAlloc contract.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: forwards verbatim; caller upholds the GlobalAlloc contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` stems from this allocator with `layout`, and
        // the caller guarantees `new_size` is valid.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn inc_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("inc", &["x"], &[&["x"]]),
        |r| {
            let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("x", Value::Int(x + 1)),
                Work::ops(1),
            ))
        },
    ))
}

/// Streams `count` single-field records through `net` with the
/// interleaved driver loop, returning how many came back. The loop body
/// itself is allocation-free in steady state: records are built inline
/// (one field fits the record's inline storage) and the handle's
/// try_send/try_recv/drive path reuses pooled/amortized buffers.
fn stream(net: &SchedNet, count: usize) -> usize {
    let handle = net.start();
    let mut sent = 0usize;
    let mut received = 0usize;
    let mut closed = false;
    let mut pending: Option<Record> = None;
    while received < count {
        while sent < count {
            let rec = pending
                .take()
                .unwrap_or_else(|| Record::new().with_field("x", Value::Int(sent as i64)));
            match handle.try_send(rec) {
                Ok(()) => sent += 1,
                Err(TrySendError::Full(r)) => {
                    pending = Some(r);
                    break;
                }
                Err(TrySendError::Closed(e)) => panic!("ingress closed mid-run: {e}"),
            }
        }
        if sent == count && !closed {
            handle.close_input();
            closed = true;
        }
        let mut drained = false;
        while handle.try_recv().is_some() {
            received += 1;
            drained = true;
        }
        if !drained && received < count && !handle.drive() {
            std::thread::yield_now();
        }
    }
    handle.finish().expect("run failed");
    received
}

const WARMUP: usize = 20_000;
const MEASURE: usize = 50_000;

#[test]
fn steady_state_allocations_are_pooled_away() {
    // ---- Fused depth-16 chain: the zero-allocs-per-record claim. ----
    let fused = SchedNet::with_config(
        NetSpec::pipeline((0..16).map(|_| inc_box())),
        EngineConfig::default(),
    );
    // Warm-up: spawn workers, fill the buffer pools, and grow every
    // mailbox, channel, and deque to its steady-state capacity.
    assert_eq!(stream(&fused, WARMUP), WARMUP);

    let before = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(stream(&fused, MEASURE), MEASURE);
    let fused_delta = ALLOCS.load(Ordering::Relaxed) - before;
    eprintln!(
        "fused depth-16: {fused_delta} allocs / {MEASURE} records \
         ({:.5} per record)",
        fused_delta as f64 / MEASURE as f64
    );

    // The budget is a *flat* constant for the whole window — one
    // `start()` (task graph + channels), plus a handful of stragglers
    // (a rare deque doubling past the warm-up plateau, a deferred-heap
    // regrowth). 50k records through 16 stages is 800k box invocations;
    // without the pool this window costs >100k allocations (one inbuf
    // per activation, one port buffer per graph edge per run, two chain
    // buffers per runner, ...). 2000 total = 0.04 per record, i.e. 0
    // per record in steady state.
    assert!(
        fused_delta < 2_000,
        "fused depth-16 steady state allocated {fused_delta} times over {MEASURE} records \
         ({:.4}/record) — the pooled hot path must be allocation-free",
        fused_delta as f64 / MEASURE as f64
    );

    // ---- Unfused path: pinned small per-record constant. ----
    let unfused = SchedNet::with_config(
        NetSpec::pipeline((0..8).map(|_| inc_box())),
        EngineConfig {
            fuse: false,
            ..EngineConfig::default()
        },
    );
    assert_eq!(stream(&unfused, WARMUP), WARMUP);

    let before = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(stream(&unfused, MEASURE), MEASURE);
    let unfused_delta = ALLOCS.load(Ordering::Relaxed) - before;
    eprintln!(
        "unfused depth-8: {unfused_delta} allocs / {MEASURE} records \
         ({:.5} per record)",
        unfused_delta as f64 / MEASURE as f64
    );

    // Eight mailbox hops per record keep per-hop machinery alive, but
    // pooling pins the unfused path to a flat window constant as well:
    // ~140 allocations measured for the 50k-record window (one start()
    // builds 10 tasks + ports, plus stragglers). The looser budget
    // absorbs scheduling jitter; a regression to per-activation buffer
    // allocation costs tens of thousands and blows well past it.
    assert!(
        unfused_delta < 5_000,
        "unfused depth-8 steady state allocated {unfused_delta} times over {MEASURE} \
         records ({:.3}/record) — expected a pinned small constant",
        unfused_delta as f64 / MEASURE as f64
    );
}
