//! Analyzer soundness, pinned against the reference interpreter.
//!
//! `snet-analyze`'s error-severity findings are universal claims
//! ("records of this shape can never be routed", "this branch never
//! receives a record"). The interpreter provides witnesses: a record
//! the interpreter routes successfully must never be the subject of an
//! unroutable/dead finding. Two angles:
//!
//! * top-level parallels, where the dispatch rule is directly
//!   observable per record (`semantics::matching_branches`), pin
//!   SNA001/SNA002 exactly;
//! * arbitrary recursive nets, where an SNA001 claim implies the
//!   strict-mismatch interpreter must reject the batch — and an
//!   analyzer-accepted net must produce the interpreter's exact output
//!   multiset even though acceptance turned on the engines'
//!   `exact_input` fast path.

use proptest::prelude::*;
use snet_analyze::{analyze, AnalyzeConfig};
use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, RecordVec, Work};
use snet_core::filter::OutputTemplate;
use snet_core::semantics::{matching_branches, MismatchPolicy};
use snet_core::{
    BinOp, DiagCode, FilterSpec, NetSpec, Pattern, RType, Record, SnetError, SyncSpec, TagExpr,
    Value, Variant,
};
use snet_runtime::{EngineConfig, Interp, Net, SchedNet};

fn add_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("add", &["a"], &[&["a"]]),
        |r| {
            let a = r.field("a").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("a", Value::Int(a + 1)),
                Work::ops(1),
            ))
        },
    ))
}

fn dup_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("dup", &["a"], &[&["a"], &["b"]]),
        |r| {
            let a = r.field("a").and_then(|v| v.as_int()).unwrap_or(0);
            let mut out = RecordVec::new();
            out.push(Record::new().with_field("a", Value::Int(a)));
            out.push(Record::new().with_field("b", Value::Int(a)));
            Ok(BoxOutput::many_into(out, Work::ops(2)))
        },
    ))
}

fn rename_filter() -> NetSpec {
    NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        vec![OutputTemplate::empty().rename_field("c", "b")],
    ))
}

fn tag_filter() -> NetSpec {
    NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
        vec![OutputTemplate::empty().keep_tag("n").set_tag(
            "m",
            TagExpr::bin(BinOp::Mul, TagExpr::tag("n"), TagExpr::Const(2)),
        )],
    ))
}

fn dec_filter() -> NetSpec {
    NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
        vec![OutputTemplate::empty().set_tag(
            "n",
            TagExpr::bin(BinOp::Sub, TagExpr::tag("n"), TagExpr::Const(1)),
        )],
    ))
}

fn countdown_star() -> NetSpec {
    NetSpec::star(
        dec_filter(),
        Pattern::guarded(
            Variant::empty(),
            TagExpr::bin(BinOp::Le, TagExpr::tag("n"), TagExpr::Const(0)),
        ),
    )
}

fn leaf() -> impl Strategy<Value = NetSpec> {
    prop_oneof![
        Just(NetSpec::identity()),
        Just(add_box()),
        Just(dup_box()),
        Just(rename_filter()),
        Just(tag_filter()),
        Just(countdown_star()),
    ]
}

fn arb_net() -> impl Strategy<Value = NetSpec> {
    leaf().prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| NetSpec::serial(a, b)),
            prop::collection::vec(inner.clone(), 2..4).prop_map(NetSpec::parallel),
            inner.prop_map(|body| NetSpec::split(body, "k")),
        ]
    })
}

/// Records always carry `<n>` and `<k>` (so stars terminate and splits
/// route) plus a random subset of fields.
fn arb_record() -> impl Strategy<Value = Record> {
    (
        0i64..4,
        0i64..3,
        prop::option::of(0i64..100),
        prop::option::of(0i64..100),
    )
        .prop_map(|(n, k, a, b)| {
            let mut r = Record::new().with_tag("n", n).with_tag("k", k);
            if let Some(a) = a {
                r.set_field("a", Value::Int(a));
            }
            if let Some(b) = b {
                r.set_field("b", Value::Int(b));
            }
            r
        })
}

/// The exact label set of a record — one closed entry variant.
fn shape_of(rec: &Record) -> Variant {
    let mut v = Variant::empty();
    for (l, _) in rec.fields() {
        v.add_field(l);
    }
    for (l, _) in rec.tags() {
        v.add_tag(l);
    }
    v
}

/// The closed entry type induced by a batch: one variant per distinct
/// record label set.
fn entry_of(batch: &[Record]) -> RType {
    let mut t = RType::default();
    for rec in batch {
        let v = shape_of(rec);
        if !t.variants().contains(&v) {
            t.push(v);
        }
    }
    t
}

fn multiset(records: &[Record]) -> Vec<String> {
    let mut v: Vec<String> = records.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

/// SNA001/SNA002 at a top-level parallel, checked against the actual
/// dispatch rule record by record: a branch some record is dispatched
/// to must not be declared dead, and if every record finds a branch
/// none may be declared unroutable.
fn check_dispatchable(branches: Vec<NetSpec>, batch: Vec<Record>) -> Result<(), String> {
    let patterns: Vec<Vec<Pattern>> = branches.iter().map(|b| b.input_patterns()).collect();
    let net = NetSpec::parallel(branches);
    let analysis = analyze(&net, &entry_of(&batch), &AnalyzeConfig::default());

    let mut live = vec![false; patterns.len()];
    let mut all_routed = true;
    for rec in &batch {
        match matching_branches(&patterns, rec).first() {
            Some(&i) => live[i] = true,
            None => all_routed = false,
        }
    }
    for d in &analysis.diagnostics {
        if d.code == DiagCode::DeadBranch {
            for (i, &is_live) in live.iter().enumerate() {
                if is_live && d.path == format!("net/par[{i}]") {
                    return Err(format!(
                        "branch {i} received a record but was declared dead: {d}"
                    ));
                }
            }
        }
    }
    if all_routed
        && analysis
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::UnroutableAtParallel)
    {
        return Err(format!(
            "every record routed, yet the analyzer claims unroutability: {:?}",
            analysis.diagnostics
        ));
    }
    Ok(())
}

/// Arbitrary recursive nets: when the analyzer accepts the net for the
/// batch's entry type, the engines (running with the analyzer's
/// `exact_input` annotations) must reproduce the interpreter's output
/// multiset; when it rejects with SNA001, the strict mismatch
/// interpreter must reject the batch too.
fn check_verdict(net: NetSpec, batch: Vec<Record>) -> Result<(), String> {
    let entry = entry_of(&batch);
    match Net::with_entry_type(net.clone(), &entry, EngineConfig::default()) {
        Ok(fast) => {
            let expected = Interp::new(&net).run_batch(batch.clone()).unwrap();
            let actual = fast.run_batch(batch.clone()).unwrap();
            if multiset(&actual) != multiset(&expected.outputs) {
                return Err("threaded engine diverged from interp on an accepted net".into());
            }
            let sched = SchedNet::with_entry_type(net, &entry, EngineConfig::default())
                .expect("threaded and scheduled engines share the analysis");
            let actual = sched.run_batch(batch).unwrap();
            if multiset(&actual) != multiset(&expected.outputs) {
                return Err("scheduled engine diverged from interp on an accepted net".into());
            }
            Ok(())
        }
        Err(SnetError::Analysis(diags)) => {
            if diags.is_empty() {
                return Err("analysis rejection with no diagnostics".into());
            }
            if diags
                .iter()
                .any(|d| d.code == DiagCode::UnroutableAtParallel)
            {
                let strict = Interp::new(&net)
                    .with_mismatch(MismatchPolicy::Error)
                    .run_batch(batch);
                if strict.is_ok() {
                    return Err(format!(
                        "analyzer claims an unroutable record, strict interp disagrees: {diags:?}"
                    ));
                }
            }
            Ok(())
        }
        Err(other) => Err(format!("unexpected construction error: {other}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dispatchable_records_are_never_flagged(
        branches in prop::collection::vec(leaf(), 2..5),
        batch in prop::collection::vec(arb_record(), 1..16),
    ) {
        if let Err(msg) = check_dispatchable(branches, batch) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn analyzer_verdict_agrees_with_interp(
        net in arb_net(),
        batch in prop::collection::vec(arb_record(), 1..12),
    ) {
        if let Err(msg) = check_verdict(net, batch) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Runtime routing errors carry the same stable codes the analyzer
/// uses, so a dynamic failure and its static prediction are one
/// diagnostic vocabulary.
#[test]
fn runtime_errors_carry_diag_codes() {
    // Split without the index tag → SNA004.
    let net = Net::new(NetSpec::split(add_box(), "k"));
    let err = net
        .run_batch(vec![Record::new().with_field("a", Value::Int(1))])
        .unwrap_err();
    assert_eq!(err.diag_code(), Some(DiagCode::SplitMissingTag));

    // Strict-policy mismatch → SNA001.
    let err = Interp::new(&NetSpec::parallel(vec![add_box(), rename_filter()]))
        .with_mismatch(MismatchPolicy::Error)
        .run_batch(vec![Record::new().with_tag("z", 1)])
        .unwrap_err();
    assert_eq!(err.diag_code(), Some(DiagCode::UnroutableAtParallel));
}

/// The construction-time pre-flight check: placement out of range is
/// caught before any record runs, on both engines, and is opt-out.
#[test]
fn preflight_rejects_placement_out_of_range() {
    let spec = NetSpec::at(add_box(), 9);
    let config = EngineConfig {
        nodes: Some(4),
        ..EngineConfig::default()
    };
    let batch = vec![Record::new().with_field("a", Value::Int(1))];

    let err = Net::with_config(spec.clone(), config)
        .run_batch(batch.clone())
        .unwrap_err();
    assert_eq!(err.diag_code(), Some(DiagCode::PlacementOutOfRange));
    assert!(matches!(err, SnetError::Analysis(_)), "{err}");

    let err = SchedNet::with_config(spec.clone(), config)
        .run_batch(batch.clone())
        .unwrap_err();
    assert_eq!(err.diag_code(), Some(DiagCode::PlacementOutOfRange));

    // A started run fails at finish() with the same error.
    let handle = Net::with_config(spec.clone(), config).start();
    let err = handle.finish().unwrap_err();
    assert_eq!(err.diag_code(), Some(DiagCode::PlacementOutOfRange));

    // Opting out (or widening the node range) runs normally.
    let off = EngineConfig {
        analyze: false,
        nodes: Some(4),
        ..EngineConfig::default()
    };
    assert_eq!(
        Net::with_config(spec.clone(), off)
            .run_batch(batch.clone())
            .unwrap()
            .len(),
        1
    );
    let wide = EngineConfig {
        nodes: Some(16),
        ..EngineConfig::default()
    };
    assert_eq!(
        Net::with_config(spec, wide).run_batch(batch).unwrap().len(),
        1
    );
}

/// `with_entry_type` rejects a shape-level defect the open pre-flight
/// cannot see, and reports the analyzer's structured diagnostics.
#[test]
fn entry_typed_construction_rejects_unroutable_nets() {
    // No branch accepts {z}: SNA001 at construction.
    let spec = NetSpec::parallel(vec![add_box(), rename_filter()]);
    let entry = RType::single(Variant::parse_labels(&["z"], &[]));
    let Err(err) = Net::with_entry_type(spec, &entry, EngineConfig::default()) else {
        panic!("expected an analysis rejection");
    };
    let SnetError::Analysis(diags) = &err else {
        panic!("expected an analysis rejection, got {err}");
    };
    assert!(diags
        .iter()
        .any(|d| d.code == DiagCode::UnroutableAtParallel));

    // A synchrocell that can never complete: SNA003 at construction.
    let spec = NetSpec::Sync(SyncSpec::new(vec![
        Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
        Pattern::from_variant(Variant::parse_labels(&["never"], &[])),
    ]));
    let entry = RType::single(Variant::parse_labels(&["a"], &[]));
    let Err(err) = SchedNet::with_entry_type(spec, &entry, EngineConfig::default()) else {
        panic!("expected an analysis rejection");
    };
    assert_eq!(err.diag_code(), Some(DiagCode::SyncNeverFires));
}
