//! Deterministic fault injection for robustness testing.
//!
//! The harness wraps an ordinary [`BoxDef`] in a *chaos box* that fails
//! on a reproducible, **content-keyed** schedule: whether a record
//! triggers a fault is a pure function of the harness seed and the
//! record's own fields and tags. That makes the schedule independent of
//! engine scheduling order — the interpreter, the threaded engine and
//! the work-stealing engine all see the *same* records fault, no matter
//! how their activations interleave — which is what makes cross-engine
//! parity assertions possible at all.
//!
//! Each selected record faults [`FaultSpec::fails_per_record`] times and
//! then succeeds, so a [`FailurePolicy::Retry`](snet_core::FailurePolicy)
//! with enough attempts provably converges to the fault-free output.
//! `u32::MAX` marks a permanent fault, which is what the dead-letter
//! partition tests want: the diverted set is exactly the selected set.
//!
//! Faults come in three flavours ([`FaultKind`]): a clean
//! `SnetError::BoxFailure`, a `panic!` with a formatted (`String`)
//! payload — exercising each engine's unwind-catch path — and a stall
//! that sleeps before succeeding, for deadline/cancellation tests.

use snet_core::boxdef::BoxDef;
use snet_core::{BoxOutput, Record, SnetError, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an injected fault looks like to the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Return `Err(SnetError::BoxFailure { .. })`.
    Error,
    /// `panic!` with a dynamically formatted `String` payload.
    Panic,
    /// Sleep for [`FaultSpec::stall`], then run the real box. The
    /// activation *succeeds* — slowly — so runs stay semantically
    /// fault-free while deadlines get something to trip over.
    Stall,
}

/// A deterministic fault schedule.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Seed mixed into every record key; two specs with different seeds
    /// select (almost surely) different record sets.
    pub seed: u64,
    /// Roughly one in `one_in` records is selected (content-keyed, so
    /// the *same* records in every engine). `1` selects every record.
    pub one_in: u64,
    /// How many times each selected record faults before its activations
    /// start succeeding. `u32::MAX` means the fault is permanent.
    pub fails_per_record: u32,
    /// The failure mode injected.
    pub kind: FaultKind,
    /// Sleep duration for [`FaultKind::Stall`]; ignored otherwise.
    pub stall: Duration,
}

impl FaultSpec {
    /// A schedule of clean `BoxFailure` errors.
    pub fn errors(seed: u64, one_in: u64, fails_per_record: u32) -> FaultSpec {
        FaultSpec {
            seed,
            one_in,
            fails_per_record,
            kind: FaultKind::Error,
            stall: Duration::ZERO,
        }
    }

    /// A schedule of panics with formatted payloads.
    pub fn panics(seed: u64, one_in: u64, fails_per_record: u32) -> FaultSpec {
        FaultSpec {
            kind: FaultKind::Panic,
            ..FaultSpec::errors(seed, one_in, fails_per_record)
        }
    }

    /// A schedule that stalls every selected activation by `stall`.
    pub fn stalls(seed: u64, one_in: u64, stall: Duration) -> FaultSpec {
        FaultSpec {
            kind: FaultKind::Stall,
            stall,
            fails_per_record: u32::MAX,
            ..FaultSpec::errors(seed, one_in, 0)
        }
    }

    /// Whether this schedule selects `rec` for fault injection. Pure:
    /// tests use it to predict the fault set ahead of a run.
    pub fn selects(&self, rec: &Record) -> bool {
        self.one_in > 0 && splitmix64(self.seed ^ record_key(rec)).is_multiple_of(self.one_in)
    }
}

/// SplitMix64 — tiny, seedable, and good enough to decorrelate record
/// keys from the seed. (Vigna's public-domain generator.)
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A content hash of a record: fields and tags, sorted by label *name*
/// (not interning order, which differs across processes). Opaque
/// payloads hash by type only — schedules keyed on them should carry a
/// distinguishing tag instead.
pub fn record_key(rec: &Record) -> u64 {
    fn mix(h: u64, v: u64) -> u64 {
        splitmix64(h ^ v)
    }
    fn str_key(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in s.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    let mut fields: Vec<_> = rec.fields().collect();
    fields.sort_by_key(|(l, _)| l.as_str());
    let mut tags: Vec<_> = rec.tags().collect();
    tags.sort_by_key(|(l, _)| l.as_str());

    let mut h = 0x5367_4e65_7446_491eu64;
    for (label, value) in fields {
        h = mix(h, str_key(label.as_str()));
        h = match value {
            Value::Unit => mix(h, 1),
            Value::Int(i) => mix(h, *i as u64),
            Value::Float(x) => mix(h, x.to_bits()),
            Value::Str(s) => mix(h, str_key(s)),
            Value::Bytes(b) => {
                let mut bh = 0u64;
                for chunk in b.as_ref().chunks(8) {
                    let mut word = [0u8; 8];
                    word[..chunk.len()].copy_from_slice(chunk);
                    bh = mix(bh, u64::from_le_bytes(word));
                }
                mix(h, bh)
            }
            Value::Data(_) => mix(h, 2),
        };
    }
    for (label, value) in tags {
        h = mix(h, str_key(label.as_str()));
        h = mix(h, value as u64);
    }
    h
}

/// Live counters for one chaos box; shared with the test via `Arc`.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Faults actually injected (errors, panics, or stalls).
    pub injected: AtomicU64,
    /// Activations passed through to the real box.
    pub passed: AtomicU64,
}

impl ChaosStats {
    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Activations that reached the real box.
    pub fn passed(&self) -> u64 {
        self.passed.load(Ordering::Relaxed)
    }
}

/// Wraps `def` in a chaos box following `spec`. The wrapper keeps the
/// original signature and per-box policy, so it drops into any topology
/// unchanged.
pub fn chaos(def: &BoxDef, spec: FaultSpec) -> BoxDef {
    chaos_with_stats(def, spec).0
}

/// [`chaos`], plus shared counters for asserting that injection really
/// happened (a fault test that silently injects nothing proves nothing).
pub fn chaos_with_stats(def: &BoxDef, spec: FaultSpec) -> (BoxDef, Arc<ChaosStats>) {
    let stats = Arc::new(ChaosStats::default());
    let st = Arc::clone(&stats);
    let inner = Arc::clone(&def.func);
    let name = def.sig.name.clone();
    // Per-record fault budget. Keyed by content hash so retries of the
    // same record (clones, in whatever engine) share one budget.
    let attempts: Mutex<HashMap<u64, u32>> = Mutex::new(HashMap::new());

    let func = move |input: &Record| -> Result<BoxOutput, SnetError> {
        let key = record_key(input);
        let due = spec.one_in > 0 && splitmix64(spec.seed ^ key).is_multiple_of(spec.one_in) && {
            let mut map = attempts.lock().unwrap();
            let n = map.entry(key).or_insert(0);
            if *n < spec.fails_per_record {
                *n = n.saturating_add(1);
                true
            } else {
                false
            }
        };
        if due {
            st.injected.fetch_add(1, Ordering::Relaxed);
            match spec.kind {
                FaultKind::Error => {
                    return Err(SnetError::BoxFailure {
                        name: name.clone(),
                        cause: format!("injected fault (key {key:#018x})"),
                    });
                }
                FaultKind::Panic => {
                    // Formatted on purpose: the payload is a `String`,
                    // which the catch-sites must downcast.
                    panic!("injected panic in {name} (key {key:#018x})");
                }
                FaultKind::Stall => std::thread::sleep(spec.stall),
            }
        }
        st.passed.fetch_add(1, Ordering::Relaxed);
        inner.call(input)
    };

    let mut wrapped = BoxDef::new(def.sig.clone(), Arc::new(func));
    wrapped.policy = def.policy;
    (wrapped, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::{BoxSig, Work};

    fn identity_box() -> BoxDef {
        BoxDef::from_fn(BoxSig::parse("id", &["x"], &[&["x"]]), |input| {
            Ok(BoxOutput::one(input.clone(), Work::ops(1)))
        })
    }

    fn rec(x: i64) -> Record {
        Record::new().with_field("x", Value::Int(x))
    }

    #[test]
    fn record_key_is_content_based() {
        let a = rec(7);
        let b = rec(7);
        let c = rec(8);
        assert_eq!(record_key(&a), record_key(&b));
        assert_ne!(record_key(&a), record_key(&c));
        // Tags participate too.
        assert_ne!(record_key(&a), record_key(&a.clone().with_tag("t", 1)));
    }

    #[test]
    fn selection_is_deterministic_and_seeded() {
        let spec = FaultSpec::errors(42, 3, 1);
        let picks: Vec<bool> = (0..100).map(|i| spec.selects(&rec(i))).collect();
        let again: Vec<bool> = (0..100).map(|i| spec.selects(&rec(i))).collect();
        assert_eq!(picks, again);
        let hits = picks.iter().filter(|p| **p).count();
        assert!(hits > 10 && hits < 70, "one-in-3 picked {hits}/100");
        let other = FaultSpec::errors(43, 3, 1);
        let picks2: Vec<bool> = (0..100).map(|i| other.selects(&rec(i))).collect();
        assert_ne!(picks, picks2, "different seeds, same schedule");
    }

    #[test]
    fn faults_are_bounded_per_record() {
        let (chaotic, stats) = chaos_with_stats(&identity_box(), FaultSpec::errors(1, 1, 2));
        let r = rec(5);
        assert!(chaotic.func.call(&r).is_err());
        assert!(chaotic.func.call(&r).is_err());
        // Third attempt on the same content succeeds.
        assert!(chaotic.func.call(&r).is_ok());
        assert_eq!(stats.injected(), 2);
        assert_eq!(stats.passed(), 1);
    }

    #[test]
    fn permanent_faults_never_recover() {
        let (chaotic, stats) = chaos_with_stats(&identity_box(), FaultSpec::errors(1, 1, u32::MAX));
        let r = rec(5);
        for _ in 0..10 {
            assert!(chaotic.func.call(&r).is_err());
        }
        assert_eq!(stats.injected(), 10);
        assert_eq!(stats.passed(), 0);
    }

    #[test]
    fn panic_kind_panics_with_string_payload() {
        let (chaotic, _) = chaos_with_stats(&identity_box(), FaultSpec::panics(1, 1, 1));
        let r = rec(5);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = chaotic.func.call(&r);
        }))
        .unwrap_err();
        let msg = snet_core::panic_cause(payload.as_ref());
        assert!(msg.contains("injected panic in id"), "payload: {msg}");
    }

    #[test]
    fn stall_kind_succeeds_slowly() {
        let spec = FaultSpec::stalls(1, 1, Duration::from_millis(5));
        let (chaotic, stats) = chaos_with_stats(&identity_box(), spec);
        let t0 = std::time::Instant::now();
        assert!(chaotic.func.call(&rec(5)).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(stats.injected(), 1);
        assert_eq!(stats.passed(), 1);
    }

    #[test]
    fn wrapper_preserves_signature_and_policy() {
        let def = identity_box().with_policy(snet_core::FailurePolicy::DeadLetter);
        let wrapped = chaos(&def, FaultSpec::errors(1, 2, 1));
        assert_eq!(wrapped.sig, def.sig);
        assert_eq!(wrapped.policy, def.policy);
    }
}
