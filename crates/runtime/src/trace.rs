//! Lightweight runtime instrumentation.
//!
//! A [`Trace`] is shared by all component threads of a running net and
//! counts the events the tests and benchmarks care about: records
//! handled per component kind, box invocations and their abstract work,
//! synchrocell fires, star unfoldings, and records left stranded in
//! unfired synchrocells at end-of-stream (almost always a coordination
//! bug — the paper's merger net, for instance, must end with none).

use snet_core::{ChainTally, Work};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared event counters; all methods are thread-safe and cheap.
#[derive(Debug, Default)]
pub struct Trace {
    /// Records fed through boxes (matched only).
    pub box_records: AtomicU64,
    /// Total abstract work reported by boxes.
    pub box_ops: AtomicU64,
    /// Records fed through filters (matched only).
    pub filter_records: AtomicU64,
    /// Records passed through any component untouched (type mismatch
    /// under the permissive policy).
    pub passthroughs: AtomicU64,
    /// Synchrocell stores.
    pub sync_stores: AtomicU64,
    /// Synchrocell fires (merges emitted).
    pub sync_fires: AtomicU64,
    /// Records stranded in unfired synchrocells at end-of-stream.
    pub sync_stranded: AtomicU64,
    /// Star replica instantiations.
    pub star_unfoldings: AtomicU64,
    /// Index-split replica instantiations.
    pub split_replicas: AtomicU64,
    /// Records routed by parallel dispatchers.
    pub dispatched: AtomicU64,
    /// Records diverted to the dead-letter stream.
    pub dead_letters: AtomicU64,
    /// Extra box invocations performed by the retry policy (attempts
    /// beyond the first, successful or not).
    pub retries: AtomicU64,
}

impl Trace {
    pub fn new() -> Trace {
        Trace::default()
    }

    pub(crate) fn count_box(&self, work: Work) {
        self.box_records.fetch_add(1, Ordering::Relaxed);
        self.box_ops.fetch_add(work.ops, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds a fused-chain tally into the run counters, so a fused run
    /// reports exactly the trace its unfused equivalent would.
    pub(crate) fn count_chain(&self, t: &ChainTally) {
        self.box_records.fetch_add(t.box_records, Ordering::Relaxed);
        self.box_ops.fetch_add(t.box_ops, Ordering::Relaxed);
        self.filter_records
            .fetch_add(t.filter_records, Ordering::Relaxed);
        self.passthroughs
            .fetch_add(t.passthroughs, Ordering::Relaxed);
        self.retries.fetch_add(t.retries, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "boxes: {} records / {} ops; filters: {}; dispatched: {}; \
             sync: {} stores, {} fires, {} stranded; unfoldings: {} star, {} split; \
             passthroughs: {}; dead letters: {}; retries: {}",
            self.box_records.load(Ordering::Relaxed),
            self.box_ops.load(Ordering::Relaxed),
            self.filter_records.load(Ordering::Relaxed),
            self.dispatched.load(Ordering::Relaxed),
            self.sync_stores.load(Ordering::Relaxed),
            self.sync_fires.load(Ordering::Relaxed),
            self.sync_stranded.load(Ordering::Relaxed),
            self.star_unfoldings.load(Ordering::Relaxed),
            self.split_replicas.load(Ordering::Relaxed),
            self.passthroughs.load(Ordering::Relaxed),
            self.dead_letters.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = Trace::new();
        t.count_box(Work::ops(10));
        t.count_box(Work::ops(5));
        Trace::add(&t.sync_fires, 1);
        assert_eq!(t.get(&t.box_records), 2);
        assert_eq!(t.get(&t.box_ops), 15);
        assert!(t.summary().contains("2 records"));
        assert!(t.summary().contains("1 fires"));
    }
}
