//! The scheduled engine: component tasks multiplexed over a fixed,
//! **persistent** work-stealing worker pool.
//!
//! The threaded engine ([`crate::engine::Net`]) renders the paper's
//! execution model literally: one OS thread per component instance.
//! That is faithful but does not scale — a 16-deep pipeline with
//! parallel branches and star unfoldings spawns hundreds of threads for
//! a 256-record batch, and most of them sit blocked on channel edges.
//! This module multiplexes the same component graph over a fixed pool
//! of workers instead:
//!
//! * every component instance (box, filter, synchrocell, dispatcher,
//!   star tap) is a lightweight **task** with an SPSC mailbox;
//! * a task becomes **runnable** when a record lands in its mailbox (or
//!   its last upstream sender closes), and is then queued on a
//!   work-stealing deque ([`crossbeam_deque`]);
//! * a worker runs a task by draining its mailbox up to a batch budget,
//!   applying the *same* small-step semantics
//!   ([`snet_core::semantics`]) as the threaded engine and the
//!   reference interpreter, then yields the task back to the scheduler;
//! * a task whose output mailbox is over the high-water mark stops
//!   consuming input and re-queues itself — cooperative backpressure in
//!   place of bounded-channel blocking.
//!
//! The worker pool belongs to the [`SchedNet`], not to any single run:
//! it is spawned lazily on the first run and joined when the `SchedNet`
//! drops. Every run — a one-shot [`SchedNet::run_batch`] or a streaming
//! [`SchedNet::start`] — instantiates a fresh task graph whose tasks
//! carry their own per-run state (trace counters, error slot,
//! completion latch), so any number of runs can share the pool, even
//! concurrently, and repeated batches stop paying per-call thread
//! spawn/join.
//!
//! End-of-stream is sender refcounting: when the last upstream port of
//! a task closes, the task finalizes (counting stranded synchrocell
//! records) and closes its own outputs, so termination cascades exactly
//! like channel disconnection does in the threaded engine. The sink is
//! always the last task to finalize, so its finalization doubles as the
//! run's completion signal: it wakes the waiting driver (no completion
//! polling) and, in streaming mode, disconnects the output channel.
//! Because the per-record semantics are shared, the interpreter oracle
//! applies unchanged: for confluent networks the scheduled engine
//! produces the same output multiset.
//!
//! Streaming ingress is *bounded*: [`SchedHandle::send`] refuses to
//! grow the entry mailbox past [`EngineConfig::channel_capacity`] and
//! blocks (or, for [`SchedHandle::try_send`], reports `Full`) until the
//! entry task drains, giving the same real backpressure as the threaded
//! engine's bounded entry channel.

use crate::engine::EngineConfig;
use crate::trace::Trace;
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;
use snet_core::fault::{self, DeadLetter, StepVerdict};
use snet_core::panic_cause;
use snet_core::pool;
use snet_core::semantics::{self, MismatchPolicy};
use snet_core::{
    ChainRunner, ChainStage, ChainTally, Label, NetSpec, Pattern, Record, SnetError, SyncOutcome,
    SyncSpec, SyncState,
};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
// Under `--cfg snet_check` the atomics and condvars of the mailbox
// hand-off path come from the snet-check model scheduler, which makes
// `RUSTFLAGS="--cfg snet_check" cargo check -p snet-runtime` prove the
// whole scheduler compiles against the façade (the protocol models in
// crates/check/tests mirror this file's notify/park/latch logic; see
// the "Concurrency correctness" section in lib.rs). The snet-check
// Condvar's timed waits have stuck-state semantics, matching how this
// file uses timeouts: pure lost-wakeup backstops, never deadlines.
#[cfg(snet_check)]
use snet_check::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
#[cfg(snet_check)]
use snet_check::sync::Condvar;
#[cfg(not(snet_check))]
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
#[cfg(not(snet_check))]
use std::sync::Condvar;
// The dead-letter sequence counter is handed to snet-core's fault API
// and is not part of the hand-off protocol, so it stays a std atomic
// in both builds.
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records processed per task activation before yielding back to the
/// scheduler (keeps long streams from starving sibling components).
/// When [`EngineConfig::batch`] exceeds this, the budget stretches so a
/// full hand-off batch is always processed in one activation.
const ACTIVATION_BUDGET: usize = 64;

/// Cap on the exponential backpressure backoff: a zero-progress task is
/// re-enqueued after `1µs << min(n, BACKOFF_MAX_SHIFT)`, i.e. at most
/// ~1ms — the same latency bound as a worker's park quantum.
const BACKOFF_MAX_SHIFT: u32 = 10;

/// Safety net on the driver's completion wait. Completion is
/// wake-driven (the sink's finalization signals the run's latch); the
/// timeout only bounds how long a lost wakeup could strand the driver.
const DONE_SAFETY_TIMEOUT: Duration = Duration::from_millis(500);

/// Dead-letter channel capacity multiplier over `channel_capacity` for
/// streaming runs (batch runs collect into a vector). Bounded so a
/// worker never blocks on a lagging dead-letter consumer; overflow is
/// a fatal engine error instead of a stall.
const DEAD_CAPACITY_FACTOR: usize = 16;

/// A compiled network executed on the work-stealing scheduler.
///
/// The worker pool is **persistent**: it spawns lazily on the first
/// run and lives until the `SchedNet` drops, so consecutive
/// [`SchedNet::run_batch`] calls (and any number of streaming
/// [`SchedNet::start`] runs) reuse the same OS threads. Every run
/// instantiates a fresh task graph; synchrocell and replication state
/// never leaks between runs.
///
/// Dropping the `SchedNet` stops the pool and joins its threads.
/// Outstanding [`SchedHandle`]s stay safe to use after that — sends
/// fail and `recv` drains whatever was already produced — but no new
/// records will be processed, so finish or drop handles first.
pub struct SchedNet {
    spec: NetSpec,
    /// What actually runs: `spec` with maximal SISO chains fused into
    /// single tasks (or a clone of `spec` when [`EngineConfig::fuse`]
    /// is off). Computed once at construction; every run instantiates
    /// its task graph from the plan.
    plan: NetSpec,
    config: EngineConfig,
    /// Whether any component can dead-letter under this configuration,
    /// precomputed so `start()` can skip the dead-letter buffer (and
    /// its allocation cost on the streaming hot path) when diversion
    /// is provably impossible.
    diverts: bool,
    /// Error-severity findings of the construction-time pre-flight
    /// analysis (empty when clean or when [`EngineConfig::analyze`] is
    /// off). A non-empty list fails every run with
    /// [`SnetError::Analysis`].
    preflight: Vec<snet_core::Diagnostic>,
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    spawned: AtomicUsize,
}

impl SchedNet {
    /// Wraps a topology with default configuration.
    pub fn new(spec: NetSpec) -> SchedNet {
        SchedNet::with_config(spec, EngineConfig::default())
    }

    /// Wraps a topology with explicit configuration (worker count,
    /// mismatch policy, mailbox high-water mark, ingress capacity).
    pub fn with_config(spec: NetSpec, config: EngineConfig) -> SchedNet {
        let diverts = spec.diverts_under(config.policy);
        let plan = if config.fuse {
            snet_core::fuse(&spec)
        } else {
            spec.clone()
        };
        let preflight = crate::engine::preflight(&spec, &config);
        SchedNet {
            spec,
            plan,
            config,
            diverts,
            preflight,
            shared: Arc::new(Shared {
                injector: Injector::new(),
                deferred: Mutex::new(BinaryHeap::new()),
                deferred_count: AtomicUsize::new(0),
                sleep: Mutex::new(SleepState {}),
                cv: Condvar::new(),
                sleepers: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                config,
            }),
            workers: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
        }
    }

    /// Wraps a topology with a declared (closed) entry type: the full
    /// shape-aware analysis rejects the net up front
    /// ([`SnetError::Analysis`]) on any error-severity finding, and its
    /// exact-match proofs annotate the execution plan so fused boxes
    /// skip their per-record type checks (see
    /// [`crate::Net::with_entry_type`]).
    pub fn with_entry_type(
        spec: NetSpec,
        entry: &snet_core::RType,
        config: EngineConfig,
    ) -> Result<SchedNet, SnetError> {
        let mut net = SchedNet::with_config(spec, config);
        let (analysis, _annotated) = snet_analyze::analyze_and_annotate(
            &mut net.plan,
            entry,
            &crate::engine::analyze_cfg(&config),
        );
        let errors: Vec<_> = analysis.errors().cloned().collect();
        if !errors.is_empty() {
            return Err(SnetError::Analysis(errors));
        }
        net.preflight.clear();
        Ok(net)
    }

    /// The underlying topology.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// The pre-flight diagnostics this net was constructed with (empty
    /// when the analysis passed or was opted out).
    pub fn preflight_diagnostics(&self) -> &[snet_core::Diagnostic] {
        &self.preflight
    }

    /// Worker threads spawned by this net over its whole lifetime.
    /// Stays at [`EngineConfig::workers`] no matter how many runs the
    /// net executes — the observable guarantee that runs reuse the
    /// persistent pool instead of spawning per call.
    pub fn workers_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Spawns the worker pool if it is not already running.
    fn ensure_workers(&self) {
        let mut workers = self.workers.lock();
        if !workers.is_empty() {
            return;
        }
        let n = self.config.workers.max(1);
        let locals: Vec<Worker<Arc<Task>>> = (0..n).map(|_| Worker::new_fifo()).collect();
        let stealers: Arc<Vec<Stealer<Arc<Task>>>> =
            Arc::new(locals.iter().map(|w| w.stealer()).collect());
        let pin = self.config.pin_workers;
        for (i, local) in locals.into_iter().enumerate() {
            let sh = Arc::clone(&self.shared);
            let stealers = Arc::clone(&stealers);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("snet-sched-{i}"))
                    .spawn(move || {
                        if pin {
                            pin_to_core(i);
                        }
                        worker_loop(i, local, &stealers, &sh)
                    })
                    .expect("spawn sched worker"),
            );
        }
        self.spawned.fetch_add(n, Ordering::Relaxed);
    }

    /// Instantiates the network on the shared pool and returns a handle
    /// for streaming records in and out.
    ///
    /// Ingress is bounded by [`EngineConfig::channel_capacity`]
    /// (blocking [`SchedHandle::send`], non-blocking
    /// [`SchedHandle::try_send`]); outputs stream out through a bounded
    /// channel as the sink produces them. Closing the input
    /// ([`SchedHandle::close_input`] / [`SchedHandle::finish`] / drop)
    /// triggers the usual sender-refcount end-of-stream cascade.
    pub fn start(&self) -> SchedHandle {
        self.ensure_workers();
        let cap = self.config.channel_capacity.max(1);
        // A network that provably cannot divert gets a 1-slot stub
        // channel instead of the real buffer, keeping the
        // fault-free streaming path free of the allocation.
        let dead_cap = if self.diverts {
            cap * DEAD_CAPACITY_FACTOR
        } else {
            1
        };
        let (dead_tx, dead_rx) = bounded(dead_cap);
        let run = Run::new(
            self.config.deadline.map(|d| Instant::now() + d),
            DeadDest::Stream(dead_tx),
        );
        let (out_tx, out_rx) = bounded(cap);
        let sink = Task::new(
            "sink",
            State::Sink {
                buf: pool::take_vec(),
                dest: SinkDest::Stream(out_tx),
            },
            &run,
        );
        if !self.preflight.is_empty() {
            // Pre-flight rejected the net: the run starts already
            // failed and `finish()` reports the analysis error.
            run.fail(SnetError::Analysis(self.preflight.clone()));
        }
        let entry = build(&self.plan, Port::new(&sink), &run);
        SchedHandle {
            input: Mutex::new(Some(entry)),
            output: out_rx,
            dead: dead_rx,
            run,
            sh: Arc::clone(&self.shared),
        }
    }

    /// Feeds a batch of records through the network and collects the
    /// complete output stream (arrival order).
    pub fn run_batch(&self, records: Vec<Record>) -> Result<Vec<Record>, SnetError> {
        let (outs, _trace) = self.run_batch_traced(records)?;
        Ok(outs)
    }

    /// Like [`SchedNet::run_batch`] but also returns the run's
    /// [`Trace`].
    ///
    /// The batch rides the same persistent pool as streaming runs: the
    /// whole input lands in the entry mailbox under one lock with one
    /// wake (the input is already materialized, so bounding ingress
    /// would buy nothing), the input closes, and the driver sleeps
    /// until the sink's finalization signals completion.
    pub fn run_batch_traced(
        &self,
        records: Vec<Record>,
    ) -> Result<(Vec<Record>, Arc<Trace>), SnetError> {
        let report = self.run_batch_report(records)?;
        Ok((report.outputs, report.trace))
    }

    /// Feeds a batch and returns the full [`crate::RunReport`]:
    /// outputs, diverted dead letters, and the run's trace. This is
    /// the driver to use with
    /// [`snet_core::fault::FailurePolicy::DeadLetter`], where dropped
    /// records are data, not errors.
    pub fn run_batch_report(&self, records: Vec<Record>) -> Result<crate::RunReport, SnetError> {
        if !self.preflight.is_empty() {
            return Err(SnetError::Analysis(self.preflight.clone()));
        }
        self.ensure_workers();
        let dead = Arc::new(Mutex::new(Vec::new()));
        let run = Run::new(
            self.config.deadline.map(|d| Instant::now() + d),
            DeadDest::Collect(Arc::clone(&dead)),
        );
        let outputs = Arc::new(Mutex::new(Vec::new()));
        let sink = Task::new(
            "sink",
            State::Sink {
                buf: pool::take_vec(),
                dest: SinkDest::Collect(Arc::clone(&outputs)),
            },
            &run,
        );
        let entry = build(&self.plan, Port::new(&sink), &run);
        entry.send_now(records, &self.shared, None);
        entry.close(&self.shared, None);
        run.wait_done();
        if let Some(e) = run.error.lock().take() {
            return Err(e);
        }
        let outs = std::mem::take(&mut *outputs.lock());
        let dead_letters = std::mem::take(&mut *dead.lock());
        Ok(crate::RunReport {
            outputs: outs,
            dead_letters,
            trace: Arc::clone(&run.trace),
        })
    }
}

impl Drop for SchedNet {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Lock-then-notify: a worker that saw `shutdown == false` is
        // either still holding the sleep lock (we wait for it to start
        // waiting) or already parked — both observe the notify.
        drop(self.shared.sleep.lock());
        self.shared.cv.notify_all();
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }
}

struct SleepState {}

/// Pool-lifetime scheduler state, shared by all runs of one `SchedNet`.
struct Shared {
    injector: Injector<Arc<Task>>,
    /// Backpressure-deferred tasks (min-heap on deadline), shared so
    /// that *any* worker picks an expired deferral up — a deferring
    /// worker that then sinks into a long activation must not pin the
    /// deferred task. Survives across runs: a deferral parked at the
    /// end of one run is resumed by whichever worker probes next.
    /// Guarded by `deferred_count` so the lock is only touched under
    /// backpressure (cold path).
    deferred: Mutex<BinaryHeap<Deferred>>,
    /// Entries in `deferred`; lets the per-activation dispatch path skip
    /// the heap mutex entirely in the common no-backpressure case.
    deferred_count: AtomicUsize,
    sleep: Mutex<SleepState>,
    cv: Condvar,
    /// Workers currently parked on the condvar (lets producers skip the
    /// notify syscall on the hot path when everyone is busy).
    sleepers: AtomicUsize,
    /// Pool teardown flag, set once when the owning `SchedNet` drops.
    shutdown: AtomicBool,
    config: EngineConfig,
}

impl Shared {
    fn high_water(&self) -> usize {
        self.config.channel_capacity.max(1).saturating_mul(16)
    }
}

/// Per-run state: every task of one run's graph holds an `Arc` to its
/// run, which is how a pool worker — which knows nothing about runs —
/// finds the right trace, error slot, and completion latch for whatever
/// task it picked up. Independent runs can therefore share the pool.
struct Run {
    trace: Arc<Trace>,
    error: Mutex<Option<SnetError>>,
    aborted: AtomicBool,
    /// Absolute deadline for this run, fixed when the run is created
    /// from [`EngineConfig::deadline`]. Checked at the existing
    /// preemption points (activation start, the amortized
    /// backpressure-stride check, the driver's waits); `None` costs a
    /// single branch per check.
    deadline_at: Option<Instant>,
    /// Dead-letter sequence-number allocator for this run.
    seq: AtomicU64,
    /// Where records diverted under `FailurePolicy::DeadLetter` go.
    dead: DeadDest,
    /// Completion latch, set by the sink's finalization (the sink is
    /// always the last task of a run to finalize — its senders only
    /// reach zero after every upstream task has closed its ports).
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// Where a run's dead letters are delivered; the fault-path analogue of
/// [`SinkDest`].
enum DeadDest {
    /// Batch mode: append to the driver's dead-letter vector.
    Collect(Arc<Mutex<Vec<DeadLetter>>>),
    /// Streaming mode: push into the handle's bounded dead-letter
    /// channel. A worker never blocks on it — overflow fails the run.
    Stream(Sender<DeadLetter>),
}

impl Run {
    fn new(deadline_at: Option<Instant>, dead: DeadDest) -> Arc<Run> {
        Arc::new(Run {
            trace: Arc::new(Trace::new()),
            error: Mutex::new(None),
            aborted: AtomicBool::new(false),
            deadline_at,
            seq: AtomicU64::new(0),
            dead,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        })
    }

    fn fail(&self, e: SnetError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.aborted.store(true, Ordering::Release);
    }

    /// Preemption check: true once the run is aborted or past its
    /// deadline (recording `DeadlineExceeded` on first detection).
    /// Without a deadline this is one atomic load and one branch.
    fn should_stop(&self) -> bool {
        if self.aborted.load(Ordering::Acquire) {
            return true;
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                self.fail(SnetError::DeadlineExceeded);
                return true;
            }
        }
        false
    }

    /// Delivers a diverted record to the run's dead-letter destination.
    /// Never blocks; a full streaming channel (consumer not draining)
    /// is a fatal error so the bound is real.
    fn divert(&self, dl: Box<DeadLetter>) -> Result<(), SnetError> {
        use crossbeam_channel::TrySendError as ChanTrySend;
        Trace::add(&self.trace.dead_letters, 1);
        match &self.dead {
            DeadDest::Collect(v) => {
                v.lock().push(*dl);
                Ok(())
            }
            DeadDest::Stream(tx) => match tx.try_send(*dl) {
                Ok(()) => Ok(()),
                Err(ChanTrySend::Full(dl)) => Err(SnetError::Engine(format!(
                    "dead-letter channel overflow; last report: {}",
                    dl.report
                ))),
                // Receiver dropped: the consumer stopped listening;
                // letters are discarded but the run continues.
                Err(ChanTrySend::Disconnected(_)) => Ok(()),
            },
        }
    }

    fn signal_done(&self) {
        *self.done.lock() = true;
        self.done_cv.notify_all();
    }

    /// Blocks until the run's sink has finalized. Purely wake-driven;
    /// the timeout is a lost-wakeup safety net, not a poll interval.
    /// Each wakeup re-checks the deadline so an expired run is failed
    /// (and its tasks abort at their next activation) even while the
    /// driver sleeps here.
    fn wait_done(&self) {
        let mut done = self.done.lock();
        while !*done {
            let (guard, _) = self
                .done_cv
                .wait_timeout(done, DONE_SAFETY_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
            done = guard;
            if !*done {
                let _ = self.should_stop();
            }
        }
    }
}

/// One component instance: mailbox + semantic state.
struct Task {
    label: &'static str,
    /// The run this task belongs to (trace, error slot, completion).
    run: Arc<Run>,
    mailbox: Mutex<VecDeque<Record>>,
    /// Signalled (paired with the `mailbox` mutex) whenever the mailbox
    /// shrinks while `ingress_waiters` is non-zero; only the streaming
    /// entry path ever waits on it.
    ingress_cv: Condvar,
    ingress_waiters: AtomicUsize,
    /// Open upstream ports; 0 = end-of-stream once the mailbox drains.
    open_senders: AtomicUsize,
    /// True while queued or deferred (prevents double-queueing; cleared
    /// when a worker picks the task up).
    scheduled: AtomicBool,
    /// Consecutive zero-progress (backpressured) activations; drives
    /// the exponential re-enqueue backoff. Reset on any progress.
    backoff: AtomicU32,
    state: Mutex<State>,
}

enum State {
    Box(snet_core::boxdef::BoxDef, Port),
    Filter(snet_core::FilterSpec, Port),
    /// A fused SISO chain: one task pushes each record through every
    /// stage with zero mailbox hops. `runner` and `outs` are reusable
    /// scratch, so the steady-state per-record path allocates nothing.
    Chain {
        stages: Vec<ChainStage>,
        runner: ChainRunner,
        outs: Vec<Record>,
        out: Port,
    },
    Sync {
        spec: SyncSpec,
        st: SyncState,
        out: Port,
    },
    Par {
        patterns: Vec<Vec<Pattern>>,
        branches: Vec<Port>,
        out: Port,
    },
    Star {
        body: NetSpec,
        exit: Pattern,
        into_body: Option<Port>,
        out: Port,
    },
    Split {
        body: NetSpec,
        tag: Label,
        replicas: HashMap<i64, Port>,
        out: Port,
    },
    /// Terminal output collector; records coalesce in `buf` and move to
    /// `dest` once per batch/activation.
    Sink {
        buf: Vec<Record>,
        dest: SinkDest,
    },
    /// Finalized: outputs closed, no further effects.
    Done,
}

/// Where a run's sink delivers its records.
enum SinkDest {
    /// Batch mode: append to the driver's output vector.
    Collect(Arc<Mutex<Vec<Record>>>),
    /// Streaming mode: push into the handle's bounded output channel.
    /// Dropping the sender (at sink finalization) is the consumer's
    /// end-of-stream.
    Stream(Sender<Record>),
}

impl SinkDest {
    /// Best-effort delivery of the sink's coalescing buffer. A worker
    /// must never block (or sleep) inside a sink activation — it holds
    /// the sink's state lock, so every other worker would churn on the
    /// re-queued-but-locked task while the consumer starves. Streamed
    /// records that do not fit in the output channel therefore stay at
    /// the front of `buf` and the sink *defers* through the scheduler's
    /// zero-progress backoff machinery until the consumer drains.
    fn flush(&self, buf: &mut Vec<Record>) {
        if buf.is_empty() {
            return;
        }
        match self {
            SinkDest::Collect(outs) => outs.lock().append(buf),
            SinkDest::Stream(tx) => {
                // One lock + at most one consumer wake for the whole
                // window; leftovers stay in `buf` for the deferred
                // retry. A disconnected consumer drops the rest.
                if tx.try_send_front(buf).is_err() {
                    buf.clear();
                }
            }
        }
    }

    /// Can the destination accept nothing further right now? Drives the
    /// sink's cooperative-backpressure yield.
    fn is_full(&self) -> bool {
        match self {
            SinkDest::Collect(_) => false,
            SinkDest::Stream(tx) => tx.is_full(),
        }
    }
}

impl Task {
    fn new(label: &'static str, state: State, run: &Arc<Run>) -> Arc<Task> {
        Arc::new(Task {
            label,
            run: Arc::clone(run),
            mailbox: Mutex::new(pool::take_deque()),
            ingress_cv: Condvar::new(),
            ingress_waiters: AtomicUsize::new(0),
            open_senders: AtomicUsize::new(0),
            scheduled: AtomicBool::new(false),
            backoff: AtomicU32::new(0),
            state: Mutex::new(state),
        })
    }

    /// Discards buffered input (abort path), waking any ingress waiter
    /// blocked on the freed space.
    fn clear_mailbox(&self) {
        self.mailbox.lock().clear();
        if self.ingress_waiters.load(Ordering::Acquire) > 0 {
            self.ingress_cv.notify_all();
        }
    }
}

/// An open upstream handle onto a task's mailbox. Creating one
/// increments the task's sender count; [`Port::close`] decrements it.
/// Ports are closed explicitly (not on drop) so the close can schedule
/// the receiving task.
///
/// Sends coalesce in `buf` (owned by the producing task's activation —
/// the state lock serializes all access): records are pushed downstream
/// only when the buffer reaches [`EngineConfig::batch`] records or the
/// activation ends, so the consumer-side mailbox lock and wake are paid
/// once per batch, not once per record. The invariant between
/// activations is an *empty* buffer — every activation flushes all of
/// its output edges before yielding, so no record can be stranded in a
/// buffer while its producer waits.
struct Port {
    task: Arc<Task>,
    buf: Vec<Record>,
}

impl Port {
    fn new(task: &Arc<Task>) -> Port {
        task.open_senders.fetch_add(1, Ordering::AcqRel);
        Port {
            task: Arc::clone(task),
            buf: pool::take_vec(),
        }
    }

    fn another(&self) -> Port {
        Port::new(&self.task)
    }

    /// Buffered send: coalesces until `batch` records are pending, then
    /// pushes the whole run with one lock acquisition and one wake.
    fn send(&mut self, rec: Record, batch: usize, sh: &Shared, local: Option<&Worker<Arc<Task>>>) {
        self.buf.push(rec);
        if self.buf.len() >= batch {
            self.flush(sh, local);
        }
    }

    /// Pushes any buffered records downstream: one mailbox lock, one
    /// consumer wake, however many records.
    fn flush(&mut self, sh: &Shared, local: Option<&Worker<Arc<Task>>>) {
        if self.buf.is_empty() {
            return;
        }
        {
            let mut mb = self.task.mailbox.lock();
            mb.extend(self.buf.drain(..));
        }
        notify(&self.task, sh, local);
    }

    /// Unbuffered batch send (batch-driver feed path): extends the
    /// mailbox under one lock and wakes the consumer once.
    fn send_now(
        &self,
        recs: impl IntoIterator<Item = Record>,
        sh: &Shared,
        local: Option<&Worker<Arc<Task>>>,
    ) {
        let any = {
            let mut mb = self.task.mailbox.lock();
            let before = mb.len();
            mb.extend(recs);
            mb.len() > before
        };
        if any {
            notify(&self.task, sh, local);
        }
    }

    fn backlog(&self) -> usize {
        self.task.mailbox.lock().len()
    }

    fn close(mut self, sh: &Shared, local: Option<&Worker<Arc<Task>>>) {
        // Sends happen-before close: drain the coalescing buffer first.
        self.flush(sh, local);
        pool::give_vec(std::mem::take(&mut self.buf));
        if self.task.open_senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: the task must run once more to observe
            // end-of-stream and finalize.
            notify(&self.task, sh, local);
        }
    }
}

/// Queues a task if it is not already queued.
fn notify(task: &Arc<Task>, sh: &Shared, local: Option<&Worker<Arc<Task>>>) {
    if task
        .scheduled
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        match local {
            Some(w) => w.push(Arc::clone(task)),
            None => sh.injector.push(Arc::clone(task)),
        }
        // Skipping the syscall when every worker is busy is a large win
        // on the hot path. The push above is SeqCst-ordered against a
        // parking worker's sleeper registration (see `park`), so a
        // registered sleeper is always observed here.
        //
        // Lock-then-notify (as in `Drop for SchedNet`): a parking
        // worker holds the sleep lock from sleeper registration until
        // its condvar wait releases it, so acquiring it here squeezes
        // out the window where the push lands after the worker's
        // injector re-probe but the notify fires before the worker is
        // actually waiting — a lost wake that previously cost the 1ms
        // timed-wait backstop in latency. Found by the snet-check
        // mailbox model (`crates/check/tests/mailbox.rs`, which pins
        // `timeouts_fired() == 0`); only taken when a worker is
        // actually asleep, so the busy hot path is unchanged.
        if sh.sleepers.load(Ordering::SeqCst) > 0 {
            drop(sh.sleep.lock());
            sh.cv.notify_one();
        }
    }
}

/// A backpressure-deferred task: re-run no earlier than `due`.
/// Ordered as a min-heap on the deadline.
struct Deferred {
    due: Instant,
    task: Arc<Task>,
}

impl PartialEq for Deferred {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Deferred {}
impl PartialOrd for Deferred {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deferred {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other.due.cmp(&self.due)
    }
}

/// Best-effort worker→core pinning: worker `i` lands on core
/// `i % cores` via a raw `sched_setaffinity` syscall binding (no
/// external crate). Failure — a container-restricted cpuset, an
/// exotic kernel — silently leaves the default affinity; pinning is a
/// locality hint, never a correctness requirement.
#[cfg(target_os = "linux")]
fn pin_to_core(core: usize) {
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let core = core % cores;
    // `cpu_set_t` is 1024 bits (16 × u64) on every mainstream Linux ABI.
    let mut set = [0u64; 16];
    set[core / 64] |= 1 << (core % 64);
    // SAFETY: FFI call with no preconditions beyond a valid buffer:
    // `set` is a live, initialized stack array and `cpusetsize` is its
    // exact byte length, matching the glibc signature. pid 0 means the
    // calling thread, and the result is deliberately ignored (failure
    // leaves the default affinity — pinning is best-effort).
    unsafe {
        let _ = sched_setaffinity(0, std::mem::size_of_val(&set), set.as_ptr());
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: usize) {}

fn worker_loop(
    index: usize,
    local: Worker<Arc<Task>>,
    stealers: &[Stealer<Arc<Task>>],
    sh: &Shared,
) {
    // The task we last failed to lock (its activation was still running
    // on another worker). Seeing it twice in a row means there is no
    // other work — park briefly instead of spinning on the mutex.
    let mut contended: Option<*const Task> = None;
    // The sibling we last stole from successfully; probed first on the
    // next steal (producers are bursty, so the victim that had work a
    // moment ago likely still does — and under pinning, re-stealing
    // from the same neighbour keeps the records on adjacent caches).
    let mut last_victim: Option<usize> = None;
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        let task = find_task(index, &local, stealers, &mut last_victim, sh);
        match task {
            Some(task) => {
                // A task can be re-queued while its previous activation
                // is still draining on another worker; blocking on the
                // state mutex would idle this worker behind up to a full
                // activation budget of box calls. Hand the entry back to
                // the global queue and look for other work instead.
                let guard = task.state.try_lock();
                match guard {
                    Some(state) => {
                        contended = None;
                        if let Some(due) = execute(&task, state, sh, Some(&local)) {
                            // Zero-progress backpressure yield: the task
                            // holds its `scheduled` flag and re-runs at
                            // the deadline. Count first (release): a
                            // probe that sees the count also sees the
                            // entry once it takes the heap lock.
                            sh.deferred_count.fetch_add(1, Ordering::Release);
                            sh.deferred.lock().push(Deferred {
                                due,
                                task: Arc::clone(&task),
                            });
                        }
                    }
                    None => {
                        let ptr = Arc::as_ptr(&task);
                        sh.injector.push(Arc::clone(&task));
                        if contended.replace(ptr) == Some(ptr) && park(sh, Duration::from_millis(1))
                        {
                            return;
                        }
                    }
                }
            }
            None => {
                contended = None;
                // Park until notified, but no longer than the earliest
                // deferred deadline (nor the 1ms re-probe quantum).
                let quantum = Duration::from_millis(1);
                let timeout = if sh.deferred_count.load(Ordering::Acquire) > 0 {
                    sh.deferred
                        .lock()
                        .peek()
                        .map(|d| d.due.saturating_duration_since(Instant::now()).min(quantum))
                        .unwrap_or(quantum)
                } else {
                    quantum
                };
                if park(sh, timeout) {
                    return;
                }
            }
        }
    }
}

/// Parks the worker until new work may exist; returns true on shutdown.
fn park(sh: &Shared, timeout: Duration) -> bool {
    let sleep = sh.sleep.lock();
    if sh.shutdown.load(Ordering::Acquire) {
        return true;
    }
    sh.sleepers.fetch_add(1, Ordering::SeqCst);
    // Closing the probe/park race: a producer that pushed after our
    // (empty) queue probe may have read `sleepers == 0` before the
    // increment above and skipped its notify. Re-probing the injector
    // *after* registering as a sleeper bounds that loss to the
    // injector-push window; the timed wait below backstops the
    // remaining (local-deque) cases. Deferrals are deliberately NOT
    // re-probed: they are deadline-driven, the caller's `timeout`
    // already expires at the earliest deadline, and bailing out on a
    // merely-pending (not yet due) deferral would turn every idle
    // worker into a busy-spinner for the whole backpressure window.
    if !sh.injector.is_empty() {
        sh.sleepers.fetch_sub(1, Ordering::SeqCst);
        return false;
    }
    let _ = sh
        .cv
        .wait_timeout(sleep, timeout)
        .unwrap_or_else(|e| e.into_inner());
    sh.sleepers.fetch_sub(1, Ordering::SeqCst);
    false
}

/// Runs one activation with panic containment. User box panics are
/// already converted to errors inside `step`; a panic escaping the
/// activation itself (a semantics/scheduler bug) must still not kill a
/// persistent-pool thread — the pool never respawns workers, so an
/// unwinding activation would silently shrink the pool and strand the
/// run's completion latch forever. Instead the task's run is failed and
/// the task finalized, so the end-of-stream cascade (and the driver)
/// still complete, with the panic reported as the run's error.
fn execute(
    task: &Arc<Task>,
    state: parking_lot::MutexGuard<'_, State>,
    sh: &Shared,
    local: Option<&Worker<Arc<Task>>>,
) -> Option<Instant> {
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_task(task, state, sh, local)
    }));
    match unwound {
        Ok(defer) => defer,
        Err(payload) => {
            let cause = panic_cause(payload.as_ref());
            task.run.fail(SnetError::Engine(format!(
                "scheduler activation panicked: {cause}"
            )));
            task.clear_mailbox();
            // The state mutex recovers from the poisoned unwind (shim
            // semantics); finalizing closes the task's ports so the
            // cascade still reaches the sink.
            if let Some(mut st) = task.state.try_lock() {
                finalize(task, &mut st, sh, local);
            }
            None
        }
    }
}

/// Pops the earliest backpressure deferral if its deadline has passed.
/// The atomic count keeps the no-backpressure path off the heap mutex;
/// counting is Release/AcqRel-paired with the push sites so a probe
/// that sees the count also sees the entry under the lock.
fn pop_due_deferral(sh: &Shared) -> Option<Arc<Task>> {
    if sh.deferred_count.load(Ordering::Acquire) == 0 {
        return None;
    }
    let mut deferred = sh.deferred.lock();
    if let Some(d) = deferred.peek() {
        if d.due <= Instant::now() {
            let task = deferred.pop().expect("peeked entry").task;
            sh.deferred_count.fetch_sub(1, Ordering::AcqRel);
            return Some(task);
        }
    }
    None
}

/// Pops one ready task from the pool's *global* sources (expired
/// deferrals, then the injector) — the part of [`find_task`] available
/// to threads without a worker deque, i.e. a driver thread helping out
/// via [`SchedHandle::drive`].
fn pop_global(sh: &Shared) -> Option<Arc<Task>> {
    if let Some(task) = pop_due_deferral(sh) {
        return Some(task);
    }
    loop {
        match sh.injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Retry => std::hint::spin_loop(),
            Steal::Empty => return None,
        }
    }
}

fn find_task(
    index: usize,
    local: &Worker<Arc<Task>>,
    stealers: &[Stealer<Arc<Task>>],
    last_victim: &mut Option<usize>,
    sh: &Shared,
) -> Option<Arc<Task>> {
    // Expired backoff deferrals first: they are the oldest work and
    // their congestion has had the longest time to clear. The heap is
    // shared, so whichever worker probes first resumes the task.
    if let Some(task) = pop_due_deferral(sh) {
        return Some(task);
    }
    if let Some(t) = local.pop() {
        return Some(t);
    }
    // The injector and sibling deques can report transient `Retry`
    // (lost CAS or a mid-swap buffer); keep probing until every source
    // reports a definitive miss. Sibling steals take *half* the
    // victim's backlog into the local deque (steal-half): one raid
    // covers several future activations, so stolen tasks and their
    // record batches keep running on this worker's core instead of
    // ping-ponging back.
    loop {
        let mut retry = false;
        match sh.injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        // Affinity probe: the last productive victim first.
        if let Some(v) = *last_victim {
            match stealers[v].steal_batch_and_pop(local) {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => *last_victim = None,
            }
        }
        // Ring scan from our own slot: under pinning, (index + 1) is
        // the nearest neighbour, so the scan is nearest-first.
        let n = stealers.len();
        for k in 1..n {
            let v = (index + k) % n;
            match stealers[v].steal_batch_and_pop(local) {
                Steal::Success(t) => {
                    *last_victim = Some(v);
                    return Some(t);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
        std::hint::spin_loop();
    }
}

/// Runs one activation of a task: drain its mailbox in hand-off
/// batches (bounded by the activation budget and downstream high-water
/// marks), flush every output edge once, then finalize if end-of-stream
/// has been reached. The caller holds the state lock (acquired with
/// `try_lock`, so workers never block behind a running activation).
///
/// Returns `Some(deadline)` for a zero-progress backpressure yield that
/// must be re-run no earlier than the deadline, `None` otherwise.
fn run_task(
    task: &Arc<Task>,
    mut state: parking_lot::MutexGuard<'_, State>,
    sh: &Shared,
    local: Option<&Worker<Arc<Task>>>,
) -> Option<Instant> {
    // From here on, producers may re-queue the task; the held state
    // lock serializes actual execution.
    task.scheduled.store(false, Ordering::Release);

    // Activation-start preemption point: abort flag and run deadline.
    if task.run.should_stop() {
        task.clear_mailbox();
        finalize(task, &mut state, sh, local);
        return None;
    }

    let batch = sh.config.batch.max(1);
    let budget = ACTIVATION_BUDGET.max(batch);
    // Probing the downstream mailbox for backpressure takes its lock;
    // amortize the check over at least a batch (and no fewer than 16
    // records, so `batch = 1` keeps the pre-batching cadence).
    let bp_stride = batch.max(16);
    let mut next_bp_check = 0usize;
    let mut processed = 0usize;
    // Records claimed from the mailbox for the current hand-off batch.
    // Pooled (with drop-reclaim, for the failure exits): one activation
    // per batch used to mean one short-lived Vec per batch — in steady
    // state that is the hottest allocation in the engine.
    let mut inbuf = pool::PooledVec::take();
    while processed < budget {
        if processed >= next_bp_check {
            // Mid-drain preemption point, amortized on the same stride
            // as the backpressure probe.
            if task.run.should_stop() {
                task.clear_mailbox();
                finalize(task, &mut state, sh, local);
                return None;
            }
            if output_backpressured(&state, sh) {
                break;
            }
            next_bp_check = processed + bp_stride;
        }
        // Refill: claim up to a whole batch with one mailbox lock.
        {
            let mut mb = task.mailbox.lock();
            let take = batch.min(budget - processed).min(mb.len());
            if take == 0 {
                break;
            }
            inbuf.extend(mb.drain(..take));
        }
        // The mailbox just shrank: wake a streaming sender blocked on
        // the ingress bound, if any.
        if task.ingress_waiters.load(Ordering::Acquire) > 0 {
            task.ingress_cv.notify_all();
        }
        // Fused chains take the whole claimed batch in one stage-major
        // traversal (identical observable semantics, one panic guard
        // and one buffer reset per batch instead of per record); every
        // other state steps record-at-a-time.
        if let State::Chain {
            stages,
            runner,
            outs,
            out,
        } = &mut *state
        {
            let n = inbuf.len();
            let mut tally = ChainTally::default();
            let run = &task.run;
            let res = runner.step_batch(
                stages,
                sh.config.policy,
                sh.config.mismatch,
                &run.seq,
                inbuf.drain(..),
                &mut tally,
                outs,
                &mut |dl| run.divert(dl),
            );
            run.trace.count_chain(&tally);
            if let Err(e) = res {
                task.run.fail(e);
                task.clear_mailbox();
                finalize(task, &mut state, sh, local);
                return None;
            }
            for r in outs.drain(..) {
                out.send(r, batch, sh, local);
            }
            processed += n;
        } else {
            for rec in inbuf.drain(..) {
                if let Err(e) = step(&mut state, rec, sh, &task.run, local) {
                    task.run.fail(e);
                    task.clear_mailbox();
                    finalize(task, &mut state, sh, local);
                    return None;
                }
                processed += 1;
            }
        }
    }

    // Forward this activation's entire output: every edge gets at most
    // one more mailbox push + wake, and the between-activations
    // invariant (empty coalescing buffers) is restored.
    flush_outputs(&mut state, sh, local);
    if processed > 0 {
        task.backoff.store(0, Ordering::Relaxed);
    }

    // Order matters: read the sender count BEFORE the final mailbox
    // probe. Each port's sends happen-before its close, so observing
    // zero senders first guarantees the mailbox probe sees every record
    // — probing the mailbox first could miss a record sent (and closed)
    // between the two reads.
    let senders = task.open_senders.load(Ordering::Acquire);
    let mailbox_empty = task.mailbox.lock().is_empty();
    // Sink delivery happens here, not in `flush_outputs`: deliver when
    // the inbound stream pauses (empty mailbox — latency now matters)
    // or a full hand-off batch has accumulated; holding smaller
    // dribbles while more input is already queued coalesces consumer
    // wakes without ever stranding a record (a non-empty mailbox
    // guarantees another activation). A streaming sink can still be
    // left with undelivered records when the output channel was full:
    // nothing in the graph re-schedules it when the consumer drains
    // (the channel has no back-edge into the scheduler), so it must
    // re-defer itself even with an empty mailbox.
    let undelivered = if let State::Sink { buf, dest } = &mut *state {
        if mailbox_empty || buf.len() >= batch {
            dest.flush(buf);
        }
        !buf.is_empty()
    } else {
        false
    };
    if mailbox_empty && !undelivered {
        if senders == 0 {
            finalize(task, &mut state, sh, local);
        }
        None
    } else {
        // Note the finalize-gate: a sink with undelivered output is
        // never finalized, even at end-of-stream — it re-defers until
        // the consumer makes room (or hangs up). Finalizing instead
        // would force a blocking drain inside an activation, which
        // deadlocks a single-threaded driver that is simultaneously
        // the pool helper (`drive`) and the consumer.
        drop(state);
        if processed == 0 {
            // Zero-progress (backpressured) yield. Requeueing straight
            // onto the global queue spins hot while the downstream
            // mailbox stays full; instead, re-enqueue with exponential
            // backoff. Claiming `scheduled` here keeps producers from
            // double-queueing the task; if a producer won the race, its
            // queue entry owns the re-run.
            if task
                .scheduled
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let shift = task
                    .backoff
                    .fetch_add(1, Ordering::Relaxed)
                    .min(BACKOFF_MAX_SHIFT);
                return Some(Instant::now() + Duration::from_micros(1u64 << shift));
            }
            None
        } else {
            // Budget yield with progress made: run again soon, from the
            // local deque.
            notify(task, sh, local);
            None
        }
    }
}

/// Flushes every coalescing output buffer reachable from `state`: one
/// downstream mailbox push + consumer wake per edge with pending
/// records, and the sink's buffered outputs into its destination.
fn flush_outputs(state: &mut State, sh: &Shared, local: Option<&Worker<Arc<Task>>>) {
    match state {
        State::Box(_, out)
        | State::Filter(_, out)
        | State::Chain { out, .. }
        | State::Sync { out, .. } => {
            out.flush(sh, local);
        }
        State::Par { branches, out, .. } => {
            for b in branches.iter_mut() {
                b.flush(sh, local);
            }
            out.flush(sh, local);
        }
        State::Star { into_body, out, .. } => {
            if let Some(b) = into_body {
                b.flush(sh, local);
            }
            out.flush(sh, local);
        }
        State::Split { replicas, out, .. } => {
            for p in replicas.values_mut() {
                p.flush(sh, local);
            }
            out.flush(sh, local);
        }
        // The sink is absent on purpose: its delivery cadence is decided
        // in `run_task`'s tail (full batches, or everything once its
        // mailbox pauses), not at every activation boundary — flushing
        // dribbles per activation would wake the consumer per couple of
        // records and let it preempt the worker mid-stream.
        State::Sink { .. } | State::Done => {}
    }
}

/// Cooperative backpressure: stop consuming while the primary output
/// mailbox is over the high-water mark. Dispatchers are exempt (their
/// work per record is trivial and they feed many outputs). A streaming
/// sink with undelivered records and a full output channel yields the
/// same way — it must not grow its buffer while the consumer lags.
fn output_backpressured(state: &State, sh: &Shared) -> bool {
    let hw = sh.high_water();
    match state {
        State::Box(_, out)
        | State::Filter(_, out)
        | State::Chain { out, .. }
        | State::Sync { out, .. } => out.backlog() >= hw,
        State::Sink { buf, dest } => !buf.is_empty() && dest.is_full(),
        _ => false,
    }
}

/// Applies one record to a component (the shared small-step semantics),
/// emitting downstream through the coalescing port buffers — downstream
/// mailboxes see one push per [`EngineConfig::batch`] records (or per
/// activation), not one per record.
fn step(
    state: &mut State,
    rec: Record,
    sh: &Shared,
    run: &Arc<Run>,
    local: Option<&Worker<Arc<Task>>>,
) -> Result<(), SnetError> {
    let batch = sh.config.batch.max(1);
    match state {
        State::Box(def, out) => {
            // Box functions are user code: `policy_step` contains
            // panics and applies the failure policy (per-box override
            // first, engine default otherwise).
            let policy = def.effective_policy(sh.config.policy);
            let verdict = fault::policy_step(policy, &def.sig.name, &run.seq, rec, |r| {
                semantics::box_step(def, r, sh.config.mismatch)
            });
            match verdict {
                StepVerdict::Out { step, attempts } => {
                    if attempts > 1 {
                        Trace::add(&run.trace.retries, u64::from(attempts - 1));
                    }
                    if step.matched {
                        run.trace.count_box(step.work);
                    } else {
                        Trace::add(&run.trace.passthroughs, 1);
                    }
                    for r in step.records {
                        out.send(r, batch, sh, local);
                    }
                    Ok(())
                }
                StepVerdict::Dead(dl) => run.divert(dl),
                StepVerdict::Fatal(e) => Err(e),
            }
        }
        State::Filter(spec, out) => {
            // Filters follow the engine policy; their errors are
            // deterministic, so Retry degenerates to FailFast inside
            // `policy_step` (only `BoxFailure` retries).
            let verdict = fault::policy_step(sh.config.policy, "filter", &run.seq, rec, |r| {
                semantics::filter_step(spec, r, sh.config.mismatch)
            });
            match verdict {
                StepVerdict::Out { step, .. } => {
                    if step.matched {
                        Trace::add(&run.trace.filter_records, 1);
                    } else {
                        Trace::add(&run.trace.passthroughs, 1);
                    }
                    for r in step.records {
                        out.send(r, batch, sh, local);
                    }
                    Ok(())
                }
                StepVerdict::Dead(dl) => run.divert(dl),
                StepVerdict::Fatal(e) => Err(e),
            }
        }
        State::Chain {
            stages,
            runner,
            outs,
            out,
        } => {
            // The whole chain runs inside this activation; per-stage
            // policy resolution, retries, panic containment and dead-
            // letter attribution all happen inside `ChainRunner::step`
            // (the same `policy_step` calls the unfused tasks make).
            let mut tally = ChainTally::default();
            let res = runner.step(
                stages,
                sh.config.policy,
                sh.config.mismatch,
                &run.seq,
                rec,
                &mut tally,
                outs,
                &mut |dl| run.divert(dl),
            );
            run.trace.count_chain(&tally);
            res?;
            for r in outs.drain(..) {
                out.send(r, batch, sh, local);
            }
            Ok(())
        }
        State::Sync { spec, st, out } => {
            match st.push(spec, rec) {
                SyncOutcome::Stored => {
                    Trace::add(&run.trace.sync_stores, 1);
                }
                SyncOutcome::Fired(m) => {
                    Trace::add(&run.trace.sync_fires, 1);
                    out.send(m, batch, sh, local);
                }
                SyncOutcome::Passed(r) => out.send(r, batch, sh, local),
            }
            Ok(())
        }
        State::Par {
            patterns,
            branches,
            out,
        } => {
            let winners = semantics::matching_branches(patterns, &rec);
            match winners.first() {
                Some(&i) => {
                    Trace::add(&run.trace.dispatched, 1);
                    branches[i].send(rec, batch, sh, local);
                    Ok(())
                }
                None => match sh.config.mismatch {
                    MismatchPolicy::Forward => {
                        Trace::add(&run.trace.passthroughs, 1);
                        out.send(rec, batch, sh, local);
                        Ok(())
                    }
                    MismatchPolicy::Error => {
                        let cause = SnetError::TypeMismatch {
                            expected: "any parallel branch".into(),
                            got: format!("{rec:?}"),
                        };
                        fault::reject(sh.config.policy, "par-dispatch", &run.seq, rec, cause)
                            .and_then(|dl| run.divert(dl))
                    }
                },
            }
        }
        State::Star {
            body,
            exit,
            into_body,
            out,
        } => {
            if exit.matches(&rec) {
                out.send(rec, batch, sh, local);
                return Ok(());
            }
            if into_body.is_none() {
                // Unfold one replica: body feeding the next tap, which
                // shares our exit stream.
                Trace::add(&run.trace.star_unfoldings, 1);
                let next_tap = Task::new(
                    "star-tap",
                    State::Star {
                        body: body.clone(),
                        exit: exit.clone(),
                        into_body: None,
                        out: out.another(),
                    },
                    run,
                );
                let body_in = build(body, Port::new(&next_tap), run);
                *into_body = Some(body_in);
            }
            into_body
                .as_mut()
                .expect("replica just unfolded")
                .send(rec, batch, sh, local);
            Ok(())
        }
        State::Split {
            body,
            tag,
            replicas,
            out,
        } => {
            let Some(value) = rec.tag(*tag) else {
                let cause = SnetError::MissingTag(*tag);
                return fault::reject(sh.config.policy, "split-dispatch", &run.seq, rec, cause)
                    .and_then(|dl| run.divert(dl));
            };
            let port = replicas.entry(value).or_insert_with(|| {
                Trace::add(&run.trace.split_replicas, 1);
                build(body, out.another(), run)
            });
            Trace::add(&run.trace.dispatched, 1);
            port.send(rec, batch, sh, local);
            Ok(())
        }
        State::Sink { buf, dest } => {
            buf.push(rec);
            if buf.len() >= batch {
                dest.flush(buf);
            }
            Ok(())
        }
        State::Done => Ok(()), // post-teardown stragglers are dropped
    }
}

/// Observes end-of-stream: count stranded synchrocell records, close
/// every downstream port, and become inert. The sink's finalization is
/// the run's completion: it delivers the last buffered outputs, drops
/// the streaming sender (end-of-stream for the consumer) and wakes the
/// driver's completion latch.
fn finalize(task: &Arc<Task>, state: &mut State, sh: &Shared, local: Option<&Worker<Arc<Task>>>) {
    let _ = task.label;
    // Retire the mailbox's backing storage (it is empty on every orderly
    // end-of-stream; abort paths cleared it). Stragglers that land after
    // teardown go into the fresh empty deque and are dropped with it.
    pool::give_deque(std::mem::take(&mut *task.mailbox.lock()));
    if task.ingress_waiters.load(Ordering::Acquire) > 0 {
        task.ingress_cv.notify_all();
    }
    let old = std::mem::replace(state, State::Done);
    let close = |p: Port| p.close(sh, local);
    match old {
        State::Box(_, out) | State::Filter(_, out) => close(out),
        State::Chain { out, outs, .. } => {
            // `runner` drops here and returns its ping-pong buffers.
            pool::give_vec(outs);
            close(out);
        }
        State::Sync { st, out, .. } => {
            let stranded = st.pending().count() as u64;
            if stranded > 0 {
                Trace::add(&task.run.trace.sync_stranded, stranded);
            }
            close(out);
        }
        State::Par { branches, out, .. } => {
            for b in branches {
                close(b);
            }
            close(out);
        }
        State::Star { into_body, out, .. } => {
            if let Some(b) = into_body {
                close(b);
            }
            close(out);
        }
        State::Split { replicas, out, .. } => {
            for (_, p) in replicas {
                close(p);
            }
            close(out);
        }
        State::Sink { mut buf, dest } => {
            // By the finalize-gate in `run_task` the buffer is empty on
            // every orderly end-of-stream; a non-empty buffer here means
            // abort or a hung-up consumer, where dropping leftovers is
            // the contract.
            dest.flush(&mut buf);
            pool::give_vec(buf);
            // Streaming mode: dropping `dest` here disconnects the
            // output channel — the consumer's end-of-stream.
            drop(dest);
            task.run.signal_done();
        }
        State::Done => {}
    }
}

/// Recursively instantiates `spec` as a task subgraph of `run` feeding
/// `output`, returning the subtree's input port.
fn build(spec: &NetSpec, output: Port, run: &Arc<Run>) -> Port {
    match spec {
        NetSpec::Box(def) => {
            let t = Task::new("box", State::Box(def.clone(), output), run);
            Port::new(&t)
        }
        NetSpec::Filter(f) => {
            let t = Task::new("filter", State::Filter(f.clone(), output), run);
            Port::new(&t)
        }
        NetSpec::FusedChain { stages } => {
            let t = Task::new(
                "fused-chain",
                State::Chain {
                    stages: stages.clone(),
                    runner: ChainRunner::new(),
                    outs: pool::take_vec(),
                    out: output,
                },
                run,
            );
            Port::new(&t)
        }
        NetSpec::Sync(spec) => {
            let t = Task::new(
                "sync",
                State::Sync {
                    st: spec.new_state(),
                    spec: spec.clone(),
                    out: output,
                },
                run,
            );
            Port::new(&t)
        }
        NetSpec::Serial(a, b) => {
            let mid = build(b, output, run);
            build(a, mid, run)
        }
        NetSpec::Parallel { branches, .. } => {
            let patterns: Vec<Vec<Pattern>> = branches.iter().map(|b| b.input_patterns()).collect();
            let ports: Vec<Port> = branches
                .iter()
                .map(|b| build(b, output.another(), run))
                .collect();
            let t = Task::new(
                "par-dispatch",
                State::Par {
                    patterns,
                    branches: ports,
                    out: output,
                },
                run,
            );
            Port::new(&t)
        }
        NetSpec::Star { body, exit, .. } => {
            let t = Task::new(
                "star-tap",
                State::Star {
                    body: (**body).clone(),
                    exit: exit.clone(),
                    into_body: None,
                    out: output,
                },
                run,
            );
            Port::new(&t)
        }
        NetSpec::Split { body, tag, .. } => {
            // The scheduled engine, like the threaded one, ignores
            // placement; `snet-dist` honours it on the simulated cluster.
            let t = Task::new(
                "split-dispatch",
                State::Split {
                    body: (**body).clone(),
                    tag: *tag,
                    replicas: HashMap::new(),
                    out: output,
                },
                run,
            );
            Port::new(&t)
        }
        NetSpec::At { body, .. } | NetSpec::Named { body, .. } => build(body, output, run),
    }
}

/// Error returned by [`SchedHandle::try_send`].
#[derive(Debug)]
pub enum TrySendError {
    /// The entry mailbox is at [`EngineConfig::channel_capacity`]; the
    /// record is handed back untouched.
    Full(Record),
    /// The run can no longer accept input (input closed or the run
    /// failed); the cause is attached.
    Closed(SnetError),
}

impl fmt::Display for TrySendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "ingress full; record handed back"),
            TrySendError::Closed(e) => write!(f, "ingress closed: {e}"),
        }
    }
}

impl std::error::Error for TrySendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrySendError::Full(_) => None,
            TrySendError::Closed(e) => Some(e),
        }
    }
}

/// A running, streaming instance of a [`SchedNet`] on the shared
/// worker pool.
///
/// Mirrors the threaded engine's [`crate::engine::NetHandle`]: records
/// go in through [`SchedHandle::send`] (bounded — the call blocks once
/// [`EngineConfig::channel_capacity`] records are resident in the entry
/// mailbox), outputs stream out of [`SchedHandle::recv`] as the sink
/// produces them, and [`SchedHandle::finish`] (or dropping the handle)
/// closes the input and tears the run down via the usual end-of-stream
/// cascade. All methods take `&self`, so one thread can feed the
/// network while another drains it.
pub struct SchedHandle {
    input: Mutex<Option<Port>>,
    output: Receiver<Record>,
    dead: Receiver<DeadLetter>,
    run: Arc<Run>,
    sh: Arc<Shared>,
}

impl SchedHandle {
    /// The entry task, if the input is still open. Cloned out of the
    /// `input` mutex so no caller ever blocks while holding it — a
    /// `send` stalled on ingress backpressure must not lock out
    /// `input_backlog`/`close_input` from other threads. A send racing
    /// `close_input` may consequently land after finalization, where it
    /// is dropped like any other post-teardown straggler.
    fn entry_task(&self) -> Option<Arc<Task>> {
        self.input.lock().as_ref().map(|p| Arc::clone(&p.task))
    }

    /// Blocks until the entry mailbox has room or the run aborts,
    /// handing the re-acquired mailbox guard back. The timed wait is a
    /// lost-wakeup safety net; the entry task signals `ingress_cv`
    /// whenever it drains the mailbox.
    fn wait_for_space<'a>(
        &self,
        task: &'a Task,
        mut mb: parking_lot::MutexGuard<'a, VecDeque<Record>>,
        cap: usize,
    ) -> Result<parking_lot::MutexGuard<'a, VecDeque<Record>>, SnetError> {
        loop {
            // `should_stop` also trips on deadline expiry, so a sender
            // blocked on a stalled network is released with
            // `DeadlineExceeded` rather than parked forever. No ports
            // are closed here (we hold the mailbox lock; closing flushes
            // other locks) — `finish`/`cancel` kick the cascade.
            if self.run.should_stop() {
                return Err(self.current_error("network failed while sending"));
            }
            if mb.len() < cap {
                return Ok(mb);
            }
            task.ingress_waiters.fetch_add(1, Ordering::AcqRel);
            let (guard, _) = task
                .ingress_cv
                .wait_timeout(mb, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner());
            task.ingress_waiters.fetch_sub(1, Ordering::AcqRel);
            mb = guard;
        }
    }

    /// Sends one record into the network, blocking while the entry
    /// mailbox is at capacity (real ingress backpressure: a slow
    /// network throttles its producer instead of buffering unboundedly).
    pub fn send(&self, rec: Record) -> Result<(), SnetError> {
        let Some(task) = self.entry_task() else {
            return Err(SnetError::Engine("input already closed".into()));
        };
        let cap = self.sh.config.channel_capacity.max(1);
        let mut mb = self.wait_for_space(&task, task.mailbox.lock(), cap)?;
        mb.push_back(rec);
        drop(mb);
        notify(&task, &self.sh, None);
        Ok(())
    }

    /// Sends a pre-materialized batch, still under the ingress bound:
    /// records land in the entry mailbox in capacity-sized windows —
    /// one mailbox lock and one wake per window instead of per record
    /// — and the call blocks for drain space between windows, so
    /// resident records never exceed [`EngineConfig::channel_capacity`].
    /// The streaming counterpart of the batch driver's one-shot feed.
    pub fn send_all(&self, records: Vec<Record>) -> Result<(), SnetError> {
        let Some(task) = self.entry_task() else {
            return Err(SnetError::Engine("input already closed".into()));
        };
        let cap = self.sh.config.channel_capacity.max(1);
        let mut queue = records.into_iter();
        let mut next = queue.next();
        while next.is_some() {
            let mut mb = self.wait_for_space(&task, task.mailbox.lock(), cap)?;
            while next.is_some() && mb.len() < cap {
                mb.push_back(next.take().expect("loop guard"));
                next = queue.next();
            }
            drop(mb);
            notify(&task, &self.sh, None);
        }
        Ok(())
    }

    /// Non-blocking send: hands the record back as
    /// [`TrySendError::Full`] instead of blocking when the entry
    /// mailbox is at capacity.
    #[allow(clippy::result_large_err)] // Full carries the record back by design
    pub fn try_send(&self, rec: Record) -> Result<(), TrySendError> {
        let Some(task) = self.entry_task() else {
            return Err(TrySendError::Closed(SnetError::Engine(
                "input already closed".into(),
            )));
        };
        let task = &task;
        if self.run.aborted.load(Ordering::Acquire) {
            return Err(TrySendError::Closed(
                self.current_error("network failed while sending"),
            ));
        }
        let cap = self.sh.config.channel_capacity.max(1);
        {
            let mut mb = task.mailbox.lock();
            if mb.len() >= cap {
                return Err(TrySendError::Full(rec));
            }
            mb.push_back(rec);
        }
        notify(task, &self.sh, None);
        Ok(())
    }

    /// Records currently resident in the entry mailbox (0 once the
    /// input is closed). Never exceeds
    /// [`EngineConfig::channel_capacity`] when the handle's own senders
    /// are the only producers — the observable ingress bound.
    pub fn input_backlog(&self) -> usize {
        self.entry_task()
            .map(|t| t.mailbox.lock().len())
            .unwrap_or(0)
    }

    /// Closes the input stream (end-of-stream for the network).
    /// Idempotent.
    pub fn close_input(&self) {
        if let Some(port) = self.input.lock().take() {
            port.close(&self.sh, None);
        }
    }

    /// Cancels the run cooperatively: records [`SnetError::Cancelled`],
    /// raises the abort flag every task checks at its activation
    /// preemption points, and closes the input so the end-of-stream
    /// cascade finalizes every task — including the sink, which keeps
    /// the completion latch and the worker pool healthy for subsequent
    /// runs. Outputs already queued remain retrievable via
    /// [`SchedHandle::recv`]; [`SchedHandle::finish`] returns the
    /// error. Idempotent; a no-op if the run already failed or
    /// finished.
    pub fn cancel(&self) {
        self.run.fail(SnetError::Cancelled);
        self.close_input();
    }

    /// Receives the next output record; `None` once the output stream
    /// has terminated (sink finalized, or the pool shut down). Checks
    /// the abort flag and run deadline while blocked, so a stalled
    /// network cannot park the consumer past
    /// [`EngineConfig::deadline`].
    pub fn recv(&self) -> Option<Record> {
        loop {
            match self.output.recv_timeout(Duration::from_millis(100)) {
                Ok(rec) => return Some(rec),
                Err(RecvTimeoutError::Disconnected) => return None,
                Err(RecvTimeoutError::Timeout) => {
                    // A dropped pool (SchedNet gone) can no longer run
                    // the sink; don't block forever on it.
                    if self.sh.shutdown.load(Ordering::Acquire) {
                        return None;
                    }
                    if self.run.should_stop() {
                        // Aborted (cancel / failure / deadline): close
                        // the input so the cascade finalizes the sink,
                        // then keep draining what is already in flight
                        // until the channel disconnects.
                        self.close_input();
                    }
                }
            }
        }
    }

    /// Non-blocking receive: `None` when nothing is currently queued
    /// (including after termination — use [`SchedHandle::recv`] to
    /// distinguish end-of-stream).
    pub fn try_recv(&self) -> Option<Record> {
        self.output.try_recv().ok()
    }

    /// Runs at most one ready scheduler task on the *calling* thread
    /// (caller-runs work helping, à la Rayon): pops from the pool's
    /// global queues and executes the activation in place. Returns
    /// `true` if a task was executed. A streaming driver that would
    /// otherwise block — ingress full, nothing to drain — can call this
    /// to push the pipeline forward itself instead of paying a
    /// park/wake round trip against the worker pool; on a single-CPU
    /// host this is the difference between streaming and batch-mode
    /// throughput. Tasks of *any* run on this net's pool may be
    /// executed, exactly as a pool worker would.
    pub fn drive(&self) -> bool {
        let Some(task) = pop_global(&self.sh) else {
            return false;
        };
        let guard = task.state.try_lock();
        match guard {
            Some(state) => {
                if let Some(due) = execute(&task, state, &self.sh, None) {
                    self.sh.deferred_count.fetch_add(1, Ordering::Release);
                    self.sh.deferred.lock().push(Deferred {
                        due,
                        task: Arc::clone(&task),
                    });
                }
                true
            }
            None => {
                // Mid-activation on another thread: hand it back and let
                // the caller yield to the thread actually running it.
                self.sh.injector.push(Arc::clone(&task));
                false
            }
        }
    }

    /// The output stream receiver (for `select!`-style consumers).
    pub fn output(&self) -> &Receiver<Record> {
        &self.output
    }

    /// Non-blocking receive on the run's dead-letter stream. Only
    /// populated under
    /// [`snet_core::fault::FailurePolicy::DeadLetter`]; drain it while
    /// the run progresses — the stream is bounded and overflow fails
    /// the run.
    pub fn try_recv_dead_letter(&self) -> Option<DeadLetter> {
        self.dead.try_recv().ok()
    }

    /// The dead-letter receiver (for `select!`-style consumers).
    pub fn dead_letters(&self) -> &Receiver<DeadLetter> {
        &self.dead
    }

    /// Shared event counters of this run.
    pub fn trace(&self) -> &Trace {
        &self.run.trace
    }

    /// Clonable handle to the run's counters.
    pub fn trace_arc(&self) -> Arc<Trace> {
        Arc::clone(&self.run.trace)
    }

    /// Closes the input, drains any remaining output, waits for the
    /// run to finalize, and reports the first error raised during the
    /// run, if any.
    pub fn finish(self) -> Result<(), SnetError> {
        self.close_input();
        // Drain the output so the sink cannot block on a full channel.
        while self.recv().is_some() {}
        if !self.sh.shutdown.load(Ordering::Acquire) {
            self.run.wait_done();
        }
        match self.run.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn current_error(&self, fallback: &str) -> SnetError {
        self.run
            .error
            .lock()
            .clone()
            .unwrap_or_else(|| SnetError::Engine(fallback.into()))
    }
}

impl Drop for SchedHandle {
    /// Closing the input on drop lets the end-of-stream cascade tear
    /// the task graph down even when the user walks away without
    /// calling [`SchedHandle::finish`]; the receiver drop disconnects
    /// the output channel, so the sink discards (rather than blocks on)
    /// any undelivered records.
    fn drop(&mut self) {
        self.close_input();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
    use snet_core::{BinOp, FilterSpec, TagExpr, Value, Variant};

    fn int_box(name: &str, input: &str, output: &str, f: fn(i64) -> i64) -> NetSpec {
        let out_label = output.to_owned();
        NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse(name, &[input], &[&[output]]),
            move |r| {
                let x = r
                    .fields()
                    .next()
                    .and_then(|(_, v)| v.as_int())
                    .ok_or_else(|| SnetError::Engine("expected int field".into()))?;
                Ok(BoxOutput::one(
                    Record::new().with_field(out_label.as_str(), Value::Int(f(x))),
                    Work::ops(1),
                ))
            },
        ))
    }

    fn ints(records: &[Record], label: &str) -> Vec<i64> {
        let mut v: Vec<i64> = records
            .iter()
            .filter_map(|r| r.field(label).and_then(|x| x.as_int()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn single_box_pipeline() {
        let net = SchedNet::new(int_box("double", "x", "x", |x| 2 * x));
        let outs = net
            .run_batch(
                (0..10)
                    .map(|i| Record::new().with_field("x", Value::Int(i)))
                    .collect(),
            )
            .unwrap();
        assert_eq!(ints(&outs, "x"), (0..10).map(|i| 2 * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_composes() {
        let net = SchedNet::new(NetSpec::serial(
            int_box("inc", "x", "x", |x| x + 1),
            int_box("sq", "x", "x", |x| x * x),
        ));
        let outs = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(3))])
            .unwrap();
        assert_eq!(ints(&outs, "x"), vec![16]);
    }

    #[test]
    fn parallel_routes_by_best_match() {
        let net = SchedNet::new(NetSpec::parallel(vec![
            int_box("fa", "a", "ra", |x| x + 100),
            int_box("fb", "b", "rb", |x| x + 200),
        ]));
        let outs = net
            .run_batch(vec![
                Record::new().with_field("a", Value::Int(1)),
                Record::new().with_field("b", Value::Int(2)),
                Record::new().with_field("a", Value::Int(3)),
            ])
            .unwrap();
        assert_eq!(ints(&outs, "ra").len(), 2);
        assert_eq!(ints(&outs, "rb"), vec![202]);
    }

    #[test]
    fn star_unrolls_until_exit() {
        let dec = NetSpec::Filter(FilterSpec::new(
            Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
            vec![snet_core::filter::OutputTemplate::empty().set_tag(
                "n",
                TagExpr::bin(BinOp::Sub, TagExpr::tag("n"), TagExpr::Const(1)),
            )],
        ));
        let exit = Pattern::guarded(
            Variant::empty(),
            TagExpr::bin(BinOp::Eq, TagExpr::tag("n"), TagExpr::Const(0)),
        );
        let net = SchedNet::new(NetSpec::star(dec, exit));
        let (outs, trace) = net
            .run_batch_traced(vec![Record::new().with_tag("n", 5)])
            .unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].tag("n"), Some(0));
        assert_eq!(trace.star_unfoldings.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn split_creates_replica_per_tag_value() {
        let net = SchedNet::new(NetSpec::split(int_box("id", "x", "x", |x| x), "k"));
        let recs: Vec<Record> = (0..12)
            .map(|i| {
                Record::new()
                    .with_field("x", Value::Int(i))
                    .with_tag("k", i % 3)
            })
            .collect();
        let (outs, trace) = net.run_batch_traced(recs).unwrap();
        assert_eq!(outs.len(), 12);
        assert_eq!(trace.split_replicas.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn split_without_tag_is_an_error() {
        let net = SchedNet::new(NetSpec::split(int_box("id", "x", "x", |x| x), "k"));
        let err = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(1))])
            .unwrap_err();
        assert_eq!(err, SnetError::MissingTag(Label::new("k")));
    }

    #[test]
    fn sync_joins_in_stream() {
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = SchedNet::new(cell);
        let outs = net
            .run_batch(vec![
                Record::new().with_field("a", Value::Int(1)),
                Record::new().with_field("b", Value::Int(2)),
            ])
            .unwrap();
        assert_eq!(outs.len(), 1);
        assert!(outs[0].has_field("a") && outs[0].has_field("b"));
    }

    #[test]
    fn stranded_sync_records_are_counted() {
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = SchedNet::new(cell);
        let (outs, trace) = net
            .run_batch_traced(vec![Record::new().with_field("a", Value::Int(1))])
            .unwrap();
        assert!(outs.is_empty());
        assert_eq!(trace.sync_stranded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn box_error_propagates() {
        let bad = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("bad", &["x"], &[&["y"]]),
            |_| Err(SnetError::Engine("deliberate".into())),
        ));
        let net = SchedNet::new(bad);
        let err = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(1))])
            .unwrap_err();
        assert!(matches!(err, SnetError::BoxFailure { .. }), "{err}");
    }

    #[test]
    fn panicking_box_is_reported_not_swallowed() {
        let bomb = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("bomb", &["x"], &[&["y"]]),
            |r| {
                let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
                if x == 2 {
                    panic!("boom at {x}");
                }
                Ok(BoxOutput::one(r.clone(), Work::ZERO))
            },
        ));
        let net = SchedNet::new(bomb);
        let err = net
            .run_batch(
                (0..5)
                    .map(|i| Record::new().with_field("x", Value::Int(i)))
                    .collect(),
            )
            .unwrap_err();
        match err {
            SnetError::BoxFailure { name, cause } => {
                assert_eq!(name, "bomb");
                assert!(cause.contains("boom at 2"), "{cause}");
            }
            other => panic!("expected box failure, got {other:?}"),
        }
    }

    #[test]
    fn strict_mismatch_policy_errors() {
        let net = SchedNet::with_config(
            int_box("f", "x", "y", |x| x),
            EngineConfig {
                mismatch: MismatchPolicy::Error,
                ..EngineConfig::default()
            },
        );
        let err = net
            .run_batch(vec![Record::new().with_field("other", Value::Int(1))])
            .unwrap_err();
        assert!(matches!(err, SnetError::TypeMismatch { .. }));
    }

    #[test]
    fn net_is_reusable_with_fresh_state() {
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = SchedNet::new(cell);
        for _ in 0..2 {
            let outs = net
                .run_batch(vec![
                    Record::new().with_field("a", Value::Int(1)),
                    Record::new().with_field("b", Value::Int(2)),
                ])
                .unwrap();
            assert_eq!(outs.len(), 1, "cell must fire in every fresh run");
        }
    }

    #[test]
    fn deep_pipeline_with_single_worker() {
        // workers = 1 exercises the no-stealing degenerate case.
        let stages: Vec<NetSpec> = (0..8)
            .map(|_| int_box("inc", "x", "x", |x| x + 1))
            .collect();
        let net = SchedNet::with_config(
            NetSpec::pipeline(stages),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let outs = net
            .run_batch(
                (0..200)
                    .map(|i| Record::new().with_field("x", Value::Int(i)))
                    .collect(),
            )
            .unwrap();
        assert_eq!(outs.len(), 200);
        assert_eq!(ints(&outs, "x"), (8..208).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_terminates() {
        let net = SchedNet::new(int_box("inc", "x", "x", |x| x + 1));
        assert!(net.run_batch(Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn streaming_interface_overlaps() {
        let net = SchedNet::new(int_box("inc", "x", "x", |x| x + 1));
        let h = net.start();
        h.send(Record::new().with_field("x", Value::Int(1)))
            .unwrap();
        let first = h.recv().expect("one output while input still open");
        assert_eq!(first.field("x").unwrap().as_int(), Some(2));
        h.send(Record::new().with_field("x", Value::Int(5)))
            .unwrap();
        h.close_input();
        let second = h.recv().expect("second output");
        assert_eq!(second.field("x").unwrap().as_int(), Some(6));
        assert!(h.recv().is_none());
        h.finish().unwrap();
    }

    #[test]
    fn streaming_error_propagates_to_finish() {
        let bad = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("bad", &["x"], &[&["y"]]),
            |_| Err(SnetError::Engine("deliberate".into())),
        ));
        let net = SchedNet::new(bad);
        let h = net.start();
        let _ = h.send(Record::new().with_field("x", Value::Int(1)));
        let err = h.finish().unwrap_err();
        assert!(matches!(err, SnetError::BoxFailure { .. }), "{err}");
    }

    #[test]
    fn batch_and_streaming_runs_interleave_on_one_pool() {
        let net = SchedNet::new(int_box("inc", "x", "x", |x| x + 1));
        let h = net.start();
        h.send(Record::new().with_field("x", Value::Int(10)))
            .unwrap();
        // A whole batch run completes while the streaming run stays open.
        let outs = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(100))])
            .unwrap();
        assert_eq!(ints(&outs, "x"), vec![101]);
        assert_eq!(h.recv().unwrap().field("x").unwrap().as_int(), Some(11));
        h.finish().unwrap();
    }
}
