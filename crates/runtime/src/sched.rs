//! The scheduled engine: component tasks multiplexed over a fixed
//! work-stealing worker pool.
//!
//! The threaded engine ([`crate::engine::Net`]) renders the paper's
//! execution model literally: one OS thread per component instance.
//! That is faithful but does not scale — a 16-deep pipeline with
//! parallel branches and star unfoldings spawns hundreds of threads for
//! a 256-record batch, and most of them sit blocked on channel edges.
//! This module multiplexes the same component graph over a fixed pool
//! of workers instead:
//!
//! * every component instance (box, filter, synchrocell, dispatcher,
//!   star tap) is a lightweight **task** with an SPSC mailbox;
//! * a task becomes **runnable** when a record lands in its mailbox (or
//!   its last upstream sender closes), and is then queued on a
//!   work-stealing deque ([`crossbeam_deque`]);
//! * a worker runs a task by draining its mailbox up to a batch budget,
//!   applying the *same* small-step semantics
//!   ([`snet_core::semantics`]) as the threaded engine and the
//!   reference interpreter, then yields the task back to the scheduler;
//! * a task whose output mailbox is over the high-water mark stops
//!   consuming input and re-queues itself — cooperative backpressure in
//!   place of bounded-channel blocking.
//!
//! End-of-stream is sender refcounting: when the last upstream port of
//! a task closes, the task finalizes (counting stranded synchrocell
//! records) and closes its own outputs, so termination cascades exactly
//! like channel disconnection does in the threaded engine. Because the
//! per-record semantics are shared, the interpreter oracle applies
//! unchanged: for confluent networks the scheduled engine produces the
//! same output multiset.

use crate::engine::EngineConfig;
use crate::trace::Trace;
use crossbeam_deque::{Injector, Steal, Stealer, Worker};
use parking_lot::Mutex;
use snet_core::semantics::{self, MismatchPolicy};
use snet_core::{Label, NetSpec, Pattern, Record, SnetError, SyncOutcome, SyncSpec, SyncState};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// Records processed per task activation before yielding back to the
/// scheduler (keeps long streams from starving sibling components).
/// When [`EngineConfig::batch`] exceeds this, the budget stretches so a
/// full hand-off batch is always processed in one activation.
const ACTIVATION_BUDGET: usize = 64;

/// Cap on the exponential backpressure backoff: a zero-progress task is
/// re-enqueued after `1µs << min(n, BACKOFF_MAX_SHIFT)`, i.e. at most
/// ~1ms — the same latency bound as a worker's park quantum.
const BACKOFF_MAX_SHIFT: u32 = 10;

/// A compiled network executed on the work-stealing scheduler.
///
/// `SchedNet` is reusable: every [`SchedNet::run_batch`] instantiates a
/// fresh task graph and worker pool; synchrocell and replication state
/// never leaks between runs.
pub struct SchedNet {
    spec: NetSpec,
    config: EngineConfig,
}

impl SchedNet {
    /// Wraps a topology with default configuration.
    pub fn new(spec: NetSpec) -> SchedNet {
        SchedNet {
            spec,
            config: EngineConfig::default(),
        }
    }

    /// Wraps a topology with explicit configuration (worker count,
    /// mismatch policy, mailbox high-water mark).
    pub fn with_config(spec: NetSpec, config: EngineConfig) -> SchedNet {
        SchedNet { spec, config }
    }

    /// The underlying topology.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Feeds a batch of records through the network and collects the
    /// complete output stream (arrival order).
    pub fn run_batch(&self, records: Vec<Record>) -> Result<Vec<Record>, SnetError> {
        let (outs, _trace) = self.run_batch_traced(records)?;
        Ok(outs)
    }

    /// Like [`SchedNet::run_batch`] but also returns the run's
    /// [`Trace`].
    pub fn run_batch_traced(
        &self,
        records: Vec<Record>,
    ) -> Result<(Vec<Record>, Arc<Trace>), SnetError> {
        let workers = self.config.workers.max(1);
        let sh = Arc::new(Shared {
            injector: Injector::new(),
            deferred: Mutex::new(BinaryHeap::new()),
            deferred_count: AtomicUsize::new(0),
            sleep: Mutex::new(SleepState { shutdown: false }),
            cv: Condvar::new(),
            active: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            error: Mutex::new(None),
            trace: Arc::new(Trace::new()),
            config: self.config,
            outputs: Mutex::new(Vec::new()),
        });

        // Build the static task graph: sink <- spec <- entry.
        let sink = Task::new("sink", State::Sink { buf: Vec::new() });
        let entry = build(&self.spec, Port::new(&sink), &sh);

        // Feed the whole batch under one mailbox lock with one wake,
        // then close the entry port; the cascade of close notifications
        // terminates the run.
        entry.send_now(records, &sh, None);
        entry.close(&sh, None);

        // Worker pool with work-stealing deques.
        let locals: Vec<Worker<Arc<Task>>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Arc<Vec<Stealer<Arc<Task>>>> =
            Arc::new(locals.iter().map(|w| w.stealer()).collect());
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let sh = Arc::clone(&sh);
                let stealers = Arc::clone(&stealers);
                std::thread::Builder::new()
                    .name(format!("snet-sched-{i}"))
                    .spawn(move || worker_loop(i, local, &stealers, &sh))
                    .expect("spawn sched worker")
            })
            .collect();

        // Wait for quiescence: no task queued or running.
        {
            let mut sleep = sh.sleep.lock();
            while sh.active.load(Ordering::Acquire) != 0 {
                let (guard, _) = sh
                    .cv
                    .wait_timeout(sleep, Duration::from_millis(5))
                    .unwrap_or_else(|e| e.into_inner());
                sleep = guard;
            }
            sleep.shutdown = true;
        }
        sh.cv.notify_all();
        for h in handles {
            let _ = h.join();
        }

        if let Some(e) = sh.error.lock().take() {
            return Err(e);
        }
        let outs = std::mem::take(&mut *sh.outputs.lock());
        Ok((outs, Arc::clone(&sh.trace)))
    }
}

struct SleepState {
    shutdown: bool,
}

struct Shared {
    injector: Injector<Arc<Task>>,
    /// Backpressure-deferred tasks (min-heap on deadline), shared so
    /// that *any* worker picks an expired deferral up — a deferring
    /// worker that then sinks into a long activation must not pin the
    /// deferred task. Guarded by `deferred_count` so the lock is only
    /// touched under backpressure (cold path).
    deferred: Mutex<BinaryHeap<Deferred>>,
    /// Entries in `deferred`; lets the per-activation dispatch path skip
    /// the heap mutex entirely in the common no-backpressure case.
    deferred_count: AtomicUsize,
    sleep: Mutex<SleepState>,
    cv: Condvar,
    /// Tasks currently queued or running; 0 after the input closes means
    /// the run is complete (new work only originates from running tasks).
    active: AtomicUsize,
    /// Workers currently parked on the condvar (lets producers skip the
    /// notify syscall on the hot path when everyone is busy).
    sleepers: AtomicUsize,
    aborted: AtomicBool,
    error: Mutex<Option<SnetError>>,
    trace: Arc<Trace>,
    config: EngineConfig,
    outputs: Mutex<Vec<Record>>,
}

impl Shared {
    fn fail(&self, e: SnetError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.aborted.store(true, Ordering::Release);
    }

    fn high_water(&self) -> usize {
        self.config.channel_capacity.max(1).saturating_mul(16)
    }
}

/// One component instance: mailbox + semantic state.
struct Task {
    label: &'static str,
    mailbox: Mutex<VecDeque<Record>>,
    /// Open upstream ports; 0 = end-of-stream once the mailbox drains.
    open_senders: AtomicUsize,
    /// True while queued or deferred (prevents double-queueing; cleared
    /// when a worker picks the task up).
    scheduled: AtomicBool,
    /// Consecutive zero-progress (backpressured) activations; drives
    /// the exponential re-enqueue backoff. Reset on any progress.
    backoff: AtomicU32,
    state: Mutex<State>,
}

enum State {
    Box(snet_core::boxdef::BoxDef, Port),
    Filter(snet_core::FilterSpec, Port),
    Sync {
        spec: SyncSpec,
        st: SyncState,
        out: Port,
    },
    Par {
        patterns: Vec<Vec<Pattern>>,
        branches: Vec<Port>,
        out: Port,
    },
    Star {
        body: NetSpec,
        exit: Pattern,
        into_body: Option<Port>,
        out: Port,
    },
    Split {
        body: NetSpec,
        tag: Label,
        replicas: HashMap<i64, Port>,
        out: Port,
    },
    /// Terminal output collector; records coalesce in `buf` and are
    /// appended to the shared output vector once per batch/activation.
    Sink {
        buf: Vec<Record>,
    },
    /// Finalized: outputs closed, no further effects.
    Done,
}

impl Task {
    fn new(label: &'static str, state: State) -> Arc<Task> {
        Arc::new(Task {
            label,
            mailbox: Mutex::new(VecDeque::new()),
            open_senders: AtomicUsize::new(0),
            scheduled: AtomicBool::new(false),
            backoff: AtomicU32::new(0),
            state: Mutex::new(state),
        })
    }
}

/// An open upstream handle onto a task's mailbox. Creating one
/// increments the task's sender count; [`Port::close`] decrements it.
/// Ports are closed explicitly (not on drop) so the close can schedule
/// the receiving task.
///
/// Sends coalesce in `buf` (owned by the producing task's activation —
/// the state lock serializes all access): records are pushed downstream
/// only when the buffer reaches [`EngineConfig::batch`] records or the
/// activation ends, so the consumer-side mailbox lock and wake are paid
/// once per batch, not once per record. The invariant between
/// activations is an *empty* buffer — every activation flushes all of
/// its output edges before yielding, so no record can be stranded in a
/// buffer while its producer waits.
struct Port {
    task: Arc<Task>,
    buf: Vec<Record>,
}

impl Port {
    fn new(task: &Arc<Task>) -> Port {
        task.open_senders.fetch_add(1, Ordering::AcqRel);
        Port {
            task: Arc::clone(task),
            buf: Vec::new(),
        }
    }

    fn another(&self) -> Port {
        Port::new(&self.task)
    }

    /// Buffered send: coalesces until `batch` records are pending, then
    /// pushes the whole run with one lock acquisition and one wake.
    fn send(
        &mut self,
        rec: Record,
        batch: usize,
        sh: &Shared,
        local: Option<&Worker<Arc<Task>>>,
    ) {
        self.buf.push(rec);
        if self.buf.len() >= batch {
            self.flush(sh, local);
        }
    }

    /// Pushes any buffered records downstream: one mailbox lock, one
    /// consumer wake, however many records.
    fn flush(&mut self, sh: &Shared, local: Option<&Worker<Arc<Task>>>) {
        if self.buf.is_empty() {
            return;
        }
        {
            let mut mb = self.task.mailbox.lock();
            mb.extend(self.buf.drain(..));
        }
        notify(&self.task, sh, local);
    }

    /// Unbuffered batch send (driver feed path): extends the mailbox
    /// under one lock and wakes the consumer once.
    fn send_now(
        &self,
        recs: impl IntoIterator<Item = Record>,
        sh: &Shared,
        local: Option<&Worker<Arc<Task>>>,
    ) {
        let any = {
            let mut mb = self.task.mailbox.lock();
            let before = mb.len();
            mb.extend(recs);
            mb.len() > before
        };
        if any {
            notify(&self.task, sh, local);
        }
    }

    fn backlog(&self) -> usize {
        self.task.mailbox.lock().len()
    }

    fn close(mut self, sh: &Shared, local: Option<&Worker<Arc<Task>>>) {
        // Sends happen-before close: drain the coalescing buffer first.
        self.flush(sh, local);
        if self.task.open_senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: the task must run once more to observe
            // end-of-stream and finalize.
            notify(&self.task, sh, local);
        }
    }
}

/// Queues a task if it is not already queued.
fn notify(task: &Arc<Task>, sh: &Shared, local: Option<&Worker<Arc<Task>>>) {
    if task
        .scheduled
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        sh.active.fetch_add(1, Ordering::AcqRel);
        match local {
            Some(w) => w.push(Arc::clone(task)),
            None => sh.injector.push(Arc::clone(task)),
        }
        // Parked workers re-probe at least every millisecond, so a
        // missed notify costs bounded latency; skipping the syscall when
        // every worker is busy is a large win on the hot path.
        if sh.sleepers.load(Ordering::Acquire) > 0 {
            sh.cv.notify_one();
        }
    }
}

/// A backpressure-deferred task: re-run no earlier than `due`.
/// Ordered as a min-heap on the deadline.
struct Deferred {
    due: Instant,
    task: Arc<Task>,
}

impl PartialEq for Deferred {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Deferred {}
impl PartialOrd for Deferred {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deferred {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other.due.cmp(&self.due)
    }
}

/// How one activation ended, from the scheduler's accounting view.
enum Activation {
    /// Ran to completion: finalized, went idle, or re-queued itself via
    /// `notify`. The worker releases the activation's `active` token.
    Complete,
    /// Zero-progress backpressure yield: the task holds its `scheduled`
    /// flag and `active` token and must be re-run at the deadline.
    Defer(Instant),
}

fn worker_loop(
    index: usize,
    local: Worker<Arc<Task>>,
    stealers: &[Stealer<Arc<Task>>],
    sh: &Shared,
) {
    // The task we last failed to lock (its activation was still running
    // on another worker). Seeing it twice in a row means there is no
    // other work — park briefly instead of spinning on the mutex.
    let mut contended: Option<*const Task> = None;
    loop {
        let task = find_task(index, &local, stealers, sh);
        match task {
            Some(task) => {
                // A task can be re-queued while its previous activation
                // is still draining on another worker; blocking on the
                // state mutex would idle this worker behind up to a full
                // activation budget of box calls. Hand the entry back to
                // the global queue and look for other work instead.
                let guard = task.state.try_lock();
                match guard {
                    Some(state) => {
                        contended = None;
                        match run_task(&task, state, sh, &local) {
                            Activation::Complete => {
                                if sh.active.fetch_sub(1, Ordering::AcqRel) == 1 {
                                    // Quiescent: wake the waiting driver
                                    // (and peers, so shutdown propagates).
                                    sh.cv.notify_all();
                                }
                            }
                            Activation::Defer(due) => {
                                // Clone (not move): the state guard's
                                // borrow region still covers `task`.
                                // Count first (release): a probe that
                                // sees the count also sees the entry
                                // once it takes the heap lock.
                                sh.deferred_count.fetch_add(1, Ordering::Release);
                                sh.deferred
                                    .lock()
                                    .push(Deferred { due, task: Arc::clone(&task) });
                            }
                        }
                    }
                    None => {
                        let ptr = Arc::as_ptr(&task);
                        sh.injector.push(Arc::clone(&task));
                        if contended.replace(ptr) == Some(ptr)
                            && park(sh, Duration::from_millis(1))
                        {
                            return;
                        }
                    }
                }
            }
            None => {
                contended = None;
                // Park until notified, but no longer than the earliest
                // deferred deadline (nor the 1ms re-probe quantum).
                let quantum = Duration::from_millis(1);
                let timeout = if sh.deferred_count.load(Ordering::Acquire) > 0 {
                    sh.deferred
                        .lock()
                        .peek()
                        .map(|d| d.due.saturating_duration_since(Instant::now()).min(quantum))
                        .unwrap_or(quantum)
                } else {
                    quantum
                };
                if park(sh, timeout) {
                    return;
                }
            }
        }
    }
}

/// Parks the worker until new work may exist; returns true on shutdown.
fn park(sh: &Shared, timeout: Duration) -> bool {
    let sleep = sh.sleep.lock();
    if sleep.shutdown {
        return true;
    }
    // Timed wait: a notify may have raced our empty probe.
    sh.sleepers.fetch_add(1, Ordering::AcqRel);
    let _ = sh
        .cv
        .wait_timeout(sleep, timeout)
        .unwrap_or_else(|e| e.into_inner());
    sh.sleepers.fetch_sub(1, Ordering::AcqRel);
    false
}

fn find_task(
    index: usize,
    local: &Worker<Arc<Task>>,
    stealers: &[Stealer<Arc<Task>>],
    sh: &Shared,
) -> Option<Arc<Task>> {
    // Expired backoff deferrals first: they are the oldest work and
    // their congestion has had the longest time to clear. The heap is
    // shared, so whichever worker probes first resumes the task; the
    // atomic count keeps the no-backpressure dispatch path off the
    // heap mutex entirely.
    if sh.deferred_count.load(Ordering::Acquire) > 0 {
        let mut deferred = sh.deferred.lock();
        if let Some(d) = deferred.peek() {
            if d.due <= Instant::now() {
                let task = deferred.pop().expect("peeked entry").task;
                sh.deferred_count.fetch_sub(1, Ordering::AcqRel);
                return Some(task);
            }
        }
    }
    if let Some(t) = local.pop() {
        return Some(t);
    }
    // The injector and sibling deques can report transient `Retry`
    // (lost CAS or a mid-swap buffer); keep probing until every source
    // reports a definitive miss.
    loop {
        let mut retry = false;
        match sh.injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        // Steal from siblings, starting after our own slot.
        let n = stealers.len();
        for k in 1..n {
            match stealers[(index + k) % n].steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
        std::hint::spin_loop();
    }
}

/// Runs one activation of a task: drain its mailbox in hand-off
/// batches (bounded by the activation budget and downstream high-water
/// marks), flush every output edge once, then finalize if end-of-stream
/// has been reached. The caller holds the state lock (acquired with
/// `try_lock`, so workers never block behind a running activation).
fn run_task(
    task: &Arc<Task>,
    mut state: parking_lot::MutexGuard<'_, State>,
    sh: &Shared,
    local: &Worker<Arc<Task>>,
) -> Activation {
    // From here on, producers may re-queue the task; the held state
    // lock serializes actual execution.
    task.scheduled.store(false, Ordering::Release);

    if sh.aborted.load(Ordering::Acquire) {
        task.mailbox.lock().clear();
        finalize(task, &mut state, sh, local);
        return Activation::Complete;
    }

    let batch = sh.config.batch.max(1);
    let budget = ACTIVATION_BUDGET.max(batch);
    // Probing the downstream mailbox for backpressure takes its lock;
    // amortize the check over at least a batch (and no fewer than 16
    // records, so `batch = 1` keeps the pre-batching cadence).
    let bp_stride = batch.max(16);
    let mut next_bp_check = 0usize;
    let mut processed = 0usize;
    // Records claimed from the mailbox for the current hand-off batch.
    let mut inbuf: Vec<Record> = Vec::new();
    while processed < budget {
        if processed >= next_bp_check {
            if output_backpressured(&state, sh) {
                break;
            }
            next_bp_check = processed + bp_stride;
        }
        // Refill: claim up to a whole batch with one mailbox lock.
        {
            let mut mb = task.mailbox.lock();
            let take = batch.min(budget - processed).min(mb.len());
            if take == 0 {
                break;
            }
            inbuf.extend(mb.drain(..take));
        }
        for rec in inbuf.drain(..) {
            if let Err(e) = step(&mut state, rec, sh, local) {
                sh.fail(e);
                task.mailbox.lock().clear();
                finalize(task, &mut state, sh, local);
                return Activation::Complete;
            }
            processed += 1;
        }
    }

    // Forward this activation's entire output: every edge gets at most
    // one more mailbox push + wake, and the between-activations
    // invariant (empty coalescing buffers) is restored.
    flush_outputs(&mut state, sh, local);
    if processed > 0 {
        task.backoff.store(0, Ordering::Relaxed);
    }

    // Order matters: read the sender count BEFORE the final mailbox
    // probe. Each port's sends happen-before its close, so observing
    // zero senders first guarantees the mailbox probe sees every record
    // — probing the mailbox first could miss a record sent (and closed)
    // between the two reads.
    let senders = task.open_senders.load(Ordering::Acquire);
    let mailbox_empty = task.mailbox.lock().is_empty();
    if mailbox_empty {
        if senders == 0 {
            finalize(task, &mut state, sh, local);
        }
        Activation::Complete
    } else {
        drop(state);
        if processed == 0 {
            // Zero-progress (backpressured) yield. Requeueing straight
            // onto the global queue spins hot while the downstream
            // mailbox stays full; instead, re-enqueue with exponential
            // backoff. Claiming `scheduled` here transfers this
            // activation's `active` token to the deferred entry and
            // keeps producers from double-queueing the task; if a
            // producer won the race, its queue entry owns the re-run.
            if task
                .scheduled
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let shift = task
                    .backoff
                    .fetch_add(1, Ordering::Relaxed)
                    .min(BACKOFF_MAX_SHIFT);
                return Activation::Defer(
                    Instant::now() + Duration::from_micros(1u64 << shift),
                );
            }
            Activation::Complete
        } else {
            // Budget yield with progress made: run again soon, from the
            // local deque.
            notify(task, sh, Some(local));
            Activation::Complete
        }
    }
}

/// Flushes every coalescing output buffer reachable from `state`: one
/// downstream mailbox push + consumer wake per edge with pending
/// records, and the sink's buffered outputs into the shared vector.
fn flush_outputs(state: &mut State, sh: &Shared, local: &Worker<Arc<Task>>) {
    let local = Some(local);
    match state {
        State::Box(_, out) | State::Filter(_, out) | State::Sync { out, .. } => {
            out.flush(sh, local);
        }
        State::Par { branches, out, .. } => {
            for b in branches.iter_mut() {
                b.flush(sh, local);
            }
            out.flush(sh, local);
        }
        State::Star {
            into_body, out, ..
        } => {
            if let Some(b) = into_body {
                b.flush(sh, local);
            }
            out.flush(sh, local);
        }
        State::Split { replicas, out, .. } => {
            for p in replicas.values_mut() {
                p.flush(sh, local);
            }
            out.flush(sh, local);
        }
        State::Sink { buf } => {
            if !buf.is_empty() {
                sh.outputs.lock().append(buf);
            }
        }
        State::Done => {}
    }
}

/// Cooperative backpressure: stop consuming while the primary output
/// mailbox is over the high-water mark. Dispatchers are exempt (their
/// work per record is trivial and they feed many outputs).
fn output_backpressured(state: &State, sh: &Shared) -> bool {
    let hw = sh.high_water();
    match state {
        State::Box(_, out) | State::Filter(_, out) | State::Sync { out, .. } => {
            out.backlog() >= hw
        }
        _ => false,
    }
}

/// Applies one record to a component (the shared small-step semantics),
/// emitting downstream through the coalescing port buffers — downstream
/// mailboxes see one push per [`EngineConfig::batch`] records (or per
/// activation), not one per record.
fn step(
    state: &mut State,
    rec: Record,
    sh: &Shared,
    local: &Worker<Arc<Task>>,
) -> Result<(), SnetError> {
    let batch = sh.config.batch.max(1);
    match state {
        State::Box(def, out) => {
            // Box functions are user code: a panic must become a
            // reportable error, not a poisoned scheduler.
            let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                semantics::box_step(def, rec, sh.config.mismatch)
            }))
            .unwrap_or_else(|payload| {
                let cause = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(SnetError::BoxFailure {
                    name: def.sig.name.clone(),
                    cause: format!("panicked: {cause}"),
                })
            })?;
            if step.matched {
                sh.trace.count_box(step.work);
            } else {
                Trace::add(&sh.trace.passthroughs, 1);
            }
            for r in step.records {
                out.send(r, batch, sh, Some(local));
            }
            Ok(())
        }
        State::Filter(spec, out) => {
            let step = semantics::filter_step(spec, rec, sh.config.mismatch)?;
            if step.matched {
                Trace::add(&sh.trace.filter_records, 1);
            } else {
                Trace::add(&sh.trace.passthroughs, 1);
            }
            for r in step.records {
                out.send(r, batch, sh, Some(local));
            }
            Ok(())
        }
        State::Sync { spec, st, out } => {
            match st.push(spec, rec) {
                SyncOutcome::Stored => {
                    Trace::add(&sh.trace.sync_stores, 1);
                }
                SyncOutcome::Fired(m) => {
                    Trace::add(&sh.trace.sync_fires, 1);
                    out.send(m, batch, sh, Some(local));
                }
                SyncOutcome::Passed(r) => out.send(r, batch, sh, Some(local)),
            }
            Ok(())
        }
        State::Par {
            patterns,
            branches,
            out,
        } => {
            let winners = semantics::matching_branches(patterns, &rec);
            match winners.first() {
                Some(&i) => {
                    Trace::add(&sh.trace.dispatched, 1);
                    branches[i].send(rec, batch, sh, Some(local));
                    Ok(())
                }
                None => match sh.config.mismatch {
                    MismatchPolicy::Forward => {
                        Trace::add(&sh.trace.passthroughs, 1);
                        out.send(rec, batch, sh, Some(local));
                        Ok(())
                    }
                    MismatchPolicy::Error => Err(SnetError::TypeMismatch {
                        expected: "any parallel branch".into(),
                        got: format!("{rec:?}"),
                    }),
                },
            }
        }
        State::Star {
            body,
            exit,
            into_body,
            out,
        } => {
            if exit.matches(&rec) {
                out.send(rec, batch, sh, Some(local));
                return Ok(());
            }
            if into_body.is_none() {
                // Unfold one replica: body feeding the next tap, which
                // shares our exit stream.
                Trace::add(&sh.trace.star_unfoldings, 1);
                let next_tap = Task::new(
                    "star-tap",
                    State::Star {
                        body: body.clone(),
                        exit: exit.clone(),
                        into_body: None,
                        out: out.another(),
                    },
                );
                let body_in = build(body, Port::new(&next_tap), sh);
                *into_body = Some(body_in);
            }
            into_body
                .as_mut()
                .expect("replica just unfolded")
                .send(rec, batch, sh, Some(local));
            Ok(())
        }
        State::Split {
            body,
            tag,
            replicas,
            out,
        } => {
            let Some(value) = rec.tag(*tag) else {
                return Err(SnetError::MissingTag(*tag));
            };
            let port = replicas.entry(value).or_insert_with(|| {
                Trace::add(&sh.trace.split_replicas, 1);
                build(body, out.another(), sh)
            });
            Trace::add(&sh.trace.dispatched, 1);
            port.send(rec, batch, sh, Some(local));
            Ok(())
        }
        State::Sink { buf } => {
            buf.push(rec);
            if buf.len() >= batch {
                sh.outputs.lock().append(buf);
            }
            Ok(())
        }
        State::Done => Ok(()), // post-teardown stragglers are dropped
    }
}

/// Observes end-of-stream: count stranded synchrocell records, close
/// every downstream port, and become inert.
fn finalize(task: &Arc<Task>, state: &mut State, sh: &Shared, local: &Worker<Arc<Task>>) {
    let _ = task.label;
    let old = std::mem::replace(state, State::Done);
    let close = |p: Port| p.close(sh, Some(local));
    match old {
        State::Box(_, out) | State::Filter(_, out) => close(out),
        State::Sync { st, out, .. } => {
            let stranded = st.pending().count() as u64;
            if stranded > 0 {
                Trace::add(&sh.trace.sync_stranded, stranded);
            }
            close(out);
        }
        State::Par { branches, out, .. } => {
            for b in branches {
                close(b);
            }
            close(out);
        }
        State::Star {
            into_body, out, ..
        } => {
            if let Some(b) = into_body {
                close(b);
            }
            close(out);
        }
        State::Split { replicas, out, .. } => {
            for (_, p) in replicas {
                close(p);
            }
            close(out);
        }
        State::Sink { mut buf } => {
            // Flush any outputs still coalescing in the sink buffer.
            if !buf.is_empty() {
                sh.outputs.lock().append(&mut buf);
            }
        }
        State::Done => {}
    }
}

/// Recursively instantiates `spec` as a task subgraph feeding `output`,
/// returning the subtree's input port.
fn build(spec: &NetSpec, output: Port, sh: &Shared) -> Port {
    match spec {
        NetSpec::Box(def) => {
            let t = Task::new("box", State::Box(def.clone(), output));
            Port::new(&t)
        }
        NetSpec::Filter(f) => {
            let t = Task::new("filter", State::Filter(f.clone(), output));
            Port::new(&t)
        }
        NetSpec::Sync(spec) => {
            let t = Task::new(
                "sync",
                State::Sync {
                    st: spec.new_state(),
                    spec: spec.clone(),
                    out: output,
                },
            );
            Port::new(&t)
        }
        NetSpec::Serial(a, b) => {
            let mid = build(b, output, sh);
            build(a, mid, sh)
        }
        NetSpec::Parallel { branches, .. } => {
            let patterns: Vec<Vec<Pattern>> =
                branches.iter().map(|b| b.input_patterns()).collect();
            let ports: Vec<Port> = branches
                .iter()
                .map(|b| build(b, output.another(), sh))
                .collect();
            let t = Task::new(
                "par-dispatch",
                State::Par {
                    patterns,
                    branches: ports,
                    out: output,
                },
            );
            Port::new(&t)
        }
        NetSpec::Star { body, exit, .. } => {
            let t = Task::new(
                "star-tap",
                State::Star {
                    body: (**body).clone(),
                    exit: exit.clone(),
                    into_body: None,
                    out: output,
                },
            );
            Port::new(&t)
        }
        NetSpec::Split { body, tag, .. } => {
            // The scheduled engine, like the threaded one, ignores
            // placement; `snet-dist` honours it on the simulated cluster.
            let t = Task::new(
                "split-dispatch",
                State::Split {
                    body: (**body).clone(),
                    tag: *tag,
                    replicas: HashMap::new(),
                    out: output,
                },
            );
            Port::new(&t)
        }
        NetSpec::At { body, .. } | NetSpec::Named { body, .. } => build(body, output, sh),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
    use snet_core::{BinOp, FilterSpec, TagExpr, Value, Variant};

    fn int_box(name: &str, input: &str, output: &str, f: fn(i64) -> i64) -> NetSpec {
        let out_label = output.to_owned();
        NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse(name, &[input], &[&[output]]),
            move |r| {
                let x = r
                    .fields()
                    .next()
                    .and_then(|(_, v)| v.as_int())
                    .ok_or_else(|| SnetError::Engine("expected int field".into()))?;
                Ok(BoxOutput::one(
                    Record::new().with_field(out_label.as_str(), Value::Int(f(x))),
                    Work::ops(1),
                ))
            },
        ))
    }

    fn ints(records: &[Record], label: &str) -> Vec<i64> {
        let mut v: Vec<i64> = records
            .iter()
            .filter_map(|r| r.field(label).and_then(|x| x.as_int()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn single_box_pipeline() {
        let net = SchedNet::new(int_box("double", "x", "x", |x| 2 * x));
        let outs = net
            .run_batch((0..10).map(|i| Record::new().with_field("x", Value::Int(i))).collect())
            .unwrap();
        assert_eq!(ints(&outs, "x"), (0..10).map(|i| 2 * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_composes() {
        let net = SchedNet::new(NetSpec::serial(
            int_box("inc", "x", "x", |x| x + 1),
            int_box("sq", "x", "x", |x| x * x),
        ));
        let outs = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(3))])
            .unwrap();
        assert_eq!(ints(&outs, "x"), vec![16]);
    }

    #[test]
    fn parallel_routes_by_best_match() {
        let net = SchedNet::new(NetSpec::parallel(vec![
            int_box("fa", "a", "ra", |x| x + 100),
            int_box("fb", "b", "rb", |x| x + 200),
        ]));
        let outs = net
            .run_batch(vec![
                Record::new().with_field("a", Value::Int(1)),
                Record::new().with_field("b", Value::Int(2)),
                Record::new().with_field("a", Value::Int(3)),
            ])
            .unwrap();
        assert_eq!(ints(&outs, "ra").len(), 2);
        assert_eq!(ints(&outs, "rb"), vec![202]);
    }

    #[test]
    fn star_unrolls_until_exit() {
        let dec = NetSpec::Filter(FilterSpec::new(
            Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
            vec![snet_core::filter::OutputTemplate::empty().set_tag(
                "n",
                TagExpr::bin(BinOp::Sub, TagExpr::tag("n"), TagExpr::Const(1)),
            )],
        ));
        let exit = Pattern::guarded(
            Variant::empty(),
            TagExpr::bin(BinOp::Eq, TagExpr::tag("n"), TagExpr::Const(0)),
        );
        let net = SchedNet::new(NetSpec::star(dec, exit));
        let (outs, trace) = net
            .run_batch_traced(vec![Record::new().with_tag("n", 5)])
            .unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].tag("n"), Some(0));
        assert_eq!(trace.star_unfoldings.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn split_creates_replica_per_tag_value() {
        let net = SchedNet::new(NetSpec::split(int_box("id", "x", "x", |x| x), "k"));
        let recs: Vec<Record> = (0..12)
            .map(|i| Record::new().with_field("x", Value::Int(i)).with_tag("k", i % 3))
            .collect();
        let (outs, trace) = net.run_batch_traced(recs).unwrap();
        assert_eq!(outs.len(), 12);
        assert_eq!(trace.split_replicas.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn split_without_tag_is_an_error() {
        let net = SchedNet::new(NetSpec::split(int_box("id", "x", "x", |x| x), "k"));
        let err = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(1))])
            .unwrap_err();
        assert_eq!(err, SnetError::MissingTag(Label::new("k")));
    }

    #[test]
    fn sync_joins_in_stream() {
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = SchedNet::new(cell);
        let outs = net
            .run_batch(vec![
                Record::new().with_field("a", Value::Int(1)),
                Record::new().with_field("b", Value::Int(2)),
            ])
            .unwrap();
        assert_eq!(outs.len(), 1);
        assert!(outs[0].has_field("a") && outs[0].has_field("b"));
    }

    #[test]
    fn stranded_sync_records_are_counted() {
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = SchedNet::new(cell);
        let (outs, trace) = net
            .run_batch_traced(vec![Record::new().with_field("a", Value::Int(1))])
            .unwrap();
        assert!(outs.is_empty());
        assert_eq!(trace.sync_stranded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn box_error_propagates() {
        let bad = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("bad", &["x"], &[&["y"]]),
            |_| Err(SnetError::Engine("deliberate".into())),
        ));
        let net = SchedNet::new(bad);
        let err = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(1))])
            .unwrap_err();
        assert!(matches!(err, SnetError::BoxFailure { .. }), "{err}");
    }

    #[test]
    fn panicking_box_is_reported_not_swallowed() {
        let bomb = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("bomb", &["x"], &[&["y"]]),
            |r| {
                let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
                if x == 2 {
                    panic!("boom at {x}");
                }
                Ok(BoxOutput::one(r.clone(), Work::ZERO))
            },
        ));
        let net = SchedNet::new(bomb);
        let err = net
            .run_batch((0..5).map(|i| Record::new().with_field("x", Value::Int(i))).collect())
            .unwrap_err();
        match err {
            SnetError::BoxFailure { name, cause } => {
                assert_eq!(name, "bomb");
                assert!(cause.contains("boom at 2"), "{cause}");
            }
            other => panic!("expected box failure, got {other:?}"),
        }
    }

    #[test]
    fn strict_mismatch_policy_errors() {
        let net = SchedNet::with_config(
            int_box("f", "x", "y", |x| x),
            EngineConfig {
                mismatch: MismatchPolicy::Error,
                ..EngineConfig::default()
            },
        );
        let err = net
            .run_batch(vec![Record::new().with_field("other", Value::Int(1))])
            .unwrap_err();
        assert!(matches!(err, SnetError::TypeMismatch { .. }));
    }

    #[test]
    fn net_is_reusable_with_fresh_state() {
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = SchedNet::new(cell);
        for _ in 0..2 {
            let outs = net
                .run_batch(vec![
                    Record::new().with_field("a", Value::Int(1)),
                    Record::new().with_field("b", Value::Int(2)),
                ])
                .unwrap();
            assert_eq!(outs.len(), 1, "cell must fire in every fresh run");
        }
    }

    #[test]
    fn deep_pipeline_with_single_worker() {
        // workers = 1 exercises the no-stealing degenerate case.
        let stages: Vec<NetSpec> = (0..8).map(|_| int_box("inc", "x", "x", |x| x + 1)).collect();
        let net = SchedNet::with_config(
            NetSpec::pipeline(stages),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        let outs = net
            .run_batch((0..200).map(|i| Record::new().with_field("x", Value::Int(i))).collect())
            .unwrap();
        assert_eq!(outs.len(), 200);
        assert_eq!(ints(&outs, "x"), (8..208).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_terminates() {
        let net = SchedNet::new(int_box("inc", "x", "x", |x| x + 1));
        assert!(net.run_batch(Vec::new()).unwrap().is_empty());
    }
}
