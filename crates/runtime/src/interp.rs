//! The deterministic reference interpreter.
//!
//! A single-threaded, depth-first executable semantics for S-Net
//! networks. Where the threaded engine is free to interleave (parallel
//! merge order, tie-breaks), the interpreter fixes every choice:
//! records are processed one at a time to completion, parallel ties go
//! to the first-declared branch, and the outputs of a component are
//! propagated in emission order.
//!
//! The interpreter is the oracle for the engine's property tests — for
//! any network and input batch, the threaded engine must produce the
//! same output *multiset* (order may differ because the paper specifies
//! arrival-order, i.e. nondeterministic, merging).

use snet_core::boxdef::{BoxDef, Work};
use snet_core::fault::{self, DeadLetter, FailurePolicy, StepVerdict};
use snet_core::semantics::{self, MismatchPolicy};
use snet_core::{
    ChainStage, FilterSpec, Label, NetSpec, Pattern, Record, SnetError, SyncOutcome, SyncSpec,
    SyncState,
};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::time::{Duration, Instant};

/// Result of an interpreter run.
#[derive(Debug)]
pub struct InterpResult {
    /// Output records in deterministic order.
    pub outputs: Vec<Record>,
    /// Total abstract work reported by all box invocations.
    pub work: Work,
    /// Records left in unfired synchrocells at end of input.
    pub stranded: usize,
    /// Records diverted under [`FailurePolicy::DeadLetter`], in
    /// deterministic divert order.
    pub dead_letters: Vec<DeadLetter>,
}

/// Per-run fault state threaded through every [`Node::feed`]: the
/// engine-level policy, the dead-letter sequence allocator, and the
/// letters diverted so far (deterministic order — the interpreter is
/// the oracle for the concurrent engines' dead-letter *multiset*).
struct FaultCtx {
    policy: FailurePolicy,
    seq: AtomicU64,
    dead: Vec<DeadLetter>,
}

/// Instantiated, stateful interpreter for one network.
pub struct Interp {
    root: Node,
    mismatch: MismatchPolicy,
    work: Work,
    faults: FaultCtx,
    deadline: Option<Duration>,
    /// Fixed at the first `feed`, mirroring the concurrent engines
    /// (whose clock starts at `start()`).
    deadline_at: Option<Instant>,
}

impl Interp {
    /// Instantiates the interpreter for a topology.
    pub fn new(spec: &NetSpec) -> Interp {
        Interp {
            root: Node::instantiate(spec),
            mismatch: MismatchPolicy::Forward,
            work: Work::ZERO,
            faults: FaultCtx {
                policy: FailurePolicy::FailFast,
                seq: AtomicU64::new(0),
                dead: Vec::new(),
            },
            deadline: None,
            deadline_at: None,
        }
    }

    /// Sets the mismatch policy (default: forward).
    pub fn with_mismatch(mut self, policy: MismatchPolicy) -> Interp {
        self.mismatch = policy;
        self
    }

    /// Sets the engine-level failure policy (default: fail-fast);
    /// boxes with a [`BoxDef::with_policy`] override keep theirs.
    pub fn with_policy(mut self, policy: FailurePolicy) -> Interp {
        self.faults.policy = policy;
        self
    }

    /// Sets a wall-clock deadline, measured from the first `feed`.
    /// Records fed after expiry fail with
    /// [`SnetError::DeadlineExceeded`] — the interpreter's per-record
    /// depth-first step is its only preemption point.
    pub fn with_deadline(mut self, deadline: Duration) -> Interp {
        self.deadline = Some(deadline);
        self
    }

    /// Feeds one record through the network, returning everything it
    /// emits (fully deterministically).
    pub fn feed(&mut self, rec: Record) -> Result<Vec<Record>, SnetError> {
        if let Some(d) = self.deadline {
            let at = *self.deadline_at.get_or_insert_with(|| Instant::now() + d);
            if Instant::now() >= at {
                return Err(SnetError::DeadlineExceeded);
            }
        }
        let mut work = Work::ZERO;
        let out = self
            .root
            .feed(rec, self.mismatch, &mut work, &mut self.faults);
        self.work += work;
        out
    }

    /// Feeds a batch and reports outputs, work, stranded records, and
    /// diverted dead letters.
    pub fn run_batch(mut self, records: Vec<Record>) -> Result<InterpResult, SnetError> {
        let mut outputs = Vec::new();
        for rec in records {
            outputs.extend(self.feed(rec)?);
        }
        Ok(InterpResult {
            outputs,
            work: self.work,
            stranded: self.root.stranded(),
            dead_letters: self.faults.dead,
        })
    }

    /// Total work accumulated so far.
    pub fn work(&self) -> Work {
        self.work
    }

    /// Records currently stuck in unfired synchrocells.
    pub fn stranded(&self) -> usize {
        self.root.stranded()
    }

    /// Dead letters diverted so far.
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.faults.dead
    }
}

/// A component instance with its runtime state.
enum Node {
    Box(BoxDef),
    Filter(FilterSpec),
    Sync {
        spec: SyncSpec,
        state: SyncState,
    },
    Serial(Box<Node>, Box<Node>),
    Parallel {
        branches: Vec<Node>,
        patterns: Vec<Vec<Pattern>>,
    },
    Star {
        template: NetSpec,
        exit: Pattern,
        /// Lazily instantiated replicas; `chain[i]` is the body between
        /// tap `i` and tap `i + 1`.
        chain: Vec<Node>,
    },
    Split {
        template: NetSpec,
        tag: Label,
        /// Tag value → replica (BTreeMap for deterministic iteration).
        replicas: BTreeMap<i64, Node>,
    },
}

impl Node {
    fn instantiate(spec: &NetSpec) -> Node {
        match spec {
            NetSpec::Box(def) => Node::Box(def.clone()),
            NetSpec::Filter(f) => Node::Filter(f.clone()),
            NetSpec::Sync(s) => Node::Sync {
                spec: s.clone(),
                state: s.new_state(),
            },
            NetSpec::Serial(a, b) => Node::Serial(
                Box::new(Node::instantiate(a)),
                Box::new(Node::instantiate(b)),
            ),
            NetSpec::Parallel { branches, .. } => Node::Parallel {
                patterns: branches.iter().map(|b| b.input_patterns()).collect(),
                branches: branches.iter().map(Node::instantiate).collect(),
            },
            NetSpec::Star { body, exit, .. } => Node::Star {
                template: (**body).clone(),
                exit: exit.clone(),
                chain: Vec::new(),
            },
            NetSpec::Split { body, tag, .. } => Node::Split {
                template: (**body).clone(),
                tag: *tag,
                replicas: BTreeMap::new(),
            },
            NetSpec::At { body, .. } | NetSpec::Named { body, .. } => Node::instantiate(body),
            // Fusion is an execution-plan concern; the oracle expands a
            // chain back to the serial composition it denotes, so fused
            // and unfused specs are *literally* the same program here.
            NetSpec::FusedChain { stages } => {
                let mut nodes = stages.iter().rev().map(|s| match s {
                    ChainStage::Box(def) => Node::Box(def.clone()),
                    ChainStage::Filter(f) => Node::Filter(f.clone()),
                });
                let last = nodes.next().expect("fused chains are non-empty");
                nodes.fold(last, |acc, n| Node::Serial(Box::new(n), Box::new(acc)))
            }
        }
    }

    fn feed(
        &mut self,
        rec: Record,
        policy: MismatchPolicy,
        work: &mut Work,
        faults: &mut FaultCtx,
    ) -> Result<Vec<Record>, SnetError> {
        match self {
            Node::Box(def) => {
                // `policy_step` contains panics and applies the failure
                // policy, exactly like the concurrent engines — the
                // oracle must agree with them on error paths too.
                let p = def.effective_policy(faults.policy);
                match fault::policy_step(p, &def.sig.name, &faults.seq, rec, |r| {
                    semantics::box_step(def, r, policy)
                }) {
                    StepVerdict::Out { step, .. } => {
                        *work += step.work;
                        Ok(step.records.into_vec())
                    }
                    StepVerdict::Dead(dl) => {
                        faults.dead.push(*dl);
                        Ok(Vec::new())
                    }
                    StepVerdict::Fatal(e) => Err(e),
                }
            }
            Node::Filter(f) => {
                match fault::policy_step(faults.policy, "filter", &faults.seq, rec, |r| {
                    semantics::filter_step(f, r, policy)
                }) {
                    StepVerdict::Out { step, .. } => Ok(step.records.into_vec()),
                    StepVerdict::Dead(dl) => {
                        faults.dead.push(*dl);
                        Ok(Vec::new())
                    }
                    StepVerdict::Fatal(e) => Err(e),
                }
            }
            Node::Sync { spec, state } => Ok(match state.push(spec, rec) {
                SyncOutcome::Stored => Vec::new(),
                SyncOutcome::Passed(r) => vec![r],
                SyncOutcome::Fired(m) => vec![m],
            }),
            Node::Serial(a, b) => {
                let mut outs = Vec::new();
                for mid in a.feed(rec, policy, work, faults)? {
                    outs.extend(b.feed(mid, policy, work, faults)?);
                }
                Ok(outs)
            }
            Node::Parallel { branches, patterns } => match semantics::best_branch(patterns, &rec) {
                Some(i) => branches[i].feed(rec, policy, work, faults),
                None => match policy {
                    MismatchPolicy::Forward => Ok(vec![rec]),
                    MismatchPolicy::Error => {
                        let cause = SnetError::TypeMismatch {
                            expected: "any parallel branch".into(),
                            got: format!("{rec:?}"),
                        };
                        let dl =
                            fault::reject(faults.policy, "par-dispatch", &faults.seq, rec, cause)?;
                        faults.dead.push(*dl);
                        Ok(Vec::new())
                    }
                },
            },
            Node::Star {
                template,
                exit,
                chain,
            } => {
                // Work-list of (tap index, record): a record at tap `i`
                // either exits or traverses replica `i` and re-enters at
                // tap `i + 1`. FIFO order keeps the result deterministic.
                let mut queue = std::collections::VecDeque::new();
                queue.push_back((0usize, rec));
                let mut outs = Vec::new();
                while let Some((i, r)) = queue.pop_front() {
                    if exit.matches(&r) {
                        outs.push(r);
                        continue;
                    }
                    if chain.len() == i {
                        chain.push(Node::instantiate(template));
                    }
                    for produced in chain[i].feed(r, policy, work, faults)? {
                        queue.push_back((i + 1, produced));
                    }
                }
                Ok(outs)
            }
            Node::Split {
                template,
                tag,
                replicas,
            } => {
                let Some(value) = rec.tag(*tag) else {
                    let dl = fault::reject(
                        faults.policy,
                        "split-dispatch",
                        &faults.seq,
                        rec,
                        SnetError::MissingTag(*tag),
                    )?;
                    faults.dead.push(*dl);
                    return Ok(Vec::new());
                };
                let replica = replicas
                    .entry(value)
                    .or_insert_with(|| Node::instantiate(template));
                replica.feed(rec, policy, work, faults)
            }
        }
    }

    fn stranded(&self) -> usize {
        match self {
            Node::Box(_) | Node::Filter(_) => 0,
            Node::Sync { state, .. } => state.pending().count(),
            Node::Serial(a, b) => a.stranded() + b.stranded(),
            Node::Parallel { branches, .. } => branches.iter().map(Node::stranded).sum(),
            Node::Star { chain, .. } => chain.iter().map(Node::stranded).sum(),
            Node::Split { replicas, .. } => replicas.values().map(Node::stranded).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::boxdef::{BoxOutput, BoxSig};
    use snet_core::{TagExpr, Value, Variant};

    fn inc_box() -> NetSpec {
        NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("inc", &["x"], &[&["x"]]),
            |r| {
                let x = r.field("x").and_then(|v| v.as_int()).unwrap();
                Ok(BoxOutput::one(
                    Record::new().with_field("x", Value::Int(x + 1)),
                    Work::ops(3),
                ))
            },
        ))
    }

    #[test]
    fn serial_is_function_composition() {
        let net = NetSpec::serial(inc_box(), inc_box());
        let res = Interp::new(&net)
            .run_batch(vec![Record::new().with_field("x", Value::Int(40))])
            .unwrap();
        assert_eq!(res.outputs[0].field("x").unwrap().as_int(), Some(42));
        assert_eq!(res.work, Work::ops(6));
    }

    #[test]
    fn parallel_tie_breaks_first() {
        // Both branches accept {x}; the interpreter must always pick the
        // first-declared one.
        let left = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("l", &["x"], &[&["l"]]),
            |_| {
                Ok(BoxOutput::one(
                    Record::new().with_field("l", Value::Unit),
                    Work::ZERO,
                ))
            },
        ));
        let right = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("r", &["x"], &[&["r"]]),
            |_| {
                Ok(BoxOutput::one(
                    Record::new().with_field("r", Value::Unit),
                    Work::ZERO,
                ))
            },
        ));
        let net = NetSpec::parallel(vec![left, right]);
        let res = Interp::new(&net)
            .run_batch(vec![Record::new().with_field("x", Value::Int(1))])
            .unwrap();
        assert!(res.outputs[0].has_field("l"));
    }

    #[test]
    fn star_countdown_matches_engine_semantics() {
        let dec = NetSpec::Filter(FilterSpec::new(
            Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
            vec![snet_core::filter::OutputTemplate::empty().set_tag(
                "n",
                TagExpr::bin(snet_core::BinOp::Sub, TagExpr::tag("n"), TagExpr::Const(1)),
            )],
        ));
        let exit = Pattern::guarded(
            Variant::empty(),
            TagExpr::bin(snet_core::BinOp::Eq, TagExpr::tag("n"), TagExpr::Const(0)),
        );
        let net = NetSpec::star(dec, exit);
        let res = Interp::new(&net)
            .run_batch(vec![
                Record::new().with_tag("n", 3),
                Record::new().with_tag("n", 0),
            ])
            .unwrap();
        assert_eq!(res.outputs.len(), 2);
        assert!(res.outputs.iter().all(|r| r.tag("n") == Some(0)));
    }

    #[test]
    fn stranded_accounting() {
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let res = Interp::new(&cell)
            .run_batch(vec![Record::new().with_field("a", Value::Int(1))])
            .unwrap();
        assert!(res.outputs.is_empty());
        assert_eq!(res.stranded, 1);
    }

    #[test]
    fn split_replicas_have_independent_state() {
        // A synchrocell under `!<k>`: records with different k must not
        // join each other.
        let cell = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = NetSpec::split(cell, "k");
        let res = Interp::new(&net)
            .run_batch(vec![
                Record::new()
                    .with_field("a", Value::Int(1))
                    .with_tag("k", 0),
                Record::new()
                    .with_field("b", Value::Int(2))
                    .with_tag("k", 1),
                Record::new()
                    .with_field("b", Value::Int(3))
                    .with_tag("k", 0),
            ])
            .unwrap();
        // k=0 fires (a joins b); k=1 still waits.
        assert_eq!(res.outputs.len(), 1);
        assert_eq!(res.stranded, 1);
        let m = &res.outputs[0];
        assert!(m.has_field("a") && m.has_field("b"));
        assert_eq!(m.tag("k"), Some(0));
    }
}
