//! # snet-runtime — executing S-Net networks
//!
//! Three engines over the same [`snet_core::NetSpec`] topology and the
//! same shared small-step semantics ([`snet_core::semantics`]), so they
//! cannot drift apart on what a component does to a record:
//!
//! * [`engine::Net`] — the **threaded engine**: every component
//!   instance is an asynchronous OS thread connected by bounded
//!   channels, exactly the paper's model of "asynchronously executed,
//!   stateless stream-processing components" (§III). End-of-stream is
//!   channel disconnect; parallel merge is arrival-order
//!   (nondeterministic, as specified); serial replication unfolds
//!   lazily. Use it as the *executable rendering of the paper's model*
//!   and when components block on real I/O — but note that its thread
//!   count grows with the unrolled component count, which stops scaling
//!   somewhere in the hundreds of components.
//!
//! * [`sched::SchedNet`] — the **scheduled engine**: the same component
//!   graph as lightweight tasks multiplexed over a fixed work-stealing
//!   worker pool ([`EngineConfig::workers`]; default 4). A component
//!   runs when input is in its mailbox, drains up to a budget, and
//!   yields; end-of-stream is sender refcounting. Use it for
//!   throughput: per-record hand-off is a queue push instead of a
//!   thread wake, thousands of component instances cost no OS threads,
//!   and deep pipelines × wide parallelism × star unfoldings that would
//!   exhaust thread limits under the threaded engine run fine. This is
//!   the default choice for compute-bound workloads and the base layer
//!   for the scaling work tracked in ROADMAP.md.
//!
//! * [`interp::Interp`] — the **deterministic reference interpreter**:
//!   single-threaded, FIFO scheduling, first-declared tie-breaks. It is
//!   the executable semantics used as an oracle in property tests (both
//!   concurrent engines must produce the same output *multiset* on
//!   confluent networks). Use it for debugging and as ground truth —
//!   never for performance.
//!
//! ```
//! use snet_core::{NetSpec, Record, Value, BoxOutput, Work};
//! use snet_core::boxdef::{BoxDef, BoxSig};
//! use snet_runtime::{Net, SchedNet};
//!
//! let double = NetSpec::Box(BoxDef::from_fn(
//!     BoxSig::parse("double", &["x"], &[&["x"]]),
//!     |r| {
//!         let x = r.field("x").and_then(|v| v.as_int()).unwrap();
//!         Ok(BoxOutput::one(Record::new().with_field("x", Value::Int(2 * x)), Work::ZERO))
//!     },
//! ));
//! // Threaded engine (one thread per component):
//! let outs = Net::new(double.clone()).run_batch(vec![
//!     Record::new().with_field("x", Value::Int(21)),
//! ]).unwrap();
//! assert_eq!(outs[0].field("x").unwrap().as_int(), Some(42));
//! // Scheduled engine (fixed worker pool):
//! let outs = SchedNet::new(double).run_batch(vec![
//!     Record::new().with_field("x", Value::Int(21)),
//! ]).unwrap();
//! assert_eq!(outs[0].field("x").unwrap().as_int(), Some(42));
//! ```

pub mod engine;
pub mod interp;
pub mod sched;
pub mod trace;

pub use engine::{EngineConfig, Net, NetHandle};
pub use interp::{Interp, InterpResult};
pub use sched::SchedNet;
pub use trace::Trace;
