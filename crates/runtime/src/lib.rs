//! # snet-runtime — executing S-Net networks
//!
//! Two engines over the same [`snet_core::NetSpec`] topology and the same
//! shared small-step semantics:
//!
//! * [`engine::Net`] — the **threaded engine**: every component instance
//!   is an asynchronous thread connected by bounded channels, exactly the
//!   paper's model of "asynchronously executed, stateless
//!   stream-processing components" (§III). End-of-stream is channel
//!   disconnect; parallel merge is arrival-order (nondeterministic, as
//!   specified); serial replication unfolds lazily.
//! * [`interp::Interp`] — the **deterministic reference interpreter**:
//!   single-threaded, FIFO scheduling, first-declared tie-breaks. It is
//!   the executable semantics used as an oracle in property tests (the
//!   threaded engine must produce the same output *multiset*).
//!
//! ```
//! use snet_core::{NetSpec, Record, Value, BoxOutput, Work};
//! use snet_core::boxdef::{BoxDef, BoxSig};
//! use snet_runtime::engine::Net;
//!
//! let double = NetSpec::Box(BoxDef::from_fn(
//!     BoxSig::parse("double", &["x"], &[&["x"]]),
//!     |r| {
//!         let x = r.field("x").and_then(|v| v.as_int()).unwrap();
//!         Ok(BoxOutput::one(Record::new().with_field("x", Value::Int(2 * x)), Work::ZERO))
//!     },
//! ));
//! let outs = Net::new(double).run_batch(vec![
//!     Record::new().with_field("x", Value::Int(21)),
//! ]).unwrap();
//! assert_eq!(outs[0].field("x").unwrap().as_int(), Some(42));
//! ```

pub mod engine;
pub mod interp;
pub mod trace;

pub use engine::{EngineConfig, Net, NetHandle};
pub use interp::{Interp, InterpResult};
pub use trace::Trace;
