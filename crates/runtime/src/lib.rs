//! # snet-runtime — executing S-Net networks
//!
//! Three engines over the same [`snet_core::NetSpec`] topology and the
//! same shared small-step semantics ([`snet_core::semantics`]), so they
//! cannot drift apart on what a component does to a record. The two
//! concurrent engines present **one execution API**: batch
//! (`run_batch` / `run_batch_traced`) and streaming (`start()` → a
//! handle with `send` / `recv` / `close_input` / `finish`), unified by
//! the [`Engine`] and [`StreamHandle`] traits so tests, benchmarks and
//! applications can be parameterized over the engine.
//!
//! * [`engine::Net`] — the **threaded engine**: every component
//!   instance is an asynchronous OS thread connected by bounded
//!   channels, exactly the paper's model of "asynchronously executed,
//!   stateless stream-processing components" (§III). End-of-stream is
//!   channel disconnect; parallel merge is arrival-order
//!   (nondeterministic, as specified); serial replication unfolds
//!   lazily. [`Net::start`] returns a [`NetHandle`] whose ingress
//!   backpressure is the bounded entry channel itself. Use it as the
//!   *executable rendering of the paper's model* and when components
//!   block on real I/O — but note that its thread count grows with the
//!   unrolled component count, which stops scaling somewhere in the
//!   hundreds of components.
//!
//! * [`sched::SchedNet`] — the **scheduled engine**: the same component
//!   graph as lightweight tasks multiplexed over a **persistent**
//!   work-stealing worker pool ([`EngineConfig::workers`]; default 4).
//!   The pool spawns on the first run and lives until the `SchedNet`
//!   drops, so consecutive batches and any number of streaming runs
//!   reuse the same OS threads — no per-call spawn/join. A component
//!   runs when input is in its mailbox, drains up to a budget, and
//!   yields; end-of-stream is sender refcounting, and a run's
//!   completion is wake-driven (the sink's finalization signals the
//!   driver — no polling). [`SchedNet::start`] returns a
//!   [`SchedHandle`] with *bounded ingress*: `send` blocks (and
//!   `try_send` reports `Full`) once
//!   [`EngineConfig::channel_capacity`] records are resident in the
//!   entry mailbox, and outputs stream out of a bounded channel as the
//!   sink produces them, so a slow consumer throttles the whole
//!   network instead of buffering unboundedly. This is the default
//!   choice for compute-bound workloads and the base layer for the
//!   scaling work tracked in ROADMAP.md.
//!
//! ## Batched hand-off ([`EngineConfig::batch`])
//!
//! Record hand-off in the scheduled engine is **batch-granular**, not
//! record-granular. Every inter-task edge coalesces an activation's
//! output in a producer-side buffer and pushes it downstream as one
//! run: one mailbox lock acquisition and at most one consumer wake per
//! up-to-`batch` records, instead of one of each per record. Input is
//! drained at the same granularity (a task claims up to `batch`
//! records from its mailbox under one lock), the activation budget
//! counts *records* so long streams still yield to siblings, and every
//! activation flushes all of its output edges before yielding — no
//! record is ever stranded in a coalescing buffer while its producer
//! waits. Per-edge FIFO order is preserved exactly; only the lock/wake
//! cadence changes, so the small-step semantics (and the interpreter
//! oracle) are unaffected. `batch = 1` restores the pre-batching
//! record-at-a-time protocol bit for bit.
//!
//! The default (`batch = 32`) was tuned on the serial-pipeline
//! benchmark (`BENCH_batched_handoff.json`; see
//! `crates/bench/src/bin/bench_engines.rs --handoff-out`): on the
//! 16-deep pipeline it runs 1.37x the previous single-record
//! scheduler (1.26x the in-tree `batch = 1` point), and larger
//! batches plateau once the per-record lock cost is amortized away.
//! Under the hood the worker deques are a lock-free Chase–Lev
//! implementation (see the `crossbeam-deque` shim), so stealing no
//! longer serializes on a mutex either. Backpressure is cooperative:
//! a task whose downstream mailbox is over the high-water mark stops
//! consuming and re-enqueues itself with exponential backoff (1µs
//! doubling to ~1ms) rather than spinning on the global queue.
//!
//! ## Operator fusion ([`EngineConfig::fuse`])
//!
//! Before instantiating a network, both concurrent engines rewrite the
//! [`NetSpec`](snet_core::NetSpec) with
//! [`snet_core::fuse`]: every **maximal static SISO chain** — a serial
//! run of boxes and filters with a single input and a single output
//! and no intervening merge point — collapses into one
//! `NetSpec::FusedChain` component. A fused chain is one scheduler
//! task (one thread on the threaded engine): each activation runs its
//! records through *all* stages back-to-back in two ping-pong buffers,
//! so a depth-N pipeline costs zero mailbox hops, locks, or wakes
//! between its stages instead of N−1 of each. Combinator boundaries
//! that can reorder, replicate, or synchronize records —
//! parallel/split dispatch and merge, star unfolding, synchrocells —
//! are never fused across; mailboxes remain exactly there, so the
//! observable record flow (and the interpreter oracle) is unchanged.
//!
//! Fusion preserves **per-stage fault semantics**: each stage inside a
//! chain still runs under its own [`FailurePolicy`], a
//! `DeadLetter`-diverted record carries the *failing stage's* box name
//! in its [`FailureReport`], `Retry` re-attempts only the failing
//! stage (not the whole chain), and under `FailFast` a panic anywhere
//! in the chain is attributed to the exact stage that raised it. The
//! trace still counts per-stage `box_ops`/`filter_ops` via the chain
//! tally, so fused and unfused runs are indistinguishable to
//! observers. `EngineConfig { fuse: false, .. }` disables the rewrite
//! and runs the chain stage-per-task — the equivalence property suite
//! (`fusion_equivalence.rs`) holds fused, unfused, and interpreter
//! runs to the same output multisets, dead-letter multisets, and
//! failure attributions. On the depth-16 pipeline benchmark the fused
//! scheduled engine runs ≥1.5x the unfused one (`BENCH_fusion.json`,
//! gated in CI via `scripts/check_bench.py`).
//!
//! ## Failure semantics
//!
//! Every engine runs each component step under a [`FailurePolicy`] —
//! the engine-wide default is [`EngineConfig::policy`], overridable per
//! box with [`BoxDef::with_policy`](snet_core::BoxDef::with_policy):
//!
//! | Policy | Box error or panic | Glue error (filter, dispatch) |
//! |---|---|---|
//! | `FailFast` (default) | the first error poisons the run; `finish` / `run_batch` report it and in-flight records are dropped | same |
//! | `Retry { max_attempts, backoff }` | the box step is re-attempted on `BoxFailure` (panics are caught and count) with exponential backoff; exhaustion is fatal | never retried — glue errors are deterministic, so this degenerates to `FailFast` |
//! | `DeadLetter` | the offending record is diverted, with a [`FailureReport`], to the run's bounded dead-letter stream and the run continues | diverted too |
//!
//! Dead letters surface three ways: batch runs return them in
//! [`RunReport::dead_letters`] (via [`Engine::run_batch_report`]);
//! streaming runs poll [`StreamHandle::try_recv_dead_letter`]; and the
//! [`Trace`] counts them (`dead_letters`, `retries`). Under
//! `DeadLetter` the outputs plus the diverted records partition the
//! input-derived record set — nothing is silently dropped. **Ordering
//! caveat:** the stream is ordered by divert time, which on the
//! concurrent engines is a race between components; only
//! per-component subsequences (and [`FailureReport::seq`] within one
//! run) are deterministic. The streaming dead-letter channel is
//! bounded; a consumer that never drains it while diversions pile up
//! fails the run with an engine error rather than blocking workers.
//!
//! Runs end early two ways, both cooperative:
//! [`StreamHandle::cancel`] and [`EngineConfig::deadline`]. On either
//! path `finish()` reports [`SnetError::Cancelled`] /
//! [`SnetError::DeadlineExceeded`], outputs already produced stay
//! retrievable (`recv` keeps draining until the output stream
//! disconnects), and the scheduled engine's worker pool stays healthy
//! and reusable — a later run on the same `SchedNet` spawns no new
//! workers. Cancellation points are activation boundaries (plus the
//! batch stride inside long drains), so a box body is never
//! interrupted mid-call: a stalled box delays detection but cannot
//! corrupt state.
//!
//! The [`faultinject`] module provides the deterministic, content-keyed
//! chaos harness the robustness property tests drive these paths with.
//!
//! ## Static analysis
//!
//! Both concurrent engines run the `snet-analyze` abstract interpreter
//! over the topology before executing it, at two levels of precision:
//!
//! * **Open pre-flight** (on by default, [`EngineConfig::analyze`]):
//!   `Net::with_config` / `SchedNet::with_config` analyze the spec with
//!   an *open* entry type — no assumption about the input stream — so
//!   only input-independent structural defects can fire. Today that is
//!   SNA006 (`@node` placement outside [`EngineConfig::nodes`]). A
//!   finding is reported as [`SnetError::Analysis`] from the first run
//!   (`run_batch*`, or `finish()` on a started stream) rather than
//!   panicking in the middle of one. `analyze: false` opts out.
//! * **Entry-typed analysis** ([`Net::with_entry_type`] /
//!   [`SchedNet::with_entry_type`]): given the input stream's record
//!   type, construction runs the full shape analysis and *refuses to
//!   build* a network with an error-severity finding — unroutable
//!   records at a parallel (SNA001), synchrocells that can never fire
//!   (SNA003), splits not guaranteed their index tag (SNA004), filters
//!   reading labels the input cannot carry (SNA005). Diagnostics carry
//!   stable `SNA...` codes and component paths; the same codes are
//!   exposed by [`SnetError::diag_code`](snet_core::SnetError::diag_code)
//!   when the equivalent defect is hit *dynamically*, so a runtime
//!   routing failure and its static prediction read as one vocabulary.
//!
//! Acceptance is not just a veto — it is a proof the engines exploit.
//! When the analysis shows that every record reaching a box
//! exact-matches the box's input variant, the box is annotated
//! (`BoxDef::exact_input`) and the shared `box_step` skips its
//! per-record `accepts` check. The soundness contract — anything the
//! reference interpreter routes, the analyzer must not flag, and
//! annotated runs produce bit-identical output multisets — is pinned
//! by the property suite in `tests/analyze_soundness.rs` (256+ random
//! topologies per property) and gated in CI's `analyze` lane; the
//! no-regression guarantee of the fast path is gated through
//! `BENCH_analyze.json` / `bench_gates.toml`. The `snet-lint` binary
//! (crates/apps) runs the same analysis over the paper's application
//! networks.
//!
//! ## Concurrency correctness
//!
//! The scheduled engine's hot paths are lock-free or condvar-gated, and
//! "it passed the stress tests" is not an argument there. Four layers
//! back up the concurrent internals:
//!
//! 1. **Model checking** (`crates/check`, the `snet-check` crate): a
//!    loom-style deterministic scheduler explores thread interleavings
//!    exhaustively (sequentially consistent schedules, preemption-
//!    bounded DFS, deterministic replay of any failing schedule). The
//!    shims' concurrency façade and this crate's mailbox path compile
//!    against `snet_check::sync` under `RUSTFLAGS="--cfg snet_check"`,
//!    so the *real* Chase–Lev deque and channel implementations are
//!    model-checked, not simplified copies
//!    (`cargo test -p snet-check` runs the façade models in every
//!    build; the CI `model-check` lane adds the cfg'd suite). The
//!    checker has already earned its keep: it found a missed-wake
//!    window in `sched.rs::notify` — a producer's push + sleeper-gate
//!    check + notify could land entirely between a parking worker's
//!    injector re-probe and its condvar wait, burning the 1ms timed
//!    backstop. The fix (lock-then-notify) and the failing protocol are
//!    both pinned in `crates/check/tests/mailbox.rs`.
//! 2. **Weak-memory coverage**: the model runs SeqCst-only, so the CI
//!    `tsan` lane races the deque and the scheduler's streaming suite
//!    under ThreadSanitizer, and the `miri` lane runs the value/record
//!    and smallvec layers under Miri for UB beyond data races.
//! 3. **Unsafe audit**: the only crates allowed to contain `unsafe`
//!    are the two shims with lock-free/inline-buffer internals, the
//!    model checker, and this crate (one `libc::sched_setaffinity`
//!    call). All of them `#![deny(unsafe_op_in_unsafe_fn)]`, every
//!    unsafe block carries a `SAFETY:` comment, and
//!    `scripts/check_unsafe.py` fails CI on any unsafe block without
//!    one — or any unsafe in a crate outside that allowlist.
//! 4. **Interleaving stress**: the deque's `steal_race.rs` drives the
//!    2- and 3-thread last-element races and growth/steal overlap with
//!    barrier-released replays; the fault-injection harness churns the
//!    failure paths.
//!
//! * [`interp::Interp`] — the **deterministic reference interpreter**:
//!   single-threaded, FIFO scheduling, first-declared tie-breaks. It is
//!   the executable semantics used as an oracle in property tests (both
//!   concurrent engines must produce the same output *multiset* on
//!   confluent networks, batch or streamed). Use it for debugging and
//!   as ground truth — never for performance.
//!
//! ## Memory & scale
//!
//! Streaming memory is bounded by configuration, not by stream length,
//! and the steady-state hot path allocates **nothing per record**.
//!
//! **Pooling** (`snet_core::pool`): the scheduled engine's steady state
//! cycles a fixed set of buffer shapes — the `Vec<Record>` a task
//! drains its mailbox into each activation, the coalescing buffer of
//! every producer port, the two ping-pong buffers inside each fused
//! chain's `ChainRunner`, the sink's delivery window, and the
//! `VecDeque<Record>` backing every mailbox. All of them are drawn from
//! and returned to per-thread freelists (with a bounded cross-thread
//! spill), so after warm-up an activation reuses warmed capacity
//! instead of touching the allocator. Recycling is best-effort and
//! capacity-capped: oversized buffers are dropped rather than pinned,
//! and a pool miss just allocates — correctness never depends on the
//! pool. What is *not* recycled: record payloads themselves (fields own
//! their values; short records live inline via smallvec and never hit
//! the heap), the bounded ingress/egress channels' internal queues
//! (amortized by the channel, retained for the run's lifetime), and
//! per-run setup (task graph, trace) — which is why the guarantee is
//! *steady-state* allocation freedom, proven by the counting-allocator
//! test `tests/alloc_steady.rs`: a depth-16 fused chain streams 50k
//! records on ~100 total allocations (0 per record), and the unfused
//! path is a flat constant too.
//!
//! **The RSS ceiling**: with `cap = channel_capacity` and `C`
//! components in the run's graph, records in flight are bounded by
//!
//! ```text
//! in_flight  <=  cap              (ingress channel)
//!             +  C * 16 * cap     (per-component mailbox high-water)
//!             +  cap              (egress channel)
//! ```
//!
//! (plus one hand-off batch of slop per edge), so peak RSS above the
//! binary-plus-pool baseline is `O(in_flight * record_size)` — a
//! function of topology and configuration only. `tests/memory_soak.rs`
//! pins it: a million records through a throttled depth-8 pipeline grow
//! peak RSS by ~2 MiB. At macro scale the same holds across many
//! concurrent sessions on one pool: the gated
//! `crates/bench/src/bin/macro_scale.rs` harness streams >= 1M records
//! over 8 sessions and reports sustained throughput, p50/p99
//! end-to-end latency (timestamp-on-ingress tag), and peak RSS into
//! `BENCH_macro_scale.json`, with cross-machine backstops enforced from
//! `bench_gates.toml` in CI (reduced-record smoke mode; the metrics are
//! rates and ceilings, so the record count does not change their
//! meaning).
//!
//! ## One API, two engines
//!
//! ```
//! use snet_core::{NetSpec, Record, Value, BoxOutput, Work};
//! use snet_core::boxdef::{BoxDef, BoxSig};
//! use snet_runtime::{Engine, Net, SchedNet, StreamHandle};
//!
//! let double = NetSpec::Box(BoxDef::from_fn(
//!     BoxSig::parse("double", &["x"], &[&["x"]]),
//!     |r| {
//!         let x = r.field("x").and_then(|v| v.as_int()).unwrap();
//!         Ok(BoxOutput::one(Record::new().with_field("x", Value::Int(2 * x)), Work::ZERO))
//!     },
//! ));
//!
//! // The same streaming code drives either engine:
//! fn stream_one<E: Engine>(engine: &E, x: i64) -> i64 {
//!     let h = engine.start();
//!     h.send(Record::new().with_field("x", Value::Int(x))).unwrap();
//!     let out = h.recv().expect("one output");
//!     h.finish().unwrap();
//!     out.field("x").unwrap().as_int().unwrap()
//! }
//! assert_eq!(stream_one(&Net::new(double.clone()), 21), 42);   // thread per component
//! assert_eq!(stream_one(&SchedNet::new(double), 21), 42);      // persistent worker pool
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod engine;
pub mod faultinject;
pub mod interp;
pub mod sched;
pub mod trace;

pub use engine::{EngineConfig, Net, NetHandle};
pub use faultinject::{chaos, chaos_with_stats, ChaosStats, FaultKind, FaultSpec};
pub use interp::{Interp, InterpResult};
pub use sched::{SchedHandle, SchedNet, TrySendError};
pub use trace::Trace;

pub use snet_core::fault::{DeadLetter, FailurePolicy, FailureReport};

use snet_core::{NetSpec, Record, SnetError};
use std::sync::Arc;

/// Everything a batch run produced: the surviving outputs, the records
/// diverted under [`FailurePolicy::DeadLetter`] (with their
/// [`FailureReport`]s), and the run's event counters.
///
/// Under `DeadLetter`, `outputs` plus the input-derived records behind
/// `dead_letters` partition the record set the fault-free run would
/// have produced — nothing is silently dropped. Under the other
/// policies `dead_letters` is always empty.
#[derive(Debug)]
pub struct RunReport {
    /// Output records in arrival order.
    pub outputs: Vec<Record>,
    /// Records diverted to the dead-letter stream, in divert order.
    pub dead_letters: Vec<DeadLetter>,
    /// The run's event counters.
    pub trace: Arc<Trace>,
}

/// A running network instance accepting an input stream and producing
/// an output stream, independent of which engine executes it.
///
/// Both halves take `&self`, so a producer thread can [`send`] while a
/// consumer thread [`recv`]s through a shared reference — the shape
/// [`run_stream`] uses. Ingress is bounded on both engines (the
/// threaded engine's entry channel, the scheduled engine's entry
/// mailbox cap), so `send` exerts real backpressure on the producer.
///
/// [`send`]: StreamHandle::send
/// [`recv`]: StreamHandle::recv
pub trait StreamHandle: Send + Sync {
    /// Sends one record into the network, blocking while the bounded
    /// ingress is full. Fails once the input is closed or the run has
    /// failed.
    fn send(&self, rec: Record) -> Result<(), SnetError>;

    /// Non-blocking send: hands the record back as
    /// [`TrySendError::Full`] instead of blocking when the bounded
    /// ingress is full.
    #[allow(clippy::result_large_err)] // Full carries the record back by design
    fn try_send(&self, rec: Record) -> Result<(), TrySendError>;

    /// Sends a pre-materialized batch, still against the bounded
    /// ingress: implementations deliver in capacity-sized windows (one
    /// lock/wake per window) and block for drain space between windows,
    /// so resident records stay within the configured bound. The
    /// default just loops [`StreamHandle::send`].
    fn send_all(&self, records: Vec<Record>) -> Result<(), SnetError> {
        for rec in records {
            self.send(rec)?;
        }
        Ok(())
    }

    /// Closes the input stream (end-of-stream for the network).
    /// Idempotent.
    fn close_input(&self);

    /// Requests cooperative cancellation: the run fails with
    /// [`SnetError::Cancelled`] (reported by
    /// [`finish`](StreamHandle::finish)), components stop at their next
    /// cancellation point, and outputs already produced remain
    /// drainable via [`recv`](StreamHandle::recv). Idempotent; a no-op
    /// after the run completed.
    fn cancel(&self);

    /// Non-blocking receive on the run's dead-letter stream: the next
    /// record diverted under [`FailurePolicy::DeadLetter`], or `None`
    /// when nothing is queued. Streaming consumers should poll this
    /// alongside [`try_recv`](StreamHandle::try_recv) — the stream is
    /// bounded, and letting it fill while diversions continue fails
    /// the run.
    fn try_recv_dead_letter(&self) -> Option<DeadLetter>;

    /// Receives the next output record; `None` once the output stream
    /// has terminated.
    fn recv(&self) -> Option<Record>;

    /// Non-blocking receive: `None` when nothing is currently queued
    /// (including after termination — use [`StreamHandle::recv`] to
    /// distinguish end-of-stream).
    fn try_recv(&self) -> Option<Record>;

    /// Runs at most one unit of engine work on the calling thread, if
    /// the engine supports caller-runs helping (the scheduled engine
    /// does; the threaded engine has no task queue and returns `false`).
    /// Streaming drivers call this instead of blocking when the ingress
    /// is full and nothing is drainable.
    fn drive(&self) -> bool {
        false
    }

    /// Clonable handle to the run's event counters.
    fn trace_arc(&self) -> Arc<Trace>;

    /// Closes the input, drains remaining output, waits for the run to
    /// terminate, and reports the first error raised during the run.
    fn finish(self) -> Result<(), SnetError>
    where
        Self: Sized;
}

/// An S-Net execution engine: something that can run a [`NetSpec`]
/// either as a one-shot batch or as a stream via a [`StreamHandle`].
///
/// Implemented by the threaded engine ([`Net`]) and the scheduled
/// engine ([`SchedNet`]), letting tests, benchmarks and applications be
/// parameterized over the engine.
pub trait Engine {
    /// The engine's streaming handle type.
    type Handle: StreamHandle;

    /// Engine name for labels in tests and benchmark output.
    fn name(&self) -> &'static str;

    /// The underlying topology.
    fn spec(&self) -> &NetSpec;

    /// Instantiates the network and returns a streaming handle.
    fn start(&self) -> Self::Handle;

    /// Feeds a batch of records and collects the complete output
    /// stream (arrival order).
    fn run_batch(&self, records: Vec<Record>) -> Result<Vec<Record>, SnetError>;

    /// Like [`Engine::run_batch`] but also returns the run's [`Trace`].
    fn run_batch_traced(
        &self,
        records: Vec<Record>,
    ) -> Result<(Vec<Record>, Arc<Trace>), SnetError>;

    /// Full-fidelity batch run: outputs, dead letters, and trace in one
    /// [`RunReport`]. This is the entry point for
    /// [`FailurePolicy::DeadLetter`] batch runs — the plainer
    /// `run_batch*` forms discard the diverted records.
    fn run_batch_report(&self, records: Vec<Record>) -> Result<RunReport, SnetError>;
}

impl StreamHandle for NetHandle {
    fn send(&self, rec: Record) -> Result<(), SnetError> {
        NetHandle::send(self, rec)
    }
    #[allow(clippy::result_large_err)]
    fn try_send(&self, rec: Record) -> Result<(), TrySendError> {
        NetHandle::try_send(self, rec)
    }
    fn send_all(&self, records: Vec<Record>) -> Result<(), SnetError> {
        NetHandle::send_all(self, records)
    }
    fn close_input(&self) {
        NetHandle::close_input(self)
    }
    fn cancel(&self) {
        NetHandle::cancel(self)
    }
    fn try_recv_dead_letter(&self) -> Option<DeadLetter> {
        NetHandle::try_recv_dead_letter(self)
    }
    fn recv(&self) -> Option<Record> {
        NetHandle::recv(self)
    }
    fn try_recv(&self) -> Option<Record> {
        NetHandle::try_recv(self)
    }
    fn trace_arc(&self) -> Arc<Trace> {
        NetHandle::trace_arc(self)
    }
    fn finish(self) -> Result<(), SnetError> {
        NetHandle::finish(self)
    }
}

impl StreamHandle for SchedHandle {
    fn send(&self, rec: Record) -> Result<(), SnetError> {
        SchedHandle::send(self, rec)
    }
    #[allow(clippy::result_large_err)]
    fn try_send(&self, rec: Record) -> Result<(), TrySendError> {
        SchedHandle::try_send(self, rec)
    }
    fn send_all(&self, records: Vec<Record>) -> Result<(), SnetError> {
        SchedHandle::send_all(self, records)
    }
    fn close_input(&self) {
        SchedHandle::close_input(self)
    }
    fn cancel(&self) {
        SchedHandle::cancel(self)
    }
    fn try_recv_dead_letter(&self) -> Option<DeadLetter> {
        SchedHandle::try_recv_dead_letter(self)
    }
    fn recv(&self) -> Option<Record> {
        SchedHandle::recv(self)
    }
    fn try_recv(&self) -> Option<Record> {
        SchedHandle::try_recv(self)
    }
    fn drive(&self) -> bool {
        SchedHandle::drive(self)
    }
    fn trace_arc(&self) -> Arc<Trace> {
        SchedHandle::trace_arc(self)
    }
    fn finish(self) -> Result<(), SnetError> {
        SchedHandle::finish(self)
    }
}

impl Engine for Net {
    type Handle = NetHandle;

    fn name(&self) -> &'static str {
        "threaded"
    }
    fn spec(&self) -> &NetSpec {
        Net::spec(self)
    }
    fn start(&self) -> NetHandle {
        Net::start(self)
    }
    fn run_batch(&self, records: Vec<Record>) -> Result<Vec<Record>, SnetError> {
        Net::run_batch(self, records)
    }
    fn run_batch_traced(
        &self,
        records: Vec<Record>,
    ) -> Result<(Vec<Record>, Arc<Trace>), SnetError> {
        Net::run_batch_traced(self, records)
    }
    fn run_batch_report(&self, records: Vec<Record>) -> Result<RunReport, SnetError> {
        Net::run_batch_report(self, records)
    }
}

impl Engine for SchedNet {
    type Handle = SchedHandle;

    fn name(&self) -> &'static str {
        "sched"
    }
    fn spec(&self) -> &NetSpec {
        SchedNet::spec(self)
    }
    fn start(&self) -> SchedHandle {
        SchedNet::start(self)
    }
    fn run_batch(&self, records: Vec<Record>) -> Result<Vec<Record>, SnetError> {
        SchedNet::run_batch(self, records)
    }
    fn run_batch_traced(
        &self,
        records: Vec<Record>,
    ) -> Result<(Vec<Record>, Arc<Trace>), SnetError> {
        SchedNet::run_batch_traced(self, records)
    }
    fn run_batch_report(&self, records: Vec<Record>) -> Result<RunReport, SnetError> {
        SchedNet::run_batch_report(self, records)
    }
}

/// Streams a batch of records through an engine: a feeder thread pushes
/// them against the handle's bounded ingress
/// ([`StreamHandle::send_all`], capacity-window granularity) while the
/// calling thread drains the output, then the run is finished and the
/// collected outputs returned.
///
/// This is the streaming analogue of [`Engine::run_batch`] — same
/// inputs, same output multiset on confluent nets, but bounded
/// residency instead of a materialized entry backlog — and is what the
/// equivalence property tests and the streaming benchmark drive.
pub fn run_stream<E: Engine>(engine: &E, records: Vec<Record>) -> Result<Vec<Record>, SnetError> {
    let handle = engine.start();
    let mut outs = Vec::new();
    std::thread::scope(|s| {
        let h = &handle;
        s.spawn(move || {
            // A send error means the run failed; finish() reports why.
            let _ = h.send_all(records);
            h.close_input();
        });
        while let Some(rec) = h.recv() {
            outs.push(rec);
        }
    });
    handle.finish()?;
    Ok(outs)
}

/// Single-threaded streaming driver: pushes records through the bounded
/// ingress and drains outputs on the calling thread, never parking
/// while input remains. A full ingress triggers an output drain; if
/// nothing is drainable either, the thread *yields* to the engine's
/// workers instead of doing a condvar round trip.
///
/// Residency stays bounded exactly like [`run_stream`] (`try_send`
/// refuses to exceed the ingress capacity), but no feeder or consumer
/// thread exists to ping-pong with the workers, and the workers never
/// pay an ingress wakeup — on a loaded or single-core host those
/// per-window context switches are what separates streaming from
/// batch-mode throughput. Prefer this when one thread both produces
/// and consumes the stream; prefer [`run_stream`] (or a hand-rolled
/// producer thread) when production and consumption are naturally
/// concurrent.
pub fn run_stream_interleaved<E: Engine>(
    engine: &E,
    records: Vec<Record>,
) -> Result<Vec<Record>, SnetError> {
    let handle = engine.start();
    let mut outs = Vec::new();
    'feed: for rec in records {
        let mut pending = rec;
        loop {
            match handle.try_send(pending) {
                Ok(()) => break,
                Err(TrySendError::Full(back)) => {
                    pending = back;
                    let mut drained = false;
                    while let Some(out) = handle.try_recv() {
                        outs.push(out);
                        drained = true;
                    }
                    if !drained && !handle.drive() {
                        // Ingress full, nothing to drain, no task to
                        // help with: the pipeline is mid-flight on the
                        // workers. Hand them the CPU.
                        std::thread::yield_now();
                    }
                }
                // The run failed; stop feeding and let finish() report.
                Err(TrySendError::Closed(_)) => break 'feed,
            }
        }
    }
    handle.close_input();
    // Tail drain, still helping: run leftover engine work in place and
    // only block on `recv` when there is truly nothing else to do.
    loop {
        if let Some(rec) = handle.try_recv() {
            outs.push(rec);
        } else if !handle.drive() {
            match handle.recv() {
                Some(rec) => outs.push(rec),
                None => break,
            }
        }
    }
    handle.finish()?;
    Ok(outs)
}
