//! # snet-runtime — executing S-Net networks
//!
//! Three engines over the same [`snet_core::NetSpec`] topology and the
//! same shared small-step semantics ([`snet_core::semantics`]), so they
//! cannot drift apart on what a component does to a record:
//!
//! * [`engine::Net`] — the **threaded engine**: every component
//!   instance is an asynchronous OS thread connected by bounded
//!   channels, exactly the paper's model of "asynchronously executed,
//!   stateless stream-processing components" (§III). End-of-stream is
//!   channel disconnect; parallel merge is arrival-order
//!   (nondeterministic, as specified); serial replication unfolds
//!   lazily. Use it as the *executable rendering of the paper's model*
//!   and when components block on real I/O — but note that its thread
//!   count grows with the unrolled component count, which stops scaling
//!   somewhere in the hundreds of components.
//!
//! * [`sched::SchedNet`] — the **scheduled engine**: the same component
//!   graph as lightweight tasks multiplexed over a fixed work-stealing
//!   worker pool ([`EngineConfig::workers`]; default 4). A component
//!   runs when input is in its mailbox, drains up to a budget, and
//!   yields; end-of-stream is sender refcounting. Use it for
//!   throughput: per-record hand-off is a queue push instead of a
//!   thread wake, thousands of component instances cost no OS threads,
//!   and deep pipelines × wide parallelism × star unfoldings that would
//!   exhaust thread limits under the threaded engine run fine. This is
//!   the default choice for compute-bound workloads and the base layer
//!   for the scaling work tracked in ROADMAP.md.
//!
//! ## Batched hand-off ([`EngineConfig::batch`])
//!
//! Record hand-off in the scheduled engine is **batch-granular**, not
//! record-granular. Every inter-task edge coalesces an activation's
//! output in a producer-side buffer and pushes it downstream as one
//! run: one mailbox lock acquisition and at most one consumer wake per
//! up-to-`batch` records, instead of one of each per record. Input is
//! drained at the same granularity (a task claims up to `batch`
//! records from its mailbox under one lock), the activation budget
//! counts *records* so long streams still yield to siblings, and every
//! activation flushes all of its output edges before yielding — no
//! record is ever stranded in a coalescing buffer while its producer
//! waits. Per-edge FIFO order is preserved exactly; only the lock/wake
//! cadence changes, so the small-step semantics (and the interpreter
//! oracle) are unaffected. `batch = 1` restores the pre-batching
//! record-at-a-time protocol bit for bit.
//!
//! The default (`batch = 32`) was tuned on the serial-pipeline
//! benchmark (`BENCH_batched_handoff.json`; see
//! `crates/bench/src/bin/bench_engines.rs --handoff-out`): on the
//! 16-deep pipeline it runs 1.37x the previous single-record
//! scheduler (1.26x the in-tree `batch = 1` point), and larger
//! batches plateau once the per-record lock cost is amortized away.
//! Under the hood the worker deques are a lock-free Chase–Lev
//! implementation (see the `crossbeam-deque` shim), so stealing no
//! longer serializes on a mutex either. Backpressure is cooperative:
//! a task whose downstream mailbox is over the high-water mark stops
//! consuming and re-enqueues itself with exponential backoff (1µs
//! doubling to ~1ms) rather than spinning on the global queue.
//!
//! * [`interp::Interp`] — the **deterministic reference interpreter**:
//!   single-threaded, FIFO scheduling, first-declared tie-breaks. It is
//!   the executable semantics used as an oracle in property tests (both
//!   concurrent engines must produce the same output *multiset* on
//!   confluent networks). Use it for debugging and as ground truth —
//!   never for performance.
//!
//! ```
//! use snet_core::{NetSpec, Record, Value, BoxOutput, Work};
//! use snet_core::boxdef::{BoxDef, BoxSig};
//! use snet_runtime::{Net, SchedNet};
//!
//! let double = NetSpec::Box(BoxDef::from_fn(
//!     BoxSig::parse("double", &["x"], &[&["x"]]),
//!     |r| {
//!         let x = r.field("x").and_then(|v| v.as_int()).unwrap();
//!         Ok(BoxOutput::one(Record::new().with_field("x", Value::Int(2 * x)), Work::ZERO))
//!     },
//! ));
//! // Threaded engine (one thread per component):
//! let outs = Net::new(double.clone()).run_batch(vec![
//!     Record::new().with_field("x", Value::Int(21)),
//! ]).unwrap();
//! assert_eq!(outs[0].field("x").unwrap().as_int(), Some(42));
//! // Scheduled engine (fixed worker pool):
//! let outs = SchedNet::new(double).run_batch(vec![
//!     Record::new().with_field("x", Value::Int(21)),
//! ]).unwrap();
//! assert_eq!(outs[0].field("x").unwrap().as_int(), Some(42));
//! ```

pub mod engine;
pub mod interp;
pub mod sched;
pub mod trace;

pub use engine::{EngineConfig, Net, NetHandle};
pub use interp::{Interp, InterpResult};
pub use sched::SchedNet;
pub use trace::Trace;
