//! The threaded engine: asynchronous components over bounded channels.
//!
//! Every primitive component instance (box, filter, synchrocell) and
//! every piece of combinator glue (parallel dispatcher, star tap, index
//! dispatcher) runs as its own thread, connected by bounded
//! [`crossbeam_channel`] channels. This is a direct rendering of the
//! paper's execution model (§III): components are "asynchronously
//! executed, stateless stream-processing components"; merging of
//! parallel branches is nondeterministic in arrival order; serial
//! replication unrolls lazily "into copies of its operand"; bounded
//! channels provide the throttling the coordination layer is responsible
//! for.
//!
//! End-of-stream is channel disconnection: a component terminates when
//! its input disconnects, and closes its output by dropping the sender.
//! Collectors (the merge side of `|` and `!`) finish when *all* clones
//! of the output sender have been dropped, which happens exactly when
//! every branch has terminated.

use crate::trace::Trace;
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use snet_core::fault::{self, DeadLetter, FailurePolicy, StepVerdict};
use snet_core::semantics::{self, MismatchPolicy};
use snet_core::{ChainRunner, ChainTally, NetSpec, Record, SnetError, SyncOutcome};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long blocked handle operations sleep between checks of the
/// abort flag and deadline.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Dead-letter channel capacity multiplier over `channel_capacity`:
/// the stream is bounded (workers never block on it), sized so a
/// consumer draining at output cadence never sees overflow.
const DEAD_CAPACITY_FACTOR: usize = 16;

/// Engine tuning knobs (shared by the threaded and scheduled engines;
/// each engine reads the knobs that apply to it).
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Capacity of every inter-component channel. Bounded channels give
    /// backpressure ("throttling" in the paper's list of coordination
    /// concerns); 0 would mean rendezvous, which deadlocks multi-output
    /// filters feeding themselves through a star, so the minimum is 1.
    /// The scheduled engine derives its mailbox high-water mark from
    /// this value.
    pub channel_capacity: usize,
    /// What to do when a record reaches a component it cannot match.
    pub mismatch: MismatchPolicy,
    /// Worker threads in the scheduled engine's pool
    /// ([`crate::sched::SchedNet`]); the threaded engine ignores it
    /// (its thread count is the component count).
    pub workers: usize,
    /// Records coalesced per mailbox hand-off in the scheduled engine:
    /// a task's activation buffers up to this many records per output
    /// edge and pushes them downstream with a single lock acquisition
    /// and a single consumer wake; input mailboxes are drained at the
    /// same granularity. `1` restores record-at-a-time hand-off
    /// (bit-identical scheduling to the pre-batching engine). The
    /// threaded engine hands off per record regardless, though
    /// multi-record component outputs go through the channel's batched
    /// `send_iter`. Default 32, tuned on the serial-pipeline benchmark
    /// (see `BENCH_batched_handoff.json`).
    pub batch: usize,
    /// Engine-wide failure policy; individual boxes may override it
    /// via [`snet_core::boxdef::BoxDef::with_policy`]. Default
    /// [`FailurePolicy::FailFast`] (the historical behavior).
    pub policy: FailurePolicy,
    /// Wall-clock budget for a run, measured from [`Net::start`] /
    /// [`crate::SchedNet::start`]. On expiry the run aborts at the next
    /// preemption point and reports [`SnetError::DeadlineExceeded`];
    /// partial outputs already emitted remain retrievable. `None`
    /// (default) disables the check entirely.
    pub deadline: Option<Duration>,
    /// Fuse maximal static SISO chains of boxes/filters into single
    /// components ([`snet_core::fusion::fuse`]) before instantiating
    /// the network. Default `true`: fusion is observationally
    /// equivalent (same output multiset, traces, and fault
    /// attribution — see the `fusion_equivalence` property suite) and
    /// strictly cheaper on deep pipelines. Set `false` to run the
    /// topology exactly as written (one task/thread per component),
    /// e.g. to measure hand-off cost itself.
    pub fuse: bool,
    /// Pin each scheduled-engine pool worker to a CPU core (worker `i`
    /// → core `i % available cores`, Linux only, best-effort). Keeps a
    /// fused task's record batches on the same cache hierarchy across
    /// activations. Default `false` — shared CI runners and
    /// container-restricted CPU sets make pinning a pessimization
    /// there; opt in for dedicated hardware. The threaded engine
    /// ignores it.
    pub pin_workers: bool,
    /// Run the static analyzer (`snet-analyze`) over the topology at
    /// construction time as a pre-flight check. The check is sound for
    /// *any* input stream (the entry type is unknown), so it only
    /// rejects structural defects — today that is placement targets out
    /// of range (`SNA006`, needs [`EngineConfig::nodes`]). A rejected
    /// net reports [`SnetError::Analysis`] from `run_batch*` and fails
    /// `start()`ed runs immediately. Default `true`; set `false` to
    /// opt out. For the full shape-aware analysis, declare the entry
    /// type via `with_entry_type`.
    pub analyze: bool,
    /// Number of compute nodes available to the placement combinators
    /// (`@ node`, `!@ tag`), used only by the pre-flight analyzer's
    /// range check. `None` (default) disables the check — the local
    /// engines ignore placement, so any node index runs fine here.
    pub nodes: Option<u32>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            channel_capacity: 64,
            mismatch: MismatchPolicy::Forward,
            workers: default_workers(),
            batch: 32,
            policy: FailurePolicy::FailFast,
            deadline: None,
            fuse: true,
            pin_workers: false,
            analyze: true,
            nodes: None,
        }
    }
}

/// The analyzer configuration induced by an engine configuration.
pub(crate) fn analyze_cfg(config: &EngineConfig) -> snet_analyze::AnalyzeConfig {
    snet_analyze::AnalyzeConfig {
        nodes: config.nodes,
        ..snet_analyze::AnalyzeConfig::default()
    }
}

/// Pre-flight diagnostics for `spec` under `config`: the error-severity
/// findings of the open-entry analysis, or nothing when the check is
/// opted out.
pub(crate) fn preflight(spec: &NetSpec, config: &EngineConfig) -> Vec<snet_core::Diagnostic> {
    if !config.analyze {
        return Vec::new();
    }
    snet_analyze::analyze_open(spec, &analyze_cfg(config))
        .errors()
        .cloned()
        .collect()
}

/// Default scheduled-engine pool size: the `SNET_WORKERS` environment
/// variable when set to a positive integer (the CI constrained lane
/// uses `SNET_WORKERS=1` under `taskset -c 0`), else 4. Read once; a
/// later env change does not move the default mid-process.
fn default_workers() -> usize {
    static WORKERS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("SNET_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(4)
    })
}

/// A compiled network ready to execute records.
///
/// `Net` is reusable: every [`Net::start`] (or [`Net::run_batch`]) call
/// instantiates a fresh set of component threads. Synchrocell and
/// replication state never leaks between runs.
pub struct Net {
    spec: NetSpec,
    /// What actually runs: `spec` with SISO chains fused (or a clone of
    /// `spec` when [`EngineConfig::fuse`] is off).
    plan: NetSpec,
    config: EngineConfig,
    /// Error-severity findings of the construction-time pre-flight
    /// analysis (empty when clean or when [`EngineConfig::analyze`] is
    /// off). A non-empty list fails every run with
    /// [`SnetError::Analysis`].
    preflight: Vec<snet_core::Diagnostic>,
}

impl Net {
    /// Wraps a topology with default configuration.
    pub fn new(spec: NetSpec) -> Net {
        Net::with_config(spec, EngineConfig::default())
    }

    /// Wraps a topology with explicit configuration.
    pub fn with_config(spec: NetSpec, config: EngineConfig) -> Net {
        let plan = if config.fuse {
            snet_core::fuse(&spec)
        } else {
            spec.clone()
        };
        let preflight = preflight(&spec, &config);
        Net {
            spec,
            plan,
            config,
            preflight,
        }
    }

    /// Wraps a topology with a declared (closed) entry type: every
    /// record fed to the net is promised to carry exactly the labels of
    /// one of `entry`'s variants. This unlocks the full shape-aware
    /// analysis — the net is rejected up front ([`SnetError::Analysis`])
    /// on any error-severity finding (unroutable records, splits missing
    /// their index tag, stranded synchrocells, unbound filter labels,
    /// placement out of range) — and the analyzer's exact-match proofs
    /// annotate the execution plan so fused boxes skip their per-record
    /// type checks ([`snet_core::boxdef::BoxDef::exact_input`]).
    pub fn with_entry_type(
        spec: NetSpec,
        entry: &snet_core::RType,
        config: EngineConfig,
    ) -> Result<Net, SnetError> {
        let mut net = Net::with_config(spec, config);
        let (analysis, _annotated) =
            snet_analyze::analyze_and_annotate(&mut net.plan, entry, &analyze_cfg(&config));
        let errors: Vec<_> = analysis.errors().cloned().collect();
        if !errors.is_empty() {
            return Err(SnetError::Analysis(errors));
        }
        net.preflight.clear();
        Ok(net)
    }

    /// The underlying topology.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// The pre-flight diagnostics this net was constructed with (empty
    /// when the analysis passed or was opted out).
    pub fn preflight_diagnostics(&self) -> &[snet_core::Diagnostic] {
        &self.preflight
    }

    /// Instantiates the network and returns a handle for streaming
    /// records in and out.
    pub fn start(&self) -> NetHandle {
        let cap = self.config.channel_capacity.max(1);
        // No component can divert under this configuration => a 1-slot
        // stub channel suffices (mirrors the scheduled engine).
        let dead_cap = if self.spec.diverts_under(self.config.policy) {
            cap * DEAD_CAPACITY_FACTOR
        } else {
            1
        };
        let (dead_tx, dead_rx) = bounded(dead_cap);
        let shared = Arc::new(Shared {
            threads: Mutex::new(Vec::new()),
            error: Mutex::new(None),
            aborted: AtomicBool::new(false),
            deadline_at: self.config.deadline.map(|d| Instant::now() + d),
            seq: AtomicU64::new(0),
            dead_tx,
            trace: Arc::new(Trace::new()),
            config: self.config,
        });
        let (in_tx, in_rx) = bounded(cap);
        let (out_tx, out_rx) = bounded(cap);
        if !self.preflight.is_empty() {
            // Pre-flight rejected the net: the run starts already
            // failed, components stop at their first preemption check,
            // and `finish()` reports the analysis error.
            shared.fail(SnetError::Analysis(self.preflight.clone()));
        }
        build(&self.plan, in_rx, out_tx, &shared);
        NetHandle {
            input: Mutex::new(Some(in_tx)),
            output: out_rx,
            dead: dead_rx,
            shared,
        }
    }

    /// Feeds a batch of records, closes the input, and collects the
    /// complete output stream.
    ///
    /// The batch is fed from a helper thread so that bounded channels
    /// cannot deadlock against the draining loop.
    pub fn run_batch(&self, records: Vec<Record>) -> Result<Vec<Record>, SnetError> {
        let (outs, _trace) = self.run_batch_traced(records)?;
        Ok(outs)
    }

    /// Like [`Net::run_batch`] but also returns the run's [`Trace`].
    pub fn run_batch_traced(
        &self,
        records: Vec<Record>,
    ) -> Result<(Vec<Record>, Arc<Trace>), SnetError> {
        let report = self.run_batch_report(records)?;
        Ok((report.outputs, report.trace))
    }

    /// Feeds a batch and returns the full [`crate::RunReport`]:
    /// outputs, diverted dead letters, and the run's trace. This is
    /// the driver to use with [`FailurePolicy::DeadLetter`], where
    /// dropped records are data, not errors.
    pub fn run_batch_report(&self, records: Vec<Record>) -> Result<crate::RunReport, SnetError> {
        if !self.preflight.is_empty() {
            return Err(SnetError::Analysis(self.preflight.clone()));
        }
        let handle = self.start();
        let feeder_tx = handle
            .input
            .lock()
            .take()
            .expect("fresh handle has an input");
        let feeder = std::thread::spawn(move || {
            // One batched send for the whole input: the feeder blocks in
            // `send_iter` whenever the entry channel fills. A send error
            // means the net tore down early (a component failed); the
            // error is recorded in `shared.error`.
            let _ = feeder_tx.send_iter(records);
        });
        let mut outputs = Vec::new();
        let mut dead_letters = Vec::new();
        // `recv` enforces the deadline while blocked; dead letters are
        // drained at the same cadence so the bounded dead stream never
        // overflows while the batch driver is in charge.
        loop {
            while let Some(dl) = handle.try_recv_dead_letter() {
                dead_letters.push(dl);
            }
            match handle.recv() {
                Some(rec) => outputs.push(rec),
                None => break,
            }
        }
        while let Some(dl) = handle.try_recv_dead_letter() {
            dead_letters.push(dl);
        }
        feeder.join().expect("feeder thread never panics");
        let trace = handle.trace_arc();
        handle.finish()?;
        Ok(crate::RunReport {
            outputs,
            dead_letters,
            trace,
        })
    }
}

/// A running network instance.
///
/// All methods take `&self` (the input side sits behind a mutex), so
/// one thread can feed the network while another drains it — the shape
/// the engine-generic [`crate::StreamHandle`] abstraction relies on.
pub struct NetHandle {
    input: Mutex<Option<Sender<Record>>>,
    output: Receiver<Record>,
    dead: Receiver<DeadLetter>,
    shared: Arc<Shared>,
}

impl NetHandle {
    /// A clone of the entry sender, if the input is still open. Cloned
    /// out of the `input` mutex so no caller ever blocks while holding
    /// it — a `send` stalled on channel backpressure must not lock out
    /// `try_send` (documented non-blocking) or `close_input`. The clone
    /// keeps the channel connected for the duration of an in-flight
    /// send that races `close_input`, which matches "close applies
    /// after already-submitted sends".
    fn entry_sender(&self) -> Option<Sender<Record>> {
        self.input.lock().clone()
    }

    /// Sends one record into the network, blocking while the bounded
    /// entry channel is full (ingress backpressure).
    pub fn send(&self, rec: Record) -> Result<(), SnetError> {
        match self.entry_sender() {
            Some(tx) => tx
                .send(rec)
                .map_err(|_| self.current_error("input channel disconnected")),
            None => Err(SnetError::Engine("input already closed".into())),
        }
    }

    /// Non-blocking send: hands the record back as
    /// [`crate::TrySendError::Full`] instead of blocking when the
    /// bounded entry channel is full.
    #[allow(clippy::result_large_err)] // Full carries the record back by design
    pub fn try_send(&self, rec: Record) -> Result<(), crate::TrySendError> {
        use crossbeam_channel::TrySendError as ChanTrySend;
        match self.entry_sender() {
            Some(tx) => match tx.try_send(rec) {
                Ok(()) => Ok(()),
                Err(ChanTrySend::Full(rec)) => Err(crate::TrySendError::Full(rec)),
                Err(ChanTrySend::Disconnected(_)) => Err(crate::TrySendError::Closed(
                    self.current_error("input channel disconnected"),
                )),
            },
            None => Err(crate::TrySendError::Closed(SnetError::Engine(
                "input already closed".into(),
            ))),
        }
    }

    /// Sends a pre-materialized batch through the bounded entry channel
    /// as one `send_iter`: one channel lock and one receiver wake per
    /// capacity window instead of per record, blocking for space like
    /// [`NetHandle::send`] (this is exactly the batch driver's feed
    /// path, exposed on the streaming handle).
    pub fn send_all(&self, records: Vec<Record>) -> Result<(), SnetError> {
        match self.entry_sender() {
            Some(tx) => tx
                .send_iter(records)
                .map_err(|_| self.current_error("input channel disconnected")),
            None => Err(SnetError::Engine("input already closed".into())),
        }
    }

    /// Closes the input stream (end-of-stream for the network).
    /// Idempotent.
    pub fn close_input(&self) {
        *self.input.lock() = None;
    }

    /// Cancels the run cooperatively: records [`SnetError::Cancelled`],
    /// raises the abort flag every component polls per record, and
    /// closes the input so the teardown cascade reaches every thread.
    /// Outputs already queued remain retrievable via
    /// [`NetHandle::recv`]; [`NetHandle::finish`] returns the error.
    /// Idempotent; a no-op if the run already failed or finished.
    pub fn cancel(&self) {
        self.shared.fail(SnetError::Cancelled);
        self.close_input();
    }

    /// Receives the next output record; `None` once the output stream
    /// has terminated. Checks the deadline and abort flag while
    /// blocked, so a stalled network cannot park the consumer past
    /// `EngineConfig::deadline`.
    pub fn recv(&self) -> Option<Record> {
        loop {
            match self.output.recv_timeout(POLL_INTERVAL) {
                Ok(rec) => return Some(rec),
                Err(RecvTimeoutError::Disconnected) => return None,
                Err(RecvTimeoutError::Timeout) => {
                    if self.shared.should_stop() {
                        // Aborted (cancel / failure / deadline): close
                        // the input so the cascade tears the net down,
                        // then keep draining what is already in flight
                        // until the channel disconnects.
                        self.close_input();
                    }
                }
            }
        }
    }

    /// Non-blocking receive: `None` when nothing is currently queued
    /// (including after termination — use [`NetHandle::recv`] to
    /// distinguish end-of-stream).
    pub fn try_recv(&self) -> Option<Record> {
        self.output.try_recv().ok()
    }

    /// The output stream receiver (for `select!`-style consumers).
    pub fn output(&self) -> &Receiver<Record> {
        &self.output
    }

    /// Non-blocking receive on the run's dead-letter stream. Only
    /// populated under [`FailurePolicy::DeadLetter`]; drain it while
    /// the run progresses — the stream is bounded and overflow fails
    /// the run.
    pub fn try_recv_dead_letter(&self) -> Option<DeadLetter> {
        self.dead.try_recv().ok()
    }

    /// The dead-letter receiver (for `select!`-style consumers).
    pub fn dead_letters(&self) -> &Receiver<DeadLetter> {
        &self.dead
    }

    /// Shared event counters of this run.
    pub fn trace(&self) -> &Trace {
        &self.shared.trace
    }

    /// Clonable handle to the run's counters.
    pub fn trace_arc(&self) -> Arc<Trace> {
        Arc::clone(&self.shared.trace)
    }

    /// Waits for every component thread to terminate and reports the
    /// first error raised during the run, if any.
    pub fn finish(self) -> Result<(), SnetError> {
        self.close_input();
        // Drain the output so upstream senders cannot block forever;
        // `recv` keeps enforcing the deadline while blocked.
        while self.recv().is_some() {}
        loop {
            let handle = self.shared.threads.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        match self.shared.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn current_error(&self, fallback: &str) -> SnetError {
        self.shared
            .error
            .lock()
            .clone()
            .unwrap_or_else(|| SnetError::Engine(fallback.into()))
    }
}

struct Shared {
    threads: Mutex<Vec<JoinHandle<()>>>,
    error: Mutex<Option<SnetError>>,
    /// Set by the first `fail` (including cancellation and deadline
    /// expiry); components poll it per record and stop cooperatively.
    aborted: AtomicBool,
    /// Absolute deadline, fixed at `start()`.
    deadline_at: Option<Instant>,
    /// Dead-letter sequence-number allocator for this run.
    seq: AtomicU64,
    /// Producer side of the bounded dead-letter stream.
    dead_tx: Sender<DeadLetter>,
    trace: Arc<Trace>,
    config: EngineConfig,
}

impl Shared {
    fn spawn<F: FnOnce() + Send + 'static>(self: &Arc<Self>, name: &str, f: F) {
        let handle = std::thread::Builder::new()
            .name(format!("snet-{name}"))
            .spawn(f)
            .expect("thread spawn");
        self.threads.lock().push(handle);
    }

    fn fail(&self, e: SnetError) {
        let mut slot = self.error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.aborted.store(true, Ordering::Relaxed);
    }

    /// Per-record preemption check: true once the run is aborted or
    /// past its deadline (recording `DeadlineExceeded` on first
    /// detection). With no deadline configured this is one relaxed
    /// atomic load.
    fn should_stop(&self) -> bool {
        if self.aborted.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                self.fail(SnetError::DeadlineExceeded);
                return true;
            }
        }
        false
    }

    /// Routes a diverted record to the dead-letter stream. Never
    /// blocks: the stream is bounded, and overflow (a consumer not
    /// draining) is a fatal engine error rather than a stall. Returns
    /// false when the component should stop.
    fn divert(&self, dl: Box<DeadLetter>) -> bool {
        use crossbeam_channel::TrySendError as ChanTrySend;
        Trace::add(&self.trace.dead_letters, 1);
        match self.dead_tx.try_send(*dl) {
            Ok(()) => true,
            Err(ChanTrySend::Full(dl)) => {
                self.fail(SnetError::Engine(format!(
                    "dead-letter channel overflow (capacity {}); last report: {}",
                    self.config.channel_capacity.max(1) * DEAD_CAPACITY_FACTOR,
                    dl.report
                )));
                false
            }
            // Receiver dropped: the caller stopped listening; letters
            // are discarded but the run keeps its contract.
            Err(ChanTrySend::Disconnected(_)) => true,
        }
    }

    fn chan(&self) -> (Sender<Record>, Receiver<Record>) {
        bounded(self.config.channel_capacity.max(1))
    }
}

/// Emits records downstream; a send failure means downstream tore down
/// (an error was recorded elsewhere) and the component should stop.
/// Multi-record outputs are handed to the channel as one batch
/// (`send_iter`): one lock window and one receiver wake per output set
/// instead of one per record.
fn send_all(tx: &Sender<Record>, records: impl IntoIterator<Item = Record>) -> bool {
    tx.send_iter(records).is_ok()
}

/// Recursively instantiates `spec` between `input` and `output`.
fn build(spec: &NetSpec, input: Receiver<Record>, output: Sender<Record>, sh: &Arc<Shared>) {
    match spec {
        NetSpec::Box(def) => {
            let def = def.clone();
            let sh2 = Arc::clone(sh);
            sh.spawn(&format!("box-{}", def.sig.name), move || {
                let policy = def.effective_policy(sh2.config.policy);
                for rec in input.iter() {
                    if sh2.should_stop() {
                        break;
                    }
                    // Box functions are user code: `policy_step`
                    // contains panics and applies the failure policy.
                    let verdict = fault::policy_step(policy, &def.sig.name, &sh2.seq, rec, |r| {
                        semantics::box_step(&def, r, sh2.config.mismatch)
                    });
                    match verdict {
                        StepVerdict::Out { step, attempts } => {
                            if attempts > 1 {
                                Trace::add(&sh2.trace.retries, u64::from(attempts - 1));
                            }
                            if step.matched {
                                sh2.trace.count_box(step.work);
                            } else {
                                Trace::add(&sh2.trace.passthroughs, 1);
                            }
                            if !send_all(&output, step.records) {
                                break;
                            }
                        }
                        StepVerdict::Dead(dl) => {
                            if !sh2.divert(dl) {
                                break;
                            }
                        }
                        StepVerdict::Fatal(e) => {
                            sh2.fail(e);
                            break;
                        }
                    }
                }
            });
        }
        NetSpec::Filter(f) => {
            let f = f.clone();
            let sh2 = Arc::clone(sh);
            sh.spawn("filter", move || {
                // Filters follow the engine policy; their errors are
                // deterministic, so Retry degenerates to FailFast
                // inside `policy_step` (only `BoxFailure` retries).
                let policy = sh2.config.policy;
                for rec in input.iter() {
                    if sh2.should_stop() {
                        break;
                    }
                    let verdict = fault::policy_step(policy, "filter", &sh2.seq, rec, |r| {
                        semantics::filter_step(&f, r, sh2.config.mismatch)
                    });
                    match verdict {
                        StepVerdict::Out { step, .. } => {
                            if step.matched {
                                Trace::add(&sh2.trace.filter_records, 1);
                            } else {
                                Trace::add(&sh2.trace.passthroughs, 1);
                            }
                            if !send_all(&output, step.records) {
                                break;
                            }
                        }
                        StepVerdict::Dead(dl) => {
                            if !sh2.divert(dl) {
                                break;
                            }
                        }
                        StepVerdict::Fatal(e) => {
                            sh2.fail(e);
                            break;
                        }
                    }
                }
            });
        }
        NetSpec::FusedChain { stages } => {
            // One thread for the whole chain: records traverse every
            // stage in-thread, with no channel between stages. Fault
            // attribution stays per stage inside `ChainRunner::step`.
            let stages = stages.clone();
            let sh2 = Arc::clone(sh);
            sh.spawn("fused-chain", move || {
                let mut runner = ChainRunner::new();
                let mut outs = Vec::new();
                for rec in input.iter() {
                    if sh2.should_stop() {
                        break;
                    }
                    let mut tally = ChainTally::default();
                    let res = runner.step(
                        &stages,
                        sh2.config.policy,
                        sh2.config.mismatch,
                        &sh2.seq,
                        rec,
                        &mut tally,
                        &mut outs,
                        &mut |dl| {
                            if sh2.divert(dl) {
                                Ok(())
                            } else {
                                // Overflow already recorded by `divert`;
                                // this error just unwinds the chain
                                // (first recorded error wins).
                                Err(SnetError::Engine("dead-letter overflow".into()))
                            }
                        },
                    );
                    sh2.trace.count_chain(&tally);
                    match res {
                        Ok(()) => {
                            if !send_all(&output, std::mem::take(&mut outs)) {
                                break;
                            }
                        }
                        Err(e) => {
                            sh2.fail(e);
                            break;
                        }
                    }
                }
            });
        }
        NetSpec::Sync(spec) => {
            let spec = spec.clone();
            let sh2 = Arc::clone(sh);
            sh.spawn("sync", move || {
                let mut state = spec.new_state();
                for rec in input.iter() {
                    if sh2.should_stop() {
                        break;
                    }
                    let out = match state.push(&spec, rec) {
                        SyncOutcome::Stored => {
                            Trace::add(&sh2.trace.sync_stores, 1);
                            continue;
                        }
                        SyncOutcome::Fired(m) => {
                            Trace::add(&sh2.trace.sync_fires, 1);
                            m
                        }
                        SyncOutcome::Passed(r) => r,
                    };
                    if output.send(out).is_err() {
                        break;
                    }
                }
                let stranded = state.pending().count() as u64;
                if stranded > 0 {
                    Trace::add(&sh2.trace.sync_stranded, stranded);
                }
            });
        }
        NetSpec::Serial(a, b) => {
            let (mid_tx, mid_rx) = sh.chan();
            build(a, input, mid_tx, sh);
            build(b, mid_rx, output, sh);
        }
        NetSpec::Parallel { branches, .. } => {
            // One bounded channel per branch; every branch writes to a
            // clone of `output`, so the merge is arrival-order — the
            // paper's nondeterministic merger.
            let mut branch_txs = Vec::with_capacity(branches.len());
            let mut patterns = Vec::with_capacity(branches.len());
            for branch in branches {
                let (tx, rx) = sh.chan();
                build(branch, rx, output.clone(), sh);
                branch_txs.push(tx);
                patterns.push(branch.input_patterns());
            }
            let sh2 = Arc::clone(sh);
            sh.spawn("par-dispatch", move || {
                for rec in input.iter() {
                    if sh2.should_stop() {
                        break;
                    }
                    let winners = semantics::matching_branches(&patterns, &rec);
                    match winners.first() {
                        Some(&i) => {
                            Trace::add(&sh2.trace.dispatched, 1);
                            if branch_txs[i].send(rec).is_err() {
                                break;
                            }
                        }
                        None => match sh2.config.mismatch {
                            MismatchPolicy::Forward => {
                                Trace::add(&sh2.trace.passthroughs, 1);
                                if output.send(rec).is_err() {
                                    break;
                                }
                            }
                            MismatchPolicy::Error => {
                                let cause = SnetError::TypeMismatch {
                                    expected: "any parallel branch".into(),
                                    got: format!("{rec:?}"),
                                };
                                match fault::reject(
                                    sh2.config.policy,
                                    "par-dispatch",
                                    &sh2.seq,
                                    rec,
                                    cause,
                                ) {
                                    Ok(dl) => {
                                        if !sh2.divert(dl) {
                                            break;
                                        }
                                    }
                                    Err(e) => {
                                        sh2.fail(e);
                                        break;
                                    }
                                }
                            }
                        },
                    }
                }
                // Dropping branch_txs and output here closes every branch.
            });
        }
        NetSpec::Star { body, exit, .. } => {
            build_star_tap(body, exit.clone(), input, output, sh);
        }
        NetSpec::Split { body, tag, .. } => {
            // The threaded engine ignores placement; `snet-dist` honours
            // it on the simulated cluster.
            let body = (**body).clone();
            let tag = *tag;
            let sh2 = Arc::clone(sh);
            sh.spawn("split-dispatch", move || {
                let mut replicas: HashMap<i64, Sender<Record>> = HashMap::new();
                for rec in input.iter() {
                    if sh2.should_stop() {
                        break;
                    }
                    let Some(value) = rec.tag(tag) else {
                        match fault::reject(
                            sh2.config.policy,
                            "split-dispatch",
                            &sh2.seq,
                            rec,
                            SnetError::MissingTag(tag),
                        ) {
                            Ok(dl) => {
                                if sh2.divert(dl) {
                                    continue;
                                }
                            }
                            Err(e) => sh2.fail(e),
                        }
                        break;
                    };
                    let tx = replicas.entry(value).or_insert_with(|| {
                        Trace::add(&sh2.trace.split_replicas, 1);
                        let (tx, rx) = sh2.chan();
                        build(&body, rx, output.clone(), &sh2);
                        tx
                    });
                    Trace::add(&sh2.trace.dispatched, 1);
                    if tx.send(rec).is_err() {
                        break;
                    }
                }
            });
        }
        NetSpec::At { body, .. } | NetSpec::Named { body, .. } => {
            build(body, input, output, sh);
        }
    }
}

/// One tap of a serial-replication star.
///
/// The tap inspects every record *before* the replica (§III: "the chain
/// is tapped before every replica"): matching records exit to `output`;
/// the rest enter a lazily instantiated replica of `body` whose output
/// stream feeds the next tap.
fn build_star_tap(
    body: &NetSpec,
    exit: snet_core::Pattern,
    input: Receiver<Record>,
    output: Sender<Record>,
    sh: &Arc<Shared>,
) {
    let body = body.clone();
    let sh2 = Arc::clone(sh);
    sh.spawn("star-tap", move || {
        let mut into_body: Option<Sender<Record>> = None;
        for rec in input.iter() {
            if sh2.should_stop() {
                break;
            }
            if exit.matches(&rec) {
                if output.send(rec).is_err() {
                    break;
                }
                continue;
            }
            let tx = into_body.get_or_insert_with(|| {
                Trace::add(&sh2.trace.star_unfoldings, 1);
                let (body_tx, body_rx) = sh2.chan();
                let (next_tx, next_rx) = sh2.chan();
                build(&body, body_rx, next_tx, &sh2);
                build_star_tap(&body, exit.clone(), next_rx, output.clone(), &sh2);
                body_tx
            });
            if tx.send(rec).is_err() {
                break;
            }
        }
    });
}

/// Convenience: total abstract work recorded by a trace.
pub fn traced_ops(trace: &Trace) -> u64 {
    trace.box_ops.load(Ordering::Relaxed)
}

/// Convenience: reads any trace counter.
pub fn counter(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
    use snet_core::{Pattern, Value, Variant};

    fn int_box(name: &str, input: &str, output: &str, f: fn(i64) -> i64) -> NetSpec {
        let out_label = output.to_owned();
        NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse(name, &[input], &[&[output]]),
            move |r| {
                let x = r
                    .fields()
                    .next()
                    .and_then(|(_, v)| v.as_int())
                    .ok_or_else(|| SnetError::Engine("expected int field".into()))?;
                Ok(BoxOutput::one(
                    Record::new().with_field(out_label.as_str(), Value::Int(f(x))),
                    Work::ops(1),
                ))
            },
        ))
    }

    fn ints(records: &[Record], label: &str) -> Vec<i64> {
        let mut v: Vec<i64> = records
            .iter()
            .filter_map(|r| r.field(label).and_then(|x| x.as_int()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn single_box_pipeline() {
        let net = Net::new(int_box("double", "x", "x", |x| 2 * x));
        let outs = net
            .run_batch(
                (0..10)
                    .map(|i| Record::new().with_field("x", Value::Int(i)))
                    .collect(),
            )
            .unwrap();
        assert_eq!(ints(&outs, "x"), (0..10).map(|i| 2 * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_composes() {
        let net = Net::new(NetSpec::serial(
            int_box("inc", "x", "x", |x| x + 1),
            int_box("sq", "x", "x", |x| x * x),
        ));
        let outs = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(3))])
            .unwrap();
        assert_eq!(ints(&outs, "x"), vec![16]);
    }

    #[test]
    fn parallel_routes_by_best_match() {
        // Branch 0 expects {a}, branch 1 expects {b}.
        let net = Net::new(NetSpec::parallel(vec![
            int_box("fa", "a", "ra", |x| x + 100),
            int_box("fb", "b", "rb", |x| x + 200),
        ]));
        let outs = net
            .run_batch(vec![
                Record::new().with_field("a", Value::Int(1)),
                Record::new().with_field("b", Value::Int(2)),
                Record::new().with_field("a", Value::Int(3)),
            ])
            .unwrap();
        assert_eq!(ints(&outs, "ra").len(), 2);
        assert_eq!(ints(&outs, "rb"), vec![202]);
    }

    #[test]
    fn star_unrolls_until_exit() {
        // ( [ {<n>} -> {<n = n - 1>} ] ) * {<n> == 0}: decrement until zero.
        let dec = NetSpec::Filter(snet_core::FilterSpec::new(
            Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
            vec![snet_core::filter::OutputTemplate::empty().set_tag(
                "n",
                snet_core::TagExpr::bin(
                    snet_core::BinOp::Sub,
                    snet_core::TagExpr::tag("n"),
                    snet_core::TagExpr::Const(1),
                ),
            )],
        ));
        let exit = Pattern::guarded(
            Variant::empty(),
            snet_core::TagExpr::bin(
                snet_core::BinOp::Eq,
                snet_core::TagExpr::tag("n"),
                snet_core::TagExpr::Const(0),
            ),
        );
        let net = Net::new(NetSpec::star(dec, exit));
        let (outs, trace) = net
            .run_batch_traced(vec![Record::new().with_tag("n", 5)])
            .unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].tag("n"), Some(0));
        assert_eq!(counter(&trace.star_unfoldings), 5);
    }

    #[test]
    fn split_creates_replica_per_tag_value() {
        let net = Net::new(NetSpec::split(int_box("id", "x", "x", |x| x), "k"));
        let recs: Vec<Record> = (0..12)
            .map(|i| {
                Record::new()
                    .with_field("x", Value::Int(i))
                    .with_tag("k", i % 3)
            })
            .collect();
        let (outs, trace) = net.run_batch_traced(recs).unwrap();
        assert_eq!(outs.len(), 12);
        assert_eq!(counter(&trace.split_replicas), 3);
    }

    #[test]
    fn split_without_tag_is_an_error() {
        let net = Net::new(NetSpec::split(int_box("id", "x", "x", |x| x), "k"));
        let err = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(1))])
            .unwrap_err();
        assert_eq!(err, SnetError::MissingTag(snet_core::Label::new("k")));
    }

    #[test]
    fn sync_joins_in_stream() {
        let cell = NetSpec::Sync(snet_core::SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = Net::new(cell);
        let outs = net
            .run_batch(vec![
                Record::new().with_field("a", Value::Int(1)),
                Record::new().with_field("b", Value::Int(2)),
            ])
            .unwrap();
        assert_eq!(outs.len(), 1);
        assert!(outs[0].has_field("a") && outs[0].has_field("b"));
    }

    #[test]
    fn stranded_sync_records_are_counted() {
        let cell = NetSpec::Sync(snet_core::SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = Net::new(cell);
        let (outs, trace) = net
            .run_batch_traced(vec![Record::new().with_field("a", Value::Int(1))])
            .unwrap();
        assert!(outs.is_empty());
        assert_eq!(counter(&trace.sync_stranded), 1);
    }

    #[test]
    fn box_error_propagates() {
        let bad = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("bad", &["x"], &[&["y"]]),
            |_| Err(SnetError::Engine("deliberate".into())),
        ));
        let net = Net::new(bad);
        let err = net
            .run_batch(vec![Record::new().with_field("x", Value::Int(1))])
            .unwrap_err();
        assert!(matches!(err, SnetError::BoxFailure { .. }), "{err}");
    }

    #[test]
    fn panicking_box_is_reported_not_swallowed() {
        let bomb = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("bomb", &["x"], &[&["y"]]),
            |r| {
                let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
                if x == 2 {
                    panic!("boom at {x}");
                }
                Ok(BoxOutput::one(r.clone(), Work::ZERO))
            },
        ));
        let net = Net::new(bomb);
        let err = net
            .run_batch(
                (0..5)
                    .map(|i| Record::new().with_field("x", Value::Int(i)))
                    .collect(),
            )
            .unwrap_err();
        match err {
            SnetError::BoxFailure { name, cause } => {
                assert_eq!(name, "bomb");
                assert!(cause.contains("boom at 2"), "{cause}");
            }
            other => panic!("expected box failure, got {other:?}"),
        }
    }

    #[test]
    fn strict_mismatch_policy_errors() {
        let net = Net::with_config(
            int_box("f", "x", "y", |x| x),
            EngineConfig {
                mismatch: MismatchPolicy::Error,
                ..EngineConfig::default()
            },
        );
        let err = net
            .run_batch(vec![Record::new().with_field("other", Value::Int(1))])
            .unwrap_err();
        assert!(matches!(err, SnetError::TypeMismatch { .. }));
    }

    #[test]
    fn streaming_interface_overlaps() {
        let net = Net::new(int_box("inc", "x", "x", |x| x + 1));
        let h = net.start();
        h.send(Record::new().with_field("x", Value::Int(1)))
            .unwrap();
        let first = h.recv().expect("one output while input still open");
        assert_eq!(first.field("x").unwrap().as_int(), Some(2));
        h.send(Record::new().with_field("x", Value::Int(5)))
            .unwrap();
        h.close_input();
        let second = h.recv().expect("second output");
        assert_eq!(second.field("x").unwrap().as_int(), Some(6));
        assert!(h.recv().is_none());
        h.finish().unwrap();
    }

    #[test]
    fn net_is_reusable_with_fresh_state() {
        // A synchrocell net must not remember fires across runs.
        let cell = NetSpec::Sync(snet_core::SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let net = Net::new(cell);
        for _ in 0..2 {
            let outs = net
                .run_batch(vec![
                    Record::new().with_field("a", Value::Int(1)),
                    Record::new().with_field("b", Value::Int(2)),
                ])
                .unwrap();
            assert_eq!(outs.len(), 1, "cell must fire in every fresh run");
        }
    }

    #[test]
    fn deep_pipeline_respects_backpressure() {
        // Tiny channels + many records: exercises the bounded-channel
        // path without deadlocking.
        let stages: Vec<NetSpec> = (0..8)
            .map(|_| int_box("inc", "x", "x", |x| x + 1))
            .collect();
        let net = Net::with_config(
            NetSpec::pipeline(stages),
            EngineConfig {
                channel_capacity: 1,
                ..EngineConfig::default()
            },
        );
        let outs = net
            .run_batch(
                (0..200)
                    .map(|i| Record::new().with_field("x", Value::Int(i)))
                    .collect(),
            )
            .unwrap();
        assert_eq!(outs.len(), 200);
        assert_eq!(ints(&outs, "x"), (8..208).collect::<Vec<_>>());
    }
}
