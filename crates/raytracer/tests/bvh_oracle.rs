//! Property tests: the BVH is an exact accelerator.
//!
//! For random shape soups and random rays, BVH traversal must agree
//! with the brute-force oracle on the hit shape and parameter, and the
//! any-hit (occlusion) query must agree with "some hit exists".

use proptest::prelude::*;
use snet_raytracer::{intersect_brute, v3, Bvh, Counters, Ray, Shape, Vec3};

fn arb_vec(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| v3(x, y, z))
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (arb_vec(20.0), 0.2f64..3.0).prop_map(|(center, radius)| Shape::Sphere { center, radius }),
        (arb_vec(20.0), arb_vec(20.0), arb_vec(20.0)).prop_filter_map(
            "degenerate triangle",
            |(a, b, c)| {
                let area2 = (b - a).cross(c - a).length();
                (area2 > 1e-6).then_some(Shape::Triangle { a, b, c })
            }
        ),
    ]
}

fn arb_ray() -> impl Strategy<Value = Ray> {
    (arb_vec(30.0), arb_vec(1.0)).prop_filter_map("zero direction", |(o, d)| {
        (d.length() > 1e-3).then(|| Ray::new(o, d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn bvh_equals_brute_force(
        shapes in prop::collection::vec(arb_shape(), 0..60),
        rays in prop::collection::vec(arb_ray(), 1..20),
    ) {
        let bvh = Bvh::build(&shapes);
        for ray in &rays {
            let mut cb = Counters::default();
            let mut cv = Counters::default();
            let brute = intersect_brute(&shapes, ray, 1e-6, f64::INFINITY, &mut cb);
            let fast = bvh.intersect(&shapes, ray, 1e-6, f64::INFINITY, &mut cv);
            match (brute, fast) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    // Overlapping shapes can tie on t; accept either
                    // winner when the parameters are equal.
                    prop_assert!(
                        (a.t - b.t).abs() < 1e-9,
                        "t mismatch: brute {} vs bvh {}", a.t, b.t
                    );
                }
                other => {
                    return Err(TestCaseError::fail(format!("hit disagreement: {other:?}")));
                }
            }
        }
    }

    #[test]
    fn occlusion_equals_hit_existence(
        shapes in prop::collection::vec(arb_shape(), 0..40),
        ray in arb_ray(),
        t_max in 1.0f64..100.0,
    ) {
        let bvh = Bvh::build(&shapes);
        let mut c = Counters::default();
        let hit = bvh.intersect(&shapes, &ray, 1e-6, t_max, &mut c).is_some();
        let occ = bvh.occluded(&shapes, &ray, 1e-6, t_max, &mut c);
        prop_assert_eq!(hit, occ);
    }

    #[test]
    fn insertion_order_does_not_change_results(
        shapes in prop::collection::vec(arb_shape(), 2..30),
        ray in arb_ray(),
    ) {
        let forward = Bvh::build(&shapes);
        let mut rev: Vec<Shape> = shapes.clone();
        rev.reverse();
        let backward = Bvh::build(&rev);
        let mut c1 = Counters::default();
        let mut c2 = Counters::default();
        let a = forward.intersect(&shapes, &ray, 1e-6, f64::INFINITY, &mut c1);
        let b = backward.intersect(&rev, &ray, 1e-6, f64::INFINITY, &mut c2);
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => prop_assert!((x.t - y.t).abs() < 1e-9),
            other => return Err(TestCaseError::fail(format!("order dependence: {other:?}"))),
        }
    }
}
