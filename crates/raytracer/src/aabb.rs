//! Axis-aligned bounding boxes for the BVH.

use crate::ray::Ray;
use crate::vec3::{v3, Vec3};

/// An axis-aligned box `[min, max]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// The empty box (union identity).
    pub fn empty() -> Aabb {
        Aabb {
            min: v3(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            max: v3(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Box spanning two corner points (any orientation).
    pub fn from_corners(a: Vec3, b: Vec3) -> Aabb {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Smallest box containing both inputs.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows to contain a point.
    pub fn extend(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Surface area — the cost heuristic of Goldsmith & Salmon's
    /// automatic hierarchy construction \[6\]: the probability a random
    /// ray hits a convex volume is proportional to its surface area.
    pub fn surface_area(&self) -> f64 {
        if self.min.x > self.max.x {
            return 0.0; // empty
        }
        let d = self.max - self.min;
        2.0 * (d.x * d.y + d.y * d.z + d.z * d.x)
    }

    /// Slab test: does `ray` intersect this box within `(t_min, t_max)`?
    pub fn hit(&self, ray: &Ray, t_min: f64, t_max: f64) -> bool {
        let mut t0 = t_min;
        let mut t1 = t_max;
        for axis in 0..3 {
            let (lo, hi, o, d) = match axis {
                0 => (self.min.x, self.max.x, ray.origin.x, ray.dir.x),
                1 => (self.min.y, self.max.y, ray.origin.y, ray.dir.y),
                _ => (self.min.z, self.max.z, ray.origin.z, ray.dir.z),
            };
            let inv = 1.0 / d;
            let (mut near, mut far) = ((lo - o) * inv, (hi - o) * inv);
            if inv < 0.0 {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t1 < t0 {
                return false;
            }
        }
        true
    }

    /// Center point (used by construction heuristics).
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::from_corners(v3(0.0, 0.0, 0.0), v3(1.0, 1.0, 1.0))
    }

    #[test]
    fn union_and_extend() {
        let a = unit();
        let b = Aabb::from_corners(v3(2.0, -1.0, 0.5), v3(3.0, 0.5, 0.75));
        let u = a.union(&b);
        assert_eq!(u.min, v3(0.0, -1.0, 0.0));
        assert_eq!(u.max, v3(3.0, 1.0, 1.0));
        let mut c = Aabb::empty();
        c.extend(v3(1.0, 2.0, 3.0));
        c.extend(v3(-1.0, 0.0, 0.0));
        assert_eq!(c.min, v3(-1.0, 0.0, 0.0));
        assert_eq!(c.max, v3(1.0, 2.0, 3.0));
    }

    #[test]
    fn surface_area_of_unit_cube_is_six() {
        assert_eq!(unit().surface_area(), 6.0);
        assert_eq!(Aabb::empty().surface_area(), 0.0);
    }

    #[test]
    fn ray_hits_and_misses() {
        let b = unit();
        let toward = Ray::new(v3(0.5, 0.5, -2.0), v3(0.0, 0.0, 1.0));
        let away = Ray::new(v3(0.5, 0.5, -2.0), v3(0.0, 0.0, -1.0));
        let aside = Ray::new(v3(5.0, 5.0, -2.0), v3(0.0, 0.0, 1.0));
        assert!(b.hit(&toward, 0.0, f64::INFINITY));
        assert!(!b.hit(&away, 0.0, f64::INFINITY));
        assert!(!b.hit(&aside, 0.0, f64::INFINITY));
    }

    #[test]
    fn ray_starting_inside_hits() {
        let b = unit();
        let inside = Ray::new(v3(0.5, 0.5, 0.5), v3(1.0, 0.3, -0.2));
        assert!(b.hit(&inside, 0.0, f64::INFINITY));
    }

    #[test]
    fn t_range_limits_hits() {
        let b = unit();
        let r = Ray::new(v3(0.5, 0.5, -2.0), v3(0.0, 0.0, 1.0));
        assert!(!b.hit(&r, 0.0, 1.0)); // box starts at t = 2
        assert!(b.hit(&r, 0.0, 2.5));
        assert!(!b.hit(&r, 3.5, 10.0)); // box ends at t = 3
    }

    #[test]
    fn axis_parallel_ray_inside_slab() {
        let b = unit();
        // Parallel to x axis inside the box's y/z slabs.
        let r = Ray::new(v3(-3.0, 0.5, 0.5), v3(1.0, 0.0, 0.0));
        assert!(b.hit(&r, 0.0, f64::INFINITY));
        // Parallel but outside the y slab.
        let r = Ray::new(v3(-3.0, 2.0, 0.5), v3(1.0, 0.0, 0.0));
        assert!(!b.hit(&r, 0.0, f64::INFINITY));
    }
}
