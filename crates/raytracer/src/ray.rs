//! Rays and work accounting.

use crate::vec3::Vec3;

/// A half-line `origin + t * dir`, `t >= 0`. Directions are kept
/// normalized by construction.
#[derive(Clone, Copy, Debug)]
pub struct Ray {
    pub origin: Vec3,
    pub dir: Vec3,
}

impl Ray {
    /// Builds a ray, normalizing the direction.
    pub fn new(origin: Vec3, dir: Vec3) -> Ray {
        Ray {
            origin,
            dir: dir.normalized(),
        }
    }

    /// Point at parameter `t`.
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }
}

/// Deterministic work counters collected during rendering.
///
/// These are the tracer's "hardware-neutral instruction counts": the
/// cluster simulator converts them to virtual CPU seconds. Two renders
/// of the same section always produce identical counters, which is what
/// makes the benchmark figures reproducible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Primary rays generated.
    pub primary_rays: u64,
    /// Secondary rays (reflection + refraction).
    pub secondary_rays: u64,
    /// Shadow rays.
    pub shadow_rays: u64,
    /// Ray–AABB slab tests (BVH traversal).
    pub aabb_tests: u64,
    /// BVH nodes visited.
    pub bvh_nodes: u64,
    /// Ray–primitive intersection tests.
    pub prim_tests: u64,
    /// Shading evaluations.
    pub shades: u64,
}

/// Cost weights (abstract ops per event), roughly proportional to the
/// flop counts of the corresponding kernels.
pub mod cost {
    pub const PRIMARY_RAY: u64 = 10;
    pub const SECONDARY_RAY: u64 = 14;
    pub const SHADOW_RAY: u64 = 6;
    pub const AABB_TEST: u64 = 6;
    pub const BVH_NODE: u64 = 2;
    pub const PRIM_TEST: u64 = 16;
    pub const SHADE: u64 = 30;
}

impl Counters {
    /// Total abstract operations represented by these counters.
    pub fn ops(&self) -> u64 {
        self.primary_rays * cost::PRIMARY_RAY
            + self.secondary_rays * cost::SECONDARY_RAY
            + self.shadow_rays * cost::SHADOW_RAY
            + self.aabb_tests * cost::AABB_TEST
            + self.bvh_nodes * cost::BVH_NODE
            + self.prim_tests * cost::PRIM_TEST
            + self.shades * cost::SHADE
    }

    /// Component-wise accumulation.
    pub fn merge(&mut self, other: &Counters) {
        self.primary_rays += other.primary_rays;
        self.secondary_rays += other.secondary_rays;
        self.shadow_rays += other.shadow_rays;
        self.aabb_tests += other.aabb_tests;
        self.bvh_nodes += other.bvh_nodes;
        self.prim_tests += other.prim_tests;
        self.shades += other.shades;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;

    #[test]
    fn ray_direction_is_normalized() {
        let r = Ray::new(v3(0.0, 0.0, 0.0), v3(0.0, 3.0, 4.0));
        assert!((r.dir.length() - 1.0).abs() < 1e-12);
        assert_eq!(r.at(5.0), v3(0.0, 3.0, 4.0));
    }

    #[test]
    fn counters_merge_and_ops() {
        let mut a = Counters {
            primary_rays: 1,
            ..Counters::default()
        };
        let b = Counters {
            shades: 2,
            prim_tests: 3,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(
            a.ops(),
            cost::PRIMARY_RAY + 2 * cost::SHADE + 3 * cost::PRIM_TEST
        );
    }
}
