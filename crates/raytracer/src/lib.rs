//! # snet-raytracer — the paper's case-study application
//!
//! A BVH-accelerated Whitted ray tracer (§II of the paper):
//!
//! * [`Vec3`]/[`Ray`]/[`Aabb`] math kernels;
//! * [`Shape`] primitives (spheres, the floor, triangles) with
//!   [`Material`]s covering diffuse, mirror and glass surfaces;
//! * a Goldsmith–Salmon incremental-insertion [`Bvh`] whose
//!   construction and traversal follow the surface-area cost model of
//!   the paper's reference \[6\];
//! * the Whitted [`trace`]/[`render_section`] pipeline (Algorithms 1–2)
//!   with reflection, refraction and shadow rays up to `MAX_RAY_DEPTH`;
//! * seeded procedural [`Scene`]s with a *controlled imbalance knob*
//!   ([`ScenePreset`]) replacing the paper's unpublished 3000×3000
//!   scene;
//! * [`Image`]/[`Chunk`]/[`Section`] plumbing for the splitter/solver/
//!   merger decomposition.
//!
//! Everything is deterministic: the same scene and section always yield
//! byte-identical pixels *and* identical work [`Counters`] — the
//! property that lets the cluster simulator reproduce the paper's
//! figures exactly across runs.
//!
//! ```
//! use snet_raytracer::{Counters, Scene, ScenePreset, render_full};
//!
//! let scene = Scene::preset(ScenePreset::Balanced, 20, 42);
//! let mut work = Counters::default();
//! let image = render_full(&scene, 64, 64, &mut work);
//! assert_eq!(image.pixels.len(), 64 * 64);
//! assert!(work.ops() > 0);
//! ```

pub mod aabb;
pub mod bvh;
pub mod image;
pub mod ray;
pub mod scene;
pub mod shape;
pub mod tracer;
pub mod vec3;

pub use aabb::Aabb;
pub use bvh::{intersect_brute, Bvh};
pub use image::{split_rows, Chunk, Image, Rgb, Section};
pub use ray::{cost, Counters, Ray};
pub use scene::{Camera, Light, Scene, ScenePreset};
pub use shape::{Hit, Material, Shape};
pub use tracer::{render_full, render_section, section_ops, trace};
pub use vec3::{v3, Vec3};
