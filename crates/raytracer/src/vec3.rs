//! Minimal 3-vector math for the tracer.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component double-precision vector (points, directions, colors).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// Shorthand constructor.
pub fn v3(x: f64, y: f64, z: f64) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    pub fn cross(self, o: Vec3) -> Vec3 {
        v3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    pub fn length(self) -> f64 {
        self.length_squared().sqrt()
    }

    /// Unit vector in this direction (returns self for near-zero input).
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len < 1e-12 {
            self
        } else {
            self / len
        }
    }

    /// Component-wise product (color modulation).
    pub fn hadamard(self, o: Vec3) -> Vec3 {
        v3(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Mirror reflection of `self` about unit normal `n`.
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// Refraction of unit vector `self` entering a surface with unit
    /// normal `n` and refraction ratio `eta` (n₁/n₂); `None` on total
    /// internal reflection.
    pub fn refract(self, n: Vec3, eta: f64) -> Option<Vec3> {
        let cos_i = (-self.dot(n)).clamp(-1.0, 1.0);
        let sin2_t = eta * eta * (1.0 - cos_i * cos_i);
        if sin2_t > 1.0 {
            return None;
        }
        let cos_t = (1.0 - sin2_t).sqrt();
        Some(self * eta + n * (eta * cos_i - cos_t))
    }

    /// Component-wise min.
    pub fn min(self, o: Vec3) -> Vec3 {
        v3(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise max.
    pub fn max(self, o: Vec3) -> Vec3 {
        v3(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Clamps each component into `[lo, hi]`.
    pub fn clamp(self, lo: f64, hi: f64) -> Vec3 {
        v3(
            self.x.clamp(lo, hi),
            self.y.clamp(lo, hi),
            self.z.clamp(lo, hi),
        )
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        v3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        v3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        v3(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        v3(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        v3(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_cross_orthogonality() {
        let a = v3(1.0, 0.0, 0.0);
        let b = v3(0.0, 1.0, 0.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), v3(0.0, 0.0, 1.0));
        assert_eq!(b.cross(a), v3(0.0, 0.0, -1.0));
    }

    #[test]
    fn normalization() {
        let n = v3(3.0, 4.0, 0.0).normalized();
        assert!((n.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn reflection_preserves_length_and_flips_normal_component() {
        let d = v3(1.0, -1.0, 0.0).normalized();
        let n = v3(0.0, 1.0, 0.0);
        let r = d.reflect(n);
        assert!((r.length() - 1.0).abs() < 1e-12);
        assert!((r.y - (-d.y)).abs() < 1e-12);
        assert!((r.x - d.x).abs() < 1e-12);
    }

    #[test]
    fn refraction_straight_through_when_eta_is_one() {
        let d = v3(0.3, -0.9, 0.1).normalized();
        let n = v3(0.0, 1.0, 0.0);
        let t = d.refract(n, 1.0).unwrap();
        assert!((t - d).length() < 1e-12);
    }

    #[test]
    fn total_internal_reflection_returns_none() {
        // Grazing exit from dense to sparse medium.
        let d = v3(1.0, -0.1, 0.0).normalized();
        let n = v3(0.0, 1.0, 0.0);
        assert!(d.refract(n, 1.5).is_none());
    }

    #[test]
    fn snells_law_angles() {
        // 45° into glass (eta = 1/1.5): sin θt = sin 45° / 1.5.
        let d = v3(1.0, -1.0, 0.0).normalized();
        let n = v3(0.0, 1.0, 0.0);
        let t = d.refract(n, 1.0 / 1.5).unwrap();
        let sin_t = t.cross(-n).length();
        let expected = (45f64).to_radians().sin() / 1.5;
        assert!((sin_t - expected).abs() < 1e-12, "{sin_t} vs {expected}");
    }

    #[test]
    fn clamp_and_hadamard() {
        let c = v3(2.0, -0.5, 0.25).clamp(0.0, 1.0);
        assert_eq!(c, v3(1.0, 0.0, 0.25));
        assert_eq!(
            v3(2.0, 3.0, 4.0).hadamard(v3(0.5, 0.0, 0.25)),
            v3(1.0, 0.0, 1.0)
        );
    }
}
