//! Bounding-Volume Hierarchy built by incremental insertion.
//!
//! "When adding an object to the BVH, it inserts the bounding volume
//! that contains the object at the optimal place in the hierarchy using
//! a branch-and-bound algorithm, which minimizes the cost estimation
//! based on the surface area" (§II, citing Goldsmith & Salmon \[6\]).
//!
//! Insertion descends from the root, at every internal node choosing the
//! child whose bounding box grows least (in surface area) when the new
//! volume is added — Goldsmith & Salmon's area-based cost estimate —
//! and pairs up with the reached leaf under a fresh internal node.
//! Traversal is an ordinary stack walk that shrinks the ray interval as
//! hits are found; every box test and node visit is counted for the
//! simulator's cost model.

use crate::aabb::Aabb;
use crate::ray::{Counters, Ray};
use crate::shape::{Hit, Shape};

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        aabb: Aabb,
        shape: usize,
    },
    Internal {
        aabb: Aabb,
        left: usize,
        right: usize,
    },
}

impl Node {
    fn aabb(&self) -> Aabb {
        match self {
            Node::Leaf { aabb, .. } | Node::Internal { aabb, .. } => *aabb,
        }
    }
}

/// A surface-area-guided bounding volume hierarchy over a shape list.
#[derive(Clone, Debug, Default)]
pub struct Bvh {
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl Bvh {
    /// Builds a hierarchy by inserting every shape in index order —
    /// exactly the incremental construction of \[6\].
    pub fn build(shapes: &[Shape]) -> Bvh {
        let mut bvh = Bvh::default();
        for (i, s) in shapes.iter().enumerate() {
            bvh.insert(i, s.aabb());
        }
        bvh
    }

    /// Inserts one shape's bounding volume.
    pub fn insert(&mut self, shape: usize, aabb: Aabb) {
        let leaf = self.push(Node::Leaf { aabb, shape });
        match self.root {
            None => self.root = Some(leaf),
            Some(root) => {
                let new_root = self.insert_under(root, leaf, aabb);
                self.root = Some(new_root);
            }
        }
    }

    /// Recursive descent: returns the node replacing `node` after the
    /// leaf has been inserted somewhere below it.
    fn insert_under(&mut self, node: usize, leaf: usize, leaf_box: Aabb) -> usize {
        match self.nodes[node].clone() {
            Node::Leaf { aabb, .. } => {
                // Pair the two leaves under a fresh internal node.
                self.push(Node::Internal {
                    aabb: aabb.union(&leaf_box),
                    left: node,
                    right: leaf,
                })
            }
            Node::Internal { aabb, left, right } => {
                let la = self.nodes[left].aabb();
                let ra = self.nodes[right].aabb();
                // Goldsmith–Salmon cost estimate: surface-area increase
                // of each subtree if it absorbs the new volume.
                let dl = la.union(&leaf_box).surface_area() - la.surface_area();
                let dr = ra.union(&leaf_box).surface_area() - ra.surface_area();
                let (new_left, new_right) = if dl <= dr {
                    (self.insert_under(left, leaf, leaf_box), right)
                } else {
                    (left, self.insert_under(right, leaf, leaf_box))
                };
                self.nodes[node] = Node::Internal {
                    aabb: aabb.union(&leaf_box),
                    left: new_left,
                    right: new_right,
                };
                node
            }
        }
    }

    fn push(&mut self, n: Node) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Nearest hit of `ray` against `shapes` in `(t_min, t_max)`.
    ///
    /// `counters` accumulates box tests, node visits and primitive
    /// tests — the deterministic work driving the cluster simulator.
    pub fn intersect(
        &self,
        shapes: &[Shape],
        ray: &Ray,
        t_min: f64,
        t_max: f64,
        counters: &mut Counters,
    ) -> Option<Hit> {
        let root = self.root?;
        let mut best: Option<Hit> = None;
        let mut closest = t_max;
        let mut stack = Vec::with_capacity(32);
        stack.push(root);
        while let Some(idx) = stack.pop() {
            counters.bvh_nodes += 1;
            counters.aabb_tests += 1;
            let node = &self.nodes[idx];
            if !node.aabb().hit(ray, t_min, closest) {
                continue;
            }
            match *node {
                Node::Leaf { shape, .. } => {
                    counters.prim_tests += 1;
                    if let Some(mut h) = shapes[shape].intersect(ray, t_min, closest) {
                        h.shape = shape;
                        closest = h.t;
                        best = Some(h);
                    }
                }
                Node::Internal { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        best
    }

    /// Any-hit query for shadow rays: true if *something* blocks the
    /// interval. Stops at the first occluder.
    pub fn occluded(
        &self,
        shapes: &[Shape],
        ray: &Ray,
        t_min: f64,
        t_max: f64,
        counters: &mut Counters,
    ) -> bool {
        let Some(root) = self.root else { return false };
        let mut stack = Vec::with_capacity(32);
        stack.push(root);
        while let Some(idx) = stack.pop() {
            counters.bvh_nodes += 1;
            counters.aabb_tests += 1;
            let node = &self.nodes[idx];
            if !node.aabb().hit(ray, t_min, t_max) {
                continue;
            }
            match *node {
                Node::Leaf { shape, .. } => {
                    counters.prim_tests += 1;
                    if shapes[shape].intersect(ray, t_min, t_max).is_some() {
                        return true;
                    }
                }
                Node::Internal { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        false
    }

    /// Total node count (leaves + internals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum leaf depth.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match nodes[idx] {
                Node::Leaf { .. } => 1,
                Node::Internal { left, right, .. } => {
                    1 + depth_of(nodes, left).max(depth_of(nodes, right))
                }
            }
        }
        self.root.map_or(0, |r| depth_of(&self.nodes, r))
    }

    /// Goldsmith–Salmon tree quality: sum of internal-node surface areas
    /// relative to the root's (lower is better).
    pub fn sah_cost(&self) -> f64 {
        let Some(root) = self.root else { return 0.0 };
        let root_sa = self.nodes[root].aabb().surface_area();
        if root_sa <= 0.0 {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Internal { aabb, .. } => aabb.surface_area() / root_sa,
                Node::Leaf { .. } => 0.0,
            })
            .sum()
    }
}

/// Reference oracle: test every shape (counts primitive tests only).
pub fn intersect_brute(
    shapes: &[Shape],
    ray: &Ray,
    t_min: f64,
    t_max: f64,
    counters: &mut Counters,
) -> Option<Hit> {
    let mut best: Option<Hit> = None;
    let mut closest = t_max;
    for (i, s) in shapes.iter().enumerate() {
        counters.prim_tests += 1;
        if let Some(mut h) = s.intersect(ray, t_min, closest) {
            h.shape = i;
            closest = h.t;
            best = Some(h);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;

    fn grid_spheres(n: usize) -> Vec<Shape> {
        (0..n)
            .map(|i| Shape::Sphere {
                center: v3(
                    (i % 10) as f64 * 3.0,
                    ((i / 10) % 10) as f64 * 3.0,
                    (i / 100) as f64 * 3.0 + 10.0,
                ),
                radius: 1.0,
            })
            .collect()
    }

    #[test]
    fn empty_bvh_hits_nothing() {
        let bvh = Bvh::build(&[]);
        let ray = Ray::new(v3(0.0, 0.0, 0.0), v3(0.0, 0.0, 1.0));
        let mut c = Counters::default();
        assert!(bvh
            .intersect(&[], &ray, 1e-6, f64::INFINITY, &mut c)
            .is_none());
        assert!(!bvh.occluded(&[], &ray, 1e-6, f64::INFINITY, &mut c));
        assert_eq!(bvh.depth(), 0);
    }

    #[test]
    fn single_shape() {
        let shapes = vec![Shape::Sphere {
            center: v3(0.0, 0.0, 5.0),
            radius: 1.0,
        }];
        let bvh = Bvh::build(&shapes);
        let ray = Ray::new(v3(0.0, 0.0, 0.0), v3(0.0, 0.0, 1.0));
        let mut c = Counters::default();
        let h = bvh
            .intersect(&shapes, &ray, 1e-6, f64::INFINITY, &mut c)
            .unwrap();
        assert_eq!(h.shape, 0);
        assert!((h.t - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bvh_agrees_with_brute_force_on_grid() {
        let shapes = grid_spheres(120);
        let bvh = Bvh::build(&shapes);
        for iy in -4..8 {
            for ix in -4..8 {
                let ray = Ray::new(
                    v3(ix as f64 * 2.5, iy as f64 * 2.5, -5.0),
                    v3(0.1 * ix as f64, 0.05 * iy as f64, 1.0),
                );
                let mut cb = Counters::default();
                let mut cv = Counters::default();
                let brute = intersect_brute(&shapes, &ray, 1e-6, f64::INFINITY, &mut cb);
                let fast = bvh.intersect(&shapes, &ray, 1e-6, f64::INFINITY, &mut cv);
                match (brute, fast) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.shape, b.shape);
                        assert!((a.t - b.t).abs() < 1e-9);
                    }
                    other => panic!("disagreement: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn bvh_prunes_primitive_tests() {
        let shapes = grid_spheres(500);
        let bvh = Bvh::build(&shapes);
        let ray = Ray::new(v3(0.0, 0.0, 0.0), v3(0.0, 0.0, 1.0));
        let mut c = Counters::default();
        bvh.intersect(&shapes, &ray, 1e-6, f64::INFINITY, &mut c);
        assert!(
            c.prim_tests < shapes.len() as u64 / 4,
            "BVH tested {} of {} primitives",
            c.prim_tests,
            shapes.len()
        );
    }

    #[test]
    fn tree_is_reasonably_balanced_on_uniform_input() {
        let shapes = grid_spheres(256);
        let bvh = Bvh::build(&shapes);
        assert_eq!(bvh.node_count(), 2 * 256 - 1);
        // log2(256) = 8; allow generous slack for the greedy heuristic.
        assert!(bvh.depth() <= 40, "depth {}", bvh.depth());
    }

    #[test]
    fn occlusion_matches_intersection() {
        let shapes = grid_spheres(64);
        let bvh = Bvh::build(&shapes);
        for i in 0..32 {
            let ray = Ray::new(
                v3(i as f64 - 16.0, 2.0, -4.0),
                v3(0.2, 0.1 * (i % 5) as f64, 1.0),
            );
            let mut c = Counters::default();
            let hit = bvh.intersect(&shapes, &ray, 1e-6, 100.0, &mut c).is_some();
            let occ = bvh.occluded(&shapes, &ray, 1e-6, 100.0, &mut c);
            assert_eq!(hit, occ, "ray {i}");
        }
    }

    #[test]
    fn nearest_hit_wins_among_overlaps() {
        let shapes = vec![
            Shape::Sphere {
                center: v3(0.0, 0.0, 10.0),
                radius: 1.0,
            },
            Shape::Sphere {
                center: v3(0.0, 0.0, 5.0),
                radius: 1.0,
            },
            Shape::Sphere {
                center: v3(0.0, 0.0, 7.5),
                radius: 1.0,
            },
        ];
        let bvh = Bvh::build(&shapes);
        let ray = Ray::new(v3(0.0, 0.0, 0.0), v3(0.0, 0.0, 1.0));
        let mut c = Counters::default();
        let h = bvh
            .intersect(&shapes, &ray, 1e-6, f64::INFINITY, &mut c)
            .unwrap();
        assert_eq!(h.shape, 1);
    }
}
