//! The Whitted ray tracer (Algorithms 1 and 2 of the paper).
//!
//! `Trace` follows a ray into the scene; at the closest hit it shades
//! the point from every light (casting shadow rays) and recursively
//! spawns reflection and transmission rays up to `MAX_RAY_DEPTH`, per
//! Whitted's illumination model \[4\]. Rendering a [`Section`] yields a
//! [`Chunk`] plus the deterministic [`Counters`] that drive the cluster
//! simulator's cost model.

use crate::bvh::Bvh;
use crate::image::{Chunk, Image, Section};
use crate::ray::{Counters, Ray};
use crate::scene::Scene;
use crate::vec3::Vec3;

const EPS: f64 = 1e-6;
/// Ambient light factor applied to every surface.
const AMBIENT: f64 = 0.12;

/// Algorithm 2: follows `ray`, returning the pixel color contribution.
/// Selects the background color by default.
pub fn trace(scene: &Scene, bvh: &Bvh, ray: &Ray, depth: u32, c: &mut Counters) -> Vec3 {
    if depth >= scene.max_depth {
        return scene.background;
    }
    match bvh.intersect(&scene.shapes, ray, EPS, f64::INFINITY, c) {
        None => scene.background,
        Some(hit) => shade(scene, bvh, ray, &hit, depth, c),
    }
}

/// Computes the shade of a hit point: Phong direct lighting with shadow
/// rays, plus reflective and refractive secondary rays.
fn shade(
    scene: &Scene,
    bvh: &Bvh,
    ray: &Ray,
    hit: &crate::shape::Hit,
    depth: u32,
    c: &mut Counters,
) -> Vec3 {
    c.shades += 1;
    let m = &scene.materials[hit.shape];
    // Flip the normal to face the incoming ray (matters inside glass).
    let outward = hit.normal.dot(ray.dir) < 0.0;
    let n = if outward { hit.normal } else { -hit.normal };

    let mut color = m.diffuse * AMBIENT;

    for light in &scene.lights {
        let to_light = light.pos - hit.point;
        let dist = to_light.length();
        let ldir = to_light / dist;
        c.shadow_rays += 1;
        let shadow = Ray::new(hit.point + n * EPS * 8.0, ldir);
        if bvh.occluded(&scene.shapes, &shadow, EPS, dist, c) {
            continue;
        }
        let lambert = n.dot(ldir).max(0.0);
        if lambert > 0.0 {
            color += m.diffuse.hadamard(light.color) * lambert;
        }
        if m.specular > 0.0 {
            let refl = (-ldir).reflect(n);
            let spec = refl.dot(ray.dir).max(0.0).powf(m.shininess);
            color += light.color * (m.specular * spec);
        }
    }

    if m.reflectivity > 0.0 {
        c.secondary_rays += 1;
        let rdir = ray.dir.reflect(n);
        let reflected = trace(
            scene,
            bvh,
            &Ray::new(hit.point + n * EPS * 8.0, rdir),
            depth + 1,
            c,
        );
        color += reflected * m.reflectivity;
    }

    if m.transparency > 0.0 {
        let eta = if outward { 1.0 / m.ior } else { m.ior };
        c.secondary_rays += 1;
        match ray.dir.refract(n, eta) {
            Some(tdir) => {
                let transmitted = trace(
                    scene,
                    bvh,
                    &Ray::new(hit.point - n * EPS * 8.0, tdir),
                    depth + 1,
                    c,
                );
                color += transmitted * m.transparency;
            }
            None => {
                // Total internal reflection: everything mirrors.
                let rdir = ray.dir.reflect(n);
                let reflected = trace(
                    scene,
                    bvh,
                    &Ray::new(hit.point + n * EPS * 8.0, rdir),
                    depth + 1,
                    c,
                );
                color += reflected * m.transparency;
            }
        }
    }

    color.clamp(0.0, 1.0)
}

fn to_rgb(color: Vec3) -> [u8; 3] {
    // Simple gamma 2 for a less murky image; deterministic.
    let g = |x: f64| (x.max(0.0).sqrt() * 255.0 + 0.5) as u8;
    [g(color.x), g(color.y), g(color.z)]
}

/// Renders one horizontal section of the image plane (the solver box's
/// algorithmic payload). Returns the chunk and the work performed.
pub fn render_section(
    scene: &Scene,
    bvh: &Bvh,
    width: u32,
    height: u32,
    section: Section,
    c: &mut Counters,
) -> Chunk {
    assert!(section.y1 <= height, "section outside the image");
    let mut pixels = Vec::with_capacity((section.rows() * width) as usize);
    for y in section.y0..section.y1 {
        for x in 0..width {
            c.primary_rays += 1;
            let ray = scene.camera.primary_ray(x, y, width, height);
            let color = trace(scene, bvh, &ray, 0, c);
            pixels.push(to_rgb(color));
        }
    }
    Chunk {
        y0: section.y0,
        width,
        pixels,
    }
}

/// Algorithm 1: loops over the entire image, casting a single ray per
/// pixel. The sequential reference every parallel variant must match
/// byte-for-byte.
pub fn render_full(scene: &Scene, width: u32, height: u32, c: &mut Counters) -> Image {
    let (bvh, _) = scene.build_bvh();
    let chunk = render_section(scene, &bvh, width, height, Section::new(0, height), c);
    Image::assemble(width, height, &[chunk])
}

/// Per-section abstract work profile of a scene (used by tests and by
/// the experiment drivers to reason about imbalance without running the
/// full cluster simulation).
pub fn section_ops(scene: &Scene, width: u32, height: u32, sections: &[Section]) -> Vec<u64> {
    let (bvh, _) = scene.build_bvh();
    sections
        .iter()
        .map(|s| {
            let mut c = Counters::default();
            render_section(scene, &bvh, width, height, *s, &mut c);
            c.ops()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::split_rows;
    use crate::scene::{Scene, ScenePreset};

    const W: u32 = 96;
    const H: u32 = 96;

    #[test]
    fn rendering_is_deterministic() {
        let scene = Scene::preset(ScenePreset::Clustered, 40, 11);
        let mut c1 = Counters::default();
        let mut c2 = Counters::default();
        let a = render_full(&scene, W, H, &mut c1);
        let b = render_full(&scene, W, H, &mut c2);
        assert_eq!(a.checksum(), b.checksum());
        assert_eq!(c1, c2, "work counters must be deterministic");
    }

    #[test]
    fn sections_compose_to_the_full_image() {
        let scene = Scene::preset(ScenePreset::Balanced, 30, 5);
        let mut c = Counters::default();
        let full = render_full(&scene, W, H, &mut c);
        let (bvh, _) = scene.build_bvh();
        let chunks: Vec<Chunk> = split_rows(H, 7)
            .into_iter()
            .map(|s| {
                let mut sc = Counters::default();
                render_section(&scene, &bvh, W, H, s, &mut sc)
            })
            .collect();
        let assembled = Image::assemble(W, H, &chunks);
        assert_eq!(full, assembled, "chunked render must be byte-identical");
    }

    #[test]
    fn image_is_not_trivial() {
        // The render actually draws something: more than 5% non-background
        // pixels and at least two distinct colors.
        let scene = Scene::preset(ScenePreset::Clustered, 50, 3);
        let mut c = Counters::default();
        let img = render_full(&scene, W, H, &mut c);
        let bg = img.pixels[0];
        let non_bg = img.pixels.iter().filter(|p| **p != bg).count();
        assert!(
            non_bg > (img.pixels.len() / 20),
            "only {non_bg} non-background pixels"
        );
        assert!(c.shades > 0 && c.secondary_rays > 0 && c.shadow_rays > 0);
    }

    #[test]
    fn deeper_recursion_costs_more() {
        let mut scene = Scene::preset(ScenePreset::Clustered, 40, 9);
        scene.max_depth = 1;
        let mut shallow = Counters::default();
        render_full(&scene, W, H, &mut shallow);
        scene.max_depth = 6;
        let mut deep = Counters::default();
        render_full(&scene, W, H, &mut deep);
        assert!(deep.ops() > shallow.ops());
        assert!(deep.secondary_rays > shallow.secondary_rays);
    }

    #[test]
    fn clustered_scene_is_row_imbalanced_and_balanced_is_not() {
        fn imbalance(preset: ScenePreset) -> f64 {
            let scene = Scene::preset(preset, 60, 21);
            let ops = section_ops(&scene, W, H, &split_rows(H, 8));
            let max = *ops.iter().max().unwrap() as f64;
            let avg = ops.iter().sum::<u64>() as f64 / ops.len() as f64;
            max / avg
        }
        let clustered = imbalance(ScenePreset::Clustered);
        let balanced = imbalance(ScenePreset::Balanced);
        assert!(
            clustered > balanced,
            "clustered {clustered:.2} must exceed balanced {balanced:.2}"
        );
        assert!(
            clustered > 1.6,
            "clustered imbalance too mild: {clustered:.2}"
        );
    }

    #[test]
    fn max_depth_terminates_recursion() {
        // A mirror box of glass spheres cannot loop forever.
        let mut scene = Scene::preset(ScenePreset::Clustered, 80, 2);
        scene.max_depth = 3;
        let mut c = Counters::default();
        let img = render_full(&scene, 32, 32, &mut c);
        assert_eq!(img.pixels.len(), 32 * 32);
    }
}
