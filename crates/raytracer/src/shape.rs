//! Primitives and materials.

use crate::aabb::Aabb;
use crate::ray::Ray;
use crate::vec3::{v3, Vec3};

/// Surface material: Phong shading parameters plus reflectivity and
/// transparency for Whitted-style secondary rays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Material {
    /// Diffuse albedo (also the ambient color).
    pub diffuse: Vec3,
    /// Specular highlight strength.
    pub specular: f64,
    /// Phong exponent.
    pub shininess: f64,
    /// Fraction of light mirrored (spawns reflection rays when > 0).
    pub reflectivity: f64,
    /// Fraction of light transmitted (spawns refraction rays when > 0).
    pub transparency: f64,
    /// Index of refraction (used when `transparency > 0`).
    pub ior: f64,
}

impl Material {
    /// A plain diffuse surface.
    pub fn matte(diffuse: Vec3) -> Material {
        Material {
            diffuse,
            specular: 0.2,
            shininess: 16.0,
            reflectivity: 0.0,
            transparency: 0.0,
            ior: 1.0,
        }
    }

    /// A polished mirror-like surface.
    pub fn mirror(diffuse: Vec3, reflectivity: f64) -> Material {
        Material {
            diffuse,
            specular: 0.8,
            shininess: 64.0,
            reflectivity,
            transparency: 0.0,
            ior: 1.0,
        }
    }

    /// A transparent glass-like surface.
    pub fn glass(diffuse: Vec3, transparency: f64, ior: f64) -> Material {
        Material {
            diffuse,
            specular: 0.9,
            shininess: 96.0,
            reflectivity: 0.1,
            transparency,
            ior,
        }
    }
}

/// Result of a successful ray–primitive intersection.
#[derive(Clone, Copy, Debug)]
pub struct Hit {
    /// Ray parameter of the hit point.
    pub t: f64,
    /// World-space hit point.
    pub point: Vec3,
    /// Unit outward surface normal at the hit point.
    pub normal: Vec3,
    /// Index of the primitive hit (set by the scene/BVH layer).
    pub shape: usize,
}

/// A renderable primitive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Shape {
    /// A sphere.
    Sphere { center: Vec3, radius: f64 },
    /// An axis-aligned rectangle at `y = level` spanning
    /// `[-half, half]²` in x/z — the scene floor.
    Floor { level: f64, half: f64 },
    /// A triangle (counter-clockwise winding defines the normal).
    Triangle { a: Vec3, b: Vec3, c: Vec3 },
}

impl Shape {
    /// Bounding box of the primitive.
    pub fn aabb(&self) -> Aabb {
        match *self {
            Shape::Sphere { center, radius } => Aabb::from_corners(
                center - v3(radius, radius, radius),
                center + v3(radius, radius, radius),
            ),
            Shape::Floor { level, half } => {
                Aabb::from_corners(v3(-half, level - 1e-4, -half), v3(half, level + 1e-4, half))
            }
            Shape::Triangle { a, b, c } => {
                let mut bb = Aabb::empty();
                bb.extend(a);
                bb.extend(b);
                bb.extend(c);
                // Pad degenerate (axis-aligned flat) triangles slightly.
                bb.min -= v3(1e-6, 1e-6, 1e-6);
                bb.max += v3(1e-6, 1e-6, 1e-6);
                bb
            }
        }
    }

    /// Nearest intersection with `ray` in `(t_min, t_max)`, if any.
    /// The returned hit's `shape` index is zero; callers stamp it.
    pub fn intersect(&self, ray: &Ray, t_min: f64, t_max: f64) -> Option<Hit> {
        match *self {
            Shape::Sphere { center, radius } => {
                let oc = ray.origin - center;
                let b = oc.dot(ray.dir);
                let c = oc.length_squared() - radius * radius;
                let disc = b * b - c;
                if disc < 0.0 {
                    return None;
                }
                let sqrt_d = disc.sqrt();
                let mut t = -b - sqrt_d;
                if t <= t_min || t >= t_max {
                    t = -b + sqrt_d;
                    if t <= t_min || t >= t_max {
                        return None;
                    }
                }
                let point = ray.at(t);
                Some(Hit {
                    t,
                    point,
                    normal: (point - center) / radius,
                    shape: 0,
                })
            }
            Shape::Floor { level, half } => {
                if ray.dir.y.abs() < 1e-12 {
                    return None;
                }
                let t = (level - ray.origin.y) / ray.dir.y;
                if t <= t_min || t >= t_max {
                    return None;
                }
                let p = ray.at(t);
                if p.x.abs() > half || p.z.abs() > half {
                    return None;
                }
                Some(Hit {
                    t,
                    point: p,
                    normal: v3(0.0, if ray.dir.y < 0.0 { 1.0 } else { -1.0 }, 0.0),
                    shape: 0,
                })
            }
            Shape::Triangle { a, b, c } => {
                // Möller–Trumbore.
                let e1 = b - a;
                let e2 = c - a;
                let pvec = ray.dir.cross(e2);
                let det = e1.dot(pvec);
                if det.abs() < 1e-12 {
                    return None;
                }
                let inv_det = 1.0 / det;
                let tvec = ray.origin - a;
                let u = tvec.dot(pvec) * inv_det;
                if !(0.0..=1.0).contains(&u) {
                    return None;
                }
                let qvec = tvec.cross(e1);
                let v = ray.dir.dot(qvec) * inv_det;
                if v < 0.0 || u + v > 1.0 {
                    return None;
                }
                let t = e2.dot(qvec) * inv_det;
                if t <= t_min || t >= t_max {
                    return None;
                }
                let mut normal = e1.cross(e2).normalized();
                if normal.dot(ray.dir) > 0.0 {
                    normal = -normal; // face the ray
                }
                Some(Hit {
                    t,
                    point: ray.at(t),
                    normal,
                    shape: 0,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_hit_from_outside() {
        let s = Shape::Sphere {
            center: v3(0.0, 0.0, 5.0),
            radius: 1.0,
        };
        let r = Ray::new(v3(0.0, 0.0, 0.0), v3(0.0, 0.0, 1.0));
        let h = s.intersect(&r, 1e-6, f64::INFINITY).unwrap();
        assert!((h.t - 4.0).abs() < 1e-9);
        assert!((h.normal - v3(0.0, 0.0, -1.0)).length() < 1e-9);
    }

    #[test]
    fn sphere_hit_from_inside_uses_far_root() {
        let s = Shape::Sphere {
            center: v3(0.0, 0.0, 0.0),
            radius: 2.0,
        };
        let r = Ray::new(v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0));
        let h = s.intersect(&r, 1e-6, f64::INFINITY).unwrap();
        assert!((h.t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sphere_miss() {
        let s = Shape::Sphere {
            center: v3(0.0, 0.0, 5.0),
            radius: 1.0,
        };
        let r = Ray::new(v3(0.0, 3.0, 0.0), v3(0.0, 0.0, 1.0));
        assert!(s.intersect(&r, 1e-6, f64::INFINITY).is_none());
    }

    #[test]
    fn floor_hit_and_bounds() {
        let f = Shape::Floor {
            level: 0.0,
            half: 10.0,
        };
        let down = Ray::new(v3(1.0, 5.0, 1.0), v3(0.0, -1.0, 0.0));
        let h = f.intersect(&down, 1e-6, f64::INFINITY).unwrap();
        assert!((h.t - 5.0).abs() < 1e-9);
        assert_eq!(h.normal, v3(0.0, 1.0, 0.0));
        let off_edge = Ray::new(v3(50.0, 5.0, 0.0), v3(0.0, -1.0, 0.0));
        assert!(f.intersect(&off_edge, 1e-6, f64::INFINITY).is_none());
    }

    #[test]
    fn triangle_hit_inside_and_miss_outside() {
        let t = Shape::Triangle {
            a: v3(0.0, 0.0, 5.0),
            b: v3(2.0, 0.0, 5.0),
            c: v3(0.0, 2.0, 5.0),
        };
        let inside = Ray::new(v3(0.5, 0.5, 0.0), v3(0.0, 0.0, 1.0));
        let h = t.intersect(&inside, 1e-6, f64::INFINITY).unwrap();
        assert!((h.t - 5.0).abs() < 1e-9);
        let outside = Ray::new(v3(1.9, 1.9, 0.0), v3(0.0, 0.0, 1.0));
        assert!(t.intersect(&outside, 1e-6, f64::INFINITY).is_none());
    }

    #[test]
    fn triangle_normal_faces_the_ray() {
        let t = Shape::Triangle {
            a: v3(0.0, 0.0, 5.0),
            b: v3(2.0, 0.0, 5.0),
            c: v3(0.0, 2.0, 5.0),
        };
        let from_front = Ray::new(v3(0.5, 0.5, 0.0), v3(0.0, 0.0, 1.0));
        let from_back = Ray::new(v3(0.5, 0.5, 10.0), v3(0.0, 0.0, -1.0));
        let hf = t.intersect(&from_front, 1e-6, f64::INFINITY).unwrap();
        let hb = t.intersect(&from_back, 1e-6, f64::INFINITY).unwrap();
        assert!(hf.normal.dot(from_front.dir) < 0.0);
        assert!(hb.normal.dot(from_back.dir) < 0.0);
    }

    #[test]
    fn aabbs_contain_their_shapes() {
        let s = Shape::Sphere {
            center: v3(1.0, 2.0, 3.0),
            radius: 0.5,
        };
        let bb = s.aabb();
        assert_eq!(bb.min, v3(0.5, 1.5, 2.5));
        assert_eq!(bb.max, v3(1.5, 2.5, 3.5));
        let f = Shape::Floor {
            level: -1.0,
            half: 4.0,
        };
        let fb = f.aabb();
        assert!(fb.min.y < -1.0 && fb.max.y > -1.0);
    }
}
