//! Scenes: camera, lights, shapes, and the procedural presets used by
//! the benchmark figures.
//!
//! The paper renders an (unpublished) 3000×3000 scene whose object
//! distribution is imbalanced enough that "imbalances in the
//! distribution of objects within any given scene quickly lead to
//! limited scalability on clusters with more than 2 processing nodes"
//! (§IV.A). We substitute seeded procedural scenes with a controlled
//! imbalance knob: [`ScenePreset::Balanced`] spreads work evenly over
//! image rows; [`ScenePreset::Clustered`] concentrates reflective
//! geometry so the lower image rows are several times more expensive —
//! reproducing exactly the load-imbalance phenomenology the evaluation
//! depends on.

use crate::bvh::Bvh;
use crate::ray::Ray;
use crate::shape::{Material, Shape};
use crate::vec3::{v3, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point light.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Light {
    /// World-space position.
    pub pos: Vec3,
    /// RGB intensity.
    pub color: Vec3,
}

/// A pinhole camera.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Camera {
    /// Eye position.
    pub origin: Vec3,
    /// Point looked at.
    pub look_at: Vec3,
    /// Up hint.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub vfov_deg: f64,
}

impl Camera {
    /// The primary ray through pixel `(px, py)` of a `width`×`height`
    /// image ("the primary ray is shot through each pixel in the image
    /// plane", §II). Row 0 is the top of the image.
    pub fn primary_ray(&self, px: u32, py: u32, width: u32, height: u32) -> Ray {
        let aspect = width as f64 / height as f64;
        let half_h = (self.vfov_deg.to_radians() / 2.0).tan();
        let half_w = aspect * half_h;
        let w = (self.origin - self.look_at).normalized();
        let u = self.up.cross(w).normalized();
        let v = w.cross(u);
        let sx = (px as f64 + 0.5) / width as f64 * 2.0 - 1.0;
        let sy = 1.0 - (py as f64 + 0.5) / height as f64 * 2.0;
        let dir = u * (sx * half_w) + v * (sy * half_h) - w;
        Ray::new(self.origin, dir)
    }
}

/// Procedural scene families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenePreset {
    /// Geometry spread uniformly — image rows cost roughly the same.
    Balanced,
    /// Most geometry (and nearly all reflective geometry) packed into a
    /// band near the floor — lower image rows are far more expensive.
    Clustered,
}

/// A complete renderable scene.
#[derive(Clone, Debug)]
pub struct Scene {
    /// Primitives, indexed by the BVH and hit records.
    pub shapes: Vec<Shape>,
    /// One material per shape.
    pub materials: Vec<Material>,
    /// Point lights.
    pub lights: Vec<Light>,
    /// Color returned by rays that escape the scene.
    pub background: Vec3,
    /// The camera.
    pub camera: Camera,
    /// Maximum recursion depth (the paper's `MAX_RAY_DEPTH`).
    pub max_depth: u32,
}

impl Scene {
    /// Builds a preset scene with `spheres` spheres from a seed.
    pub fn preset(preset: ScenePreset, spheres: usize, seed: u64) -> Scene {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shapes = Vec::with_capacity(spheres + 1);
        let mut materials = Vec::with_capacity(spheres + 1);

        // The floor: a matte checkerless plane, slightly reflective so
        // lower rows always carry some secondary-ray work.
        shapes.push(Shape::Floor {
            level: 0.0,
            half: 120.0,
        });
        materials.push(Material {
            reflectivity: 0.15,
            ..Material::matte(v3(0.55, 0.55, 0.6))
        });

        for i in 0..spheres {
            let clustered = matches!(preset, ScenePreset::Clustered) && i % 5 != 0;
            let (center, radius) = if clustered {
                // A dense band hugging the floor in front of the camera:
                // it fills the lower image rows.
                (
                    v3(
                        rng.gen_range(-10.0..10.0),
                        rng.gen_range(0.4..2.2),
                        rng.gen_range(-4.0..8.0),
                    ),
                    rng.gen_range(0.35..0.9),
                )
            } else {
                (
                    v3(
                        rng.gen_range(-18.0..18.0),
                        rng.gen_range(0.5..11.0),
                        rng.gen_range(-10.0..22.0),
                    ),
                    rng.gen_range(0.4..1.3),
                )
            };
            shapes.push(Shape::Sphere { center, radius });
            let hue = v3(
                rng.gen_range(0.2..1.0),
                rng.gen_range(0.2..1.0),
                rng.gen_range(0.2..1.0),
            );
            let style: f64 = rng.gen_range(0.0..1.0);
            let mat = if clustered {
                // The cluster is mostly mirrors: deep secondary-ray
                // trees inside the band amplify the imbalance.
                if style < 0.7 {
                    Material::mirror(hue, 0.6)
                } else {
                    Material::glass(hue, 0.7, 1.45)
                }
            } else if style < 0.65 {
                Material::matte(hue)
            } else if style < 0.9 {
                Material::mirror(hue, 0.45)
            } else {
                Material::glass(hue, 0.6, 1.5)
            };
            materials.push(mat);
        }

        Scene {
            shapes,
            materials,
            lights: vec![
                Light {
                    pos: v3(-14.0, 18.0, -10.0),
                    color: v3(0.9, 0.85, 0.8),
                },
                Light {
                    pos: v3(12.0, 22.0, 4.0),
                    color: v3(0.5, 0.55, 0.65),
                },
            ],
            background: v3(0.08, 0.10, 0.16),
            camera: Camera {
                origin: v3(0.0, 5.5, -22.0),
                look_at: v3(0.0, 2.2, 2.0),
                up: v3(0.0, 1.0, 0.0),
                vfov_deg: 55.0,
            },
            max_depth: 5,
        }
    }

    /// Builds the scene's BVH (the `scene ← construct a BVH` step of
    /// Algorithm 1) and reports the abstract work of doing so: one
    /// insertion costs O(depth) surface-area evaluations.
    pub fn build_bvh(&self) -> (Bvh, u64) {
        let bvh = Bvh::build(&self.shapes);
        // ~40 ops per node touched per insertion; a calibrated constant,
        // only visible as a small startup cost in the simulation.
        let ops = (self.shapes.len() as u64) * (bvh.depth().max(1) as u64) * 40;
        (bvh, ops)
    }

    /// Nominal serialized size: what broadcasting the scene to a
    /// compute node costs on the simulated network.
    pub fn wire_bytes(&self) -> usize {
        self.shapes.len() * 48 + self.materials.len() * 56 + self.lights.len() * 24 + 96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_deterministic() {
        let a = Scene::preset(ScenePreset::Clustered, 60, 7);
        let b = Scene::preset(ScenePreset::Clustered, 60, 7);
        assert_eq!(a.shapes, b.shapes);
        let c = Scene::preset(ScenePreset::Clustered, 60, 8);
        assert_ne!(a.shapes, c.shapes);
    }

    #[test]
    fn scene_has_floor_plus_spheres() {
        let s = Scene::preset(ScenePreset::Balanced, 40, 1);
        assert_eq!(s.shapes.len(), 41);
        assert_eq!(s.materials.len(), 41);
        assert!(matches!(s.shapes[0], Shape::Floor { .. }));
        assert!(s.wire_bytes() > 41 * 48);
    }

    #[test]
    fn camera_rays_pass_through_the_view_frustum() {
        let s = Scene::preset(ScenePreset::Balanced, 1, 1);
        let center = s.camera.primary_ray(50, 50, 100, 100);
        let corner = s.camera.primary_ray(0, 0, 100, 100);
        // Central ray points roughly at look_at.
        let to_target = (s.camera.look_at - s.camera.origin).normalized();
        assert!(center.dir.dot(to_target) > 0.99);
        // Corner ray diverges but still points forward.
        assert!(corner.dir.dot(to_target) > 0.5);
        assert!(corner.dir.y > center.dir.y, "row 0 is the top of the image");
    }

    #[test]
    fn bvh_build_reports_work() {
        let s = Scene::preset(ScenePreset::Clustered, 50, 3);
        let (bvh, ops) = s.build_bvh();
        assert_eq!(bvh.node_count(), 2 * 51 - 1);
        assert!(ops > 0);
    }
}
