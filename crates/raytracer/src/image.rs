//! Images, horizontal sections and rendered chunks.
//!
//! The parallel decomposition of the paper splits the image plane along
//! the y axis into [`Section`]s (§V: "a scene of 3000×3000 pixels is
//! split along the y axis"); a solver renders a section into a
//! [`Chunk`]; the merger assembles chunks into an [`Image`].

use std::io::Write;
use std::path::Path;

/// One 8-bit RGB pixel.
pub type Rgb = [u8; 3];

/// A horizontal strip of the image plane: rows `y0 .. y1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Section {
    /// First row (inclusive).
    pub y0: u32,
    /// One past the last row.
    pub y1: u32,
}

impl Section {
    /// Builds a section; panics if empty or inverted.
    pub fn new(y0: u32, y1: u32) -> Section {
        assert!(y0 < y1, "section must contain at least one row");
        Section { y0, y1 }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.y1 - self.y0
    }
}

/// A rendered strip: the pixels of one section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// First image row this chunk covers.
    pub y0: u32,
    /// Image width in pixels.
    pub width: u32,
    /// Row-major pixels, `rows * width` of them.
    pub pixels: Vec<Rgb>,
}

impl Chunk {
    /// Rows covered.
    pub fn rows(&self) -> u32 {
        (self.pixels.len() as u32) / self.width.max(1)
    }

    /// The section this chunk covers.
    pub fn section(&self) -> Section {
        Section::new(self.y0, self.y0 + self.rows())
    }

    /// Nominal wire size (3 bytes per pixel plus a small header) — what
    /// the simulated network charges for moving this chunk.
    pub fn wire_bytes(&self) -> usize {
        self.pixels.len() * 3 + 16
    }
}

/// A complete (or in-assembly) image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major pixels.
    pub pixels: Vec<Rgb>,
}

impl Image {
    /// A black image of the given dimensions.
    pub fn new(width: u32, height: u32) -> Image {
        Image {
            width,
            height,
            pixels: vec![[0, 0, 0]; (width as usize) * (height as usize)],
        }
    }

    /// Copies a chunk's rows into place. Panics if the chunk does not
    /// fit (width mismatch or rows out of range) — that is always a
    /// coordination bug worth failing loudly on.
    pub fn blit(&mut self, chunk: &Chunk) {
        assert_eq!(chunk.width, self.width, "chunk width mismatch");
        let start = (chunk.y0 as usize) * (self.width as usize);
        let end = start + chunk.pixels.len();
        assert!(end <= self.pixels.len(), "chunk rows out of range");
        self.pixels[start..end].copy_from_slice(&chunk.pixels);
    }

    /// Assembles chunks into a fresh image (order-insensitive).
    pub fn assemble(width: u32, height: u32, chunks: &[Chunk]) -> Image {
        let mut img = Image::new(width, height);
        for c in chunks {
            img.blit(c);
        }
        img
    }

    /// Nominal wire size of the full frame.
    pub fn wire_bytes(&self) -> usize {
        self.pixels.len() * 3 + 16
    }

    /// FNV-1a digest of the pixel data — the cheap way tests assert two
    /// renders are byte-identical.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for px in &self.pixels {
            for &b in px {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
        h
    }

    /// Writes a binary PPM (P6) file — the `genImg` box's output format.
    pub fn write_ppm(&self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        for px in &self.pixels {
            w.write_all(px)?;
        }
        w.flush()
    }
}

/// Splits `height` rows into `count` equal-as-possible sections (block
/// decomposition; the remainder is distributed one row at a time to the
/// leading sections).
pub fn split_rows(height: u32, count: u32) -> Vec<Section> {
    assert!(
        count > 0 && height >= count,
        "need at least one row per section"
    );
    let base = height / count;
    let extra = height % count;
    let mut out = Vec::with_capacity(count as usize);
    let mut y = 0;
    for i in 0..count {
        let rows = base + u32::from(i < extra);
        out.push(Section::new(y, y + rows));
        y += rows;
    }
    debug_assert_eq!(y, height);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rows_covers_exactly() {
        for (h, n) in [(3000u32, 48u32), (600, 7), (10, 10), (11, 3)] {
            let sections = split_rows(h, n);
            assert_eq!(sections.len(), n as usize);
            assert_eq!(sections[0].y0, 0);
            assert_eq!(sections.last().unwrap().y1, h);
            for w in sections.windows(2) {
                assert_eq!(w[0].y1, w[1].y0, "sections must tile");
            }
            let max = sections.iter().map(|s| s.rows()).max().unwrap();
            let min = sections.iter().map(|s| s.rows()).min().unwrap();
            assert!(max - min <= 1, "block split must be even");
        }
    }

    #[test]
    fn chunk_geometry() {
        let c = Chunk {
            y0: 10,
            width: 4,
            pixels: vec![[1, 2, 3]; 12],
        };
        assert_eq!(c.rows(), 3);
        assert_eq!(c.section(), Section::new(10, 13));
        assert_eq!(c.wire_bytes(), 12 * 3 + 16);
    }

    #[test]
    fn assemble_is_order_insensitive() {
        let a = Chunk {
            y0: 0,
            width: 2,
            pixels: vec![[1, 1, 1]; 4],
        };
        let b = Chunk {
            y0: 2,
            width: 2,
            pixels: vec![[2, 2, 2]; 4],
        };
        let i1 = Image::assemble(2, 4, &[a.clone(), b.clone()]);
        let i2 = Image::assemble(2, 4, &[b, a]);
        assert_eq!(i1, i2);
        assert_eq!(i1.pixels[0], [1, 1, 1]);
        assert_eq!(i1.pixels[7], [2, 2, 2]);
        assert_eq!(i1.checksum(), i2.checksum());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn blit_rejects_wrong_width() {
        let mut img = Image::new(4, 4);
        img.blit(&Chunk {
            y0: 0,
            width: 3,
            pixels: vec![[0, 0, 0]; 3],
        });
    }

    #[test]
    fn checksums_differ_for_different_content() {
        let mut a = Image::new(2, 2);
        let b = Image::new(2, 2);
        a.pixels[3] = [0, 0, 1];
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn ppm_round_trip_header() {
        let dir = std::env::temp_dir().join("rsnet-image-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.ppm");
        let mut img = Image::new(3, 2);
        img.pixels[0] = [255, 0, 0];
        img.write_ppm(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(data.len(), 11 + 3 * 2 * 3);
        std::fs::remove_file(&path).ok();
    }
}
