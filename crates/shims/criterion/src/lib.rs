//! Offline shim for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the criterion API
//! the workspace's bench targets use: `Criterion::benchmark_group`,
//! `sample_size`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, one warm-up call, then
//! `sample_size` timed calls; the reported statistic is the median.
//! `--test` (criterion's smoke mode, used by CI) runs each benchmark
//! body exactly once and reports `ok` without timing.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Harness entry point; one per bench binary.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion pass that this shim ignores.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_owned()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: 10,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let test_mode = self.test_mode;
        if self.matches(id) {
            run_one(id, 10, test_mode, &mut f);
        }
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => full_id.contains(f.as_str()),
        }
    }
}

/// A named identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: &str, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_one(
                &full,
                self.sample_size,
                self.criterion.test_mode,
                &mut |b| f(b, input),
            );
        }
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, self.criterion.test_mode, &mut f);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark bodies; `iter` performs the measurement.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Median duration of one routine call, filled by `iter`.
    pub last_median: Option<Duration>,
}

impl Bencher {
    /// Times the routine (or runs it once in `--test` mode).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            std_black_box(routine());
            return;
        }
        std_black_box(routine()); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std_black_box(routine());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last_median = Some(times[times.len() / 2]);
    }
}

fn run_one(id: &str, samples: usize, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        test_mode,
        samples,
        last_median: None,
    };
    f(&mut b);
    if test_mode {
        println!("bench {id:<40} ... ok (smoke)");
    } else {
        match b.last_median {
            Some(d) => println!("bench {id:<40} median {}", fmt_duration(d)),
            None => println!("bench {id:<40} ... (no measurement)"),
        }
    }
}

/// Formats a duration with benchmark-appropriate units.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_in_normal_mode() {
        let mut b = Bencher {
            test_mode: false,
            samples: 3,
            last_median: None,
        };
        b.iter(|| std::thread::sleep(Duration::from_millis(1)));
        assert!(b.last_median.unwrap() >= Duration::from_millis(1));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            samples: 50,
            last_median: None,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.last_median.is_none());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
