//! Offline shim for `proptest`.
//!
//! A miniature random-input property-testing framework exposing the
//! subset of the proptest API this workspace's tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter_map` /
//! `prop_recursive`, range and tuple strategies, `prop::collection` /
//! `prop::option` / `prop::sample` constructors, and the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with its case number and deterministic seed, so it reproduces
//! exactly) and a simpler recursion-depth model. Test generation is
//! fully deterministic per test name, so CI failures replay locally.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------- rng

/// Deterministic generator used for test-case generation (xoshiro256++).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [a, b, c, d] = self.s;
        let result = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
        let t = b << 17;
        let mut s = [a, b, c, d];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    fn usize_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// --------------------------------------------------------- errors/config

/// Why a test case failed (or was rejected).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The input was rejected (filter exhaustion).
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected case with a reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Runs one generated case (used by the `proptest!` macro expansion).
pub fn run_case<F: FnOnce() -> Result<(), TestCaseError>>(f: F) -> Result<(), TestCaseError> {
    f()
}

// ------------------------------------------------------------ strategy

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps through a partial function, regenerating on `None`.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Regenerates values failing the predicate.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves; `recurse`
    /// receives a strategy for the nested level and wraps it one level
    /// deeper. `depth` bounds the nesting. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: BoxedStrategy::new(self),
            grow: Arc::new(move |inner| BoxedStrategy::new(recurse(inner))),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(self)
    }
}

trait ObjStrategy<V> {
    fn gen_obj(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> ObjStrategy<S::Value> for S {
    fn gen_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    inner: Arc<dyn ObjStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V: 'static> BoxedStrategy<V> {
    /// Erases a concrete strategy.
    pub fn new<S: Strategy<Value = V> + 'static>(s: S) -> BoxedStrategy<V> {
        BoxedStrategy { inner: Arc::new(s) }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.gen_obj(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted 1000 attempts: {}", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.whence);
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    grow: Arc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    depth: u32,
}

impl<V> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let levels = rng.usize_below(self.depth as usize + 1);
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.grow)(s);
        }
        s.generate(rng)
    }
}

/// A constant strategy.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally weighted, type-erased alternatives
/// (the `prop_oneof!` backing type).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: 'static> Union<V> {
    /// Builds from the already-erased arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// `any::<T>()` support (only the types the workspace asks for).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// Ranges are strategies.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

// Tuples of strategies are strategies.
macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ------------------------------------------------------- constructors

/// Strategy constructors, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Size specification for collection strategies.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl SizeRange {
            fn sample(&self, rng: &mut TestRng) -> usize {
                self.lo + rng.usize_below(self.hi - self.lo)
            }
        }

        /// Generates `Vec`s of sizes drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates `BTreeSet`s with *up to* the sampled number of
        /// elements (duplicates collapse, as in real proptest).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates `BTreeMap`s with *up to* the sampled number of
        /// entries.
        pub fn btree_map<K, V>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            BTreeMapStrategy {
                key,
                value,
                size: size.into(),
            }
        }

        /// See [`btree_map`].
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            type Value = std::collections::BTreeMap<K::Value, V::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                (0..n)
                    .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                    .collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::*;

        /// Generates `Some` three times out of four.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Sampling from explicit value lists.
    pub mod sample {
        use super::super::*;

        /// Uniformly selects one of the given values.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select from an empty list");
            Select { values }
        }

        /// See [`select`].
        pub struct Select<T: Clone> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.usize_below(self.values.len());
                self.values[i].clone()
            }
        }
    }
}

// ------------------------------------------------------------- macros

/// Uniform choice among strategy expressions of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::BoxedStrategy::new($arm)),+])
    };
}

/// Asserts inside a property body, failing the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, …)`
/// runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                $(let $arg = $strat;)+
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    let outcome = $crate::run_case(move || { $body ::core::result::Result::Ok(()) });
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err(e) => {
                            panic!("property `{}` failed at case {}/{}: {}",
                                   stringify!($name), case + 1, config.cases, e);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("tuples");
        let s = (0usize..5, -3i64..3, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 5);
            assert!((-3..3).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn recursion_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v));
                    0
                }
                Tree::Node(ts) => 1 + ts.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::deterministic("rec");
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3, "{t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_driven_property(v in prop::collection::vec(0i64..100, 0..10)) {
            let doubled: Vec<i64> = v.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
            prop_assert!(doubled.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn oneof_and_option(x in prop_oneof![Just(1i64), Just(2i64)], o in prop::option::of(0i64..5)) {
            prop_assert!(x == 1 || x == 2);
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }
    }
}
