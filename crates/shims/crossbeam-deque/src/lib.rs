//! Offline shim for `crossbeam-deque`, built around a real lock-free
//! Chase–Lev work-stealing deque.
//!
//! The `Worker`/`Stealer` pair is an array-based Chase–Lev deque
//! (Chase & Lev, SPAA '05, with the memory orderings of Lê et al.,
//! PPoPP '13): the owner pushes at the bottom with plain stores plus a
//! release publish, thieves race a single compare-and-swap on `top`,
//! and nobody ever takes a lock. Two flavors are provided, matching the
//! real crate:
//!
//! * `new_fifo()` — the owner pops the *same* end thieves steal from
//!   (oldest first), so the deque behaves as an SPMC FIFO queue;
//! * `new_lifo()` — the classic Chase–Lev owner end: the owner pops the
//!   most recently pushed task, racing thieves only for the last
//!   element.
//!
//! Memory reclamation is **epoch-free**: buffer growth is guarded by a
//! versioned seqlock. The owner bumps `version` to odd, publishes the
//! doubled buffer, and bumps it back to even; a thief that observes an
//! odd version, a version change across its speculative slot read, or a
//! lost `top` race returns [`Steal::Retry`] and forgets the (never
//! materialized) value. Retired buffers are parked on a cold-path list
//! and deallocated — without dropping their raw slots, which are either
//! consumed or duplicated into the live buffer — only when the last
//! handle drops. This keeps every speculative read inbounds of live
//! memory without epochs or hazard pointers.
//!
//! The [`Injector`] stays a mutex-backed FIFO: in the scheduler it is
//! the cold path (initial feed and contended-task requeues), while
//! every hot hand-off goes through the lock-free worker deques.
//!
//! Every `unsafe` block below carries a `SAFETY:` comment tying it to
//! the deque invariants (enforced by `scripts/check_unsafe.py`); the
//! cross-thread protocol itself is model-checked in
//! `crates/check/tests/chase_lev.rs` and raced under TSan in CI.

#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::{Arc, Mutex, PoisonError};

// Under `--cfg snet_check` every atomic access goes through the
// snet-check model scheduler, so its DFS driver explores the
// push/steal/grow interleavings of this exact implementation —
// including the versioned-seqlock buffer-swap window. (The retired-
// buffer `Mutex` above stays `std`: it is touched only by the owner
// thread, so it is not part of the cross-thread protocol.) Orderings
// are preserved in the source but the model runs everything SeqCst;
// weak-memory coverage comes from the TSan CI lane instead.
#[cfg(snet_check)]
use snet_check::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
#[cfg(not(snet_check))]
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Initial ring capacity; doubled on every growth. Kept small so tests
/// exercise the growth/steal race without pushing millions of items.
const MIN_CAP: usize = 16;

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// A race occurred (lost `top` CAS or an overlapping buffer swap);
    /// the caller should retry or move to another victim.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Did the attempt come up empty?
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// Fixed-capacity ring of uninitialized slots. Slot `i` lives at
/// `i & mask`; the Chase–Lev indices grow without bound.
struct Buffer<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::into_raw(Box::new(Buffer {
            mask: cap - 1,
            slots,
        }))
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
        self.slots[(index as usize) & self.mask].get()
    }

    /// Speculatively copies the element at `index` out of the ring.
    ///
    /// # Safety
    /// The caller must either win the ownership race (CAS on `top`, or
    /// owner-exclusive access to the bottom slot) before materializing
    /// the value, or `mem::forget` it.
    unsafe fn read(&self, index: isize) -> T {
        // SAFETY: `slot` is inbounds by the `& mask` wrap; the caller
        // contract guarantees the slot is initialized (index is inside
        // `top..bottom`, published by the owner's release store) and
        // that a duplicated value is forgotten on a lost race.
        unsafe { (*self.slot(index)).assume_init_read() }
    }

    /// # Safety
    /// Only the owner writes, and only to slots outside `top..bottom`.
    unsafe fn write(&self, index: isize, value: T) {
        // SAFETY: `slot` is inbounds by the `& mask` wrap; the caller
        // contract (owner-only, slot outside the live window) means no
        // other thread reads this slot until `bottom` publishes it, and
        // the overwritten bytes are uninitialized or already consumed.
        unsafe { (*self.slot(index)).write(value) };
    }
}

struct Inner<T> {
    /// Next index thieves steal from.
    top: AtomicIsize,
    /// Next index the owner pushes to. Only the owner stores (except
    /// the transient reservation in the LIFO pop).
    bottom: AtomicIsize,
    /// The live ring; swapped (never shrunk) by the owner on growth.
    buffer: AtomicPtr<Buffer<T>>,
    /// Seqlock over `buffer`: odd while a swap is in flight; any change
    /// across a thief's speculative read forces [`Steal::Retry`].
    version: AtomicUsize,
    /// Retired rings, kept alive for stragglers' speculative reads and
    /// deallocated when the deque drops. Touched only on growth (cold).
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: `Inner` is shared across threads by design; every cross-
// thread access to the slots goes through the atomic top/bottom/version
// protocol above (raw pointers and `UnsafeCell` merely suppress the
// auto-traits). Element values move between threads, hence `T: Send`;
// no `&T` is ever handed out, so `T: Sync` is not required.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: as above — `&Inner` methods synchronize via atomics/seqlock.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    fn new() -> Inner<T> {
        Inner {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
            version: AtomicUsize::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Owner-only: push at the bottom, growing the ring when full.
    fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        // SAFETY: only the owner swaps `buffer`, so the pointer it just
        // loaded is the live ring, not a retired one.
        if b.wrapping_sub(t) as usize >= unsafe { (*buf).cap() } {
            buf = self.grow(t, b, buf);
        }
        // SAFETY: owner-only call; slot `b` is outside the live window
        // `top..bottom` until the release store below publishes it.
        unsafe { (*buf).write(b, value) };
        // Publish: the slot write happens-before any thief that
        // observes the new bottom.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: double the ring, raw-copying the live window. The
    /// old ring is retired, not freed — thieves mid-read keep valid
    /// memory, and the seqlock retries any read that spans the swap.
    fn grow(&self, t: isize, b: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        // SAFETY: `old` is the live ring (owner-only swaps); it stays
        // allocated until the deque drops (retired list), so reading
        // its header and raw-copying the live window `t..b` into the
        // fresh ring is inbounds. The copy duplicates bits, not values:
        // exactly one ring is ever `read` for a given index, so no
        // element is materialized twice (retired rings are deallocated
        // without dropping slots — see `Drop for Inner`).
        let new = Buffer::alloc(unsafe { (*old).cap() } * 2);
        unsafe {
            for i in t..b {
                std::ptr::copy_nonoverlapping((*old).slot(i), (*new).slot(i), 1);
            }
        }
        self.version.fetch_add(1, Ordering::AcqRel); // odd: swap in flight
        self.buffer.store(new, Ordering::Release);
        self.version.fetch_add(1, Ordering::Release); // even: swap done
        lock(&self.retired).push(old);
        new
    }

    /// Thief path (also the owner's FIFO pop): race a CAS on `top`.
    fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` load before the `bottom` load (the SeqCst
        // pair of the canonical algorithm).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let v = self.version.load(Ordering::Acquire);
        if v & 1 == 1 {
            return Steal::Retry; // buffer swap in flight
        }
        let buf = self.buffer.load(Ordering::Acquire);
        // SAFETY: speculative read. `buf` stays allocated (retired, not
        // freed, until the deque drops) even if a swap lands mid-read;
        // the slot was initialized because `t < b` was published by the
        // owner's release store and the even-version check above orders
        // the load after the copy. The value is forgotten — never
        // dropped or returned — unless the version recheck and the
        // `top` CAS below both certify exclusive ownership.
        let value = unsafe { (*buf).read(t) };
        if self.version.load(Ordering::Acquire) != v {
            std::mem::forget(value);
            return Steal::Retry; // read overlapped a swap
        }
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            std::mem::forget(value);
            return Steal::Retry; // another consumer took index t
        }
        Steal::Success(value)
    }

    /// Owner-only LIFO pop: take the bottom element, racing thieves
    /// (via `top`) only when it is the last one.
    fn pop_lifo(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        // Reserve the bottom slot before inspecting `top`.
        self.bottom.store(b, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t > b {
            // Empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::SeqCst);
            return None;
        }
        // SAFETY: owner-only path, so `buf` is the live ring and slot
        // `b` is the initialized bottom element (`t <= b` checked
        // above). Thieves cannot pass the reserved `bottom`; the only
        // contended case is `t == b`, where the CAS below decides the
        // unique owner and the loser forgets the duplicate.
        let value = unsafe { (*buf).read(b) };
        if t == b {
            // Last element: exactly one of {owner, some thief} wins the
            // CAS and materializes the value.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::SeqCst);
            if !won {
                std::mem::forget(value);
                return None;
            }
        }
        Some(value)
    }

    /// Owner's FIFO pop: same end as thieves; retries lost races until
    /// success or observed-empty.
    fn pop_fifo(&self) -> Option<T> {
        loop {
            match self.steal() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                // Under the model a spin hint is a voluntary yield, so
                // this retry loop cannot livelock the DFS driver.
                #[cfg(snet_check)]
                Steal::Retry => snet_check::hint::spin_loop(),
                #[cfg(not(snet_check))]
                Steal::Retry => std::hint::spin_loop(),
            }
        }
    }

    fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        b.saturating_sub(t).max(0) as usize
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        let buf = *self.buffer.get_mut();
        // SAFETY: `&mut self` means no other handle exists — no thief
        // is mid-read. Unconsumed elements (`t..b`) live only in the
        // current ring, so dropping them there and then deallocating
        // every ring drops each element exactly once; retired rings
        // hold consumed-or-duplicated bits and are freed without
        // touching their slots. All pointers came from `Box::into_raw`
        // in `Buffer::alloc`.
        unsafe {
            // Unconsumed elements live in the current ring only.
            for i in t..b {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
            // Retired rings hold consumed-or-duplicated raw slots:
            // deallocate without dropping elements.
            for old in lock(&self.retired).drain(..) {
                drop(Box::from_raw(old));
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Flavor {
    Fifo,
    Lifo,
}

/// The owner end of a work-stealing deque. `Send` but deliberately not
/// `Sync`: exactly one thread pushes and pops the owner end.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    flavor: Flavor,
    /// Suppresses `Sync` (single-owner invariant) while keeping `Send`.
    _not_sync: PhantomData<Cell<()>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO deque: the owner pops the end thieves steal from,
    /// so tasks leave in push order regardless of who takes them.
    pub fn new_fifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Inner::new()),
            flavor: Flavor::Fifo,
            _not_sync: PhantomData,
        }
    }

    /// Creates a LIFO deque: the classic Chase–Lev owner end (depth-
    /// first own work, breadth-first stealing).
    pub fn new_lifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Inner::new()),
            flavor: Flavor::Lifo,
            _not_sync: PhantomData,
        }
    }

    /// Pushes a task onto the owner's end. Lock-free; never blocks.
    pub fn push(&self, task: T) {
        self.inner.push(task);
    }

    /// Pops a task from the owner's end (flavor-dependent).
    pub fn pop(&self) -> Option<T> {
        match self.flavor {
            Flavor::Fifo => self.inner.pop_fifo(),
            Flavor::Lifo => self.inner.pop_lifo(),
        }
    }

    /// Is the deque currently (approximately) empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of queued tasks (a racy snapshot).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Creates a thief handle.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A thief handle onto another worker's deque.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal the oldest task. [`Steal::Retry`] signals a
    /// lost race, not emptiness.
    pub fn steal(&self) -> Steal<T> {
        self.inner.steal()
    }

    /// Is the observed deque (approximately) empty?
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Steals a batch — up to half the victim's observed backlog,
    /// capped — pushing all but the first task into `dest` and
    /// returning the first. Matches the real crate's batch-steal API;
    /// implemented as a CAS-per-element loop over the same lock-free
    /// steal path, so a lost race mid-batch just ends the batch early.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        const MAX_BATCH: usize = 32;
        let want = (self.inner.len() / 2).clamp(1, MAX_BATCH);
        let first = match self.inner.steal() {
            Steal::Success(t) => t,
            other => return other,
        };
        for _ in 1..want {
            match self.inner.steal() {
                Steal::Success(t) => dest.push(t),
                _ => break,
            }
        }
        Steal::Success(first)
    }
}

/// A global FIFO injection queue shared by the whole pool. Mutex-backed
/// by design: it only carries the cold path (initial feed, contended
/// requeues), while per-record hand-off rides the lock-free deques.
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Attempts to take one task.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Is the injector empty?
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_owner_and_thief() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Success(3));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn lifo_owner_pops_newest_thief_steals_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn growth_preserves_every_element() {
        // Push far past MIN_CAP without consuming: multiple growths.
        let w = Worker::new_fifo();
        for i in 0..10 * MIN_CAP {
            w.push(i);
        }
        let mut got = Vec::new();
        while let Some(v) = w.pop() {
            got.push(v);
        }
        assert_eq!(got, (0..10 * MIN_CAP).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_wraps_the_ring() {
        // Net occupancy stays tiny while indices run far past MIN_CAP,
        // forcing ring wraparound without growth.
        let w = Worker::new_fifo();
        let mut next = 0u64;
        for i in 0..1000u64 {
            w.push(i);
            if i % 2 == 0 {
                assert_eq!(w.pop(), Some(next));
                next += 1;
            }
        }
        while let Some(v) = w.pop() {
            assert_eq!(v, next);
            next += 1;
        }
        assert_eq!(next, 1000);
    }

    #[test]
    fn drops_unconsumed_elements_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let w = Worker::new_fifo();
            // Cross a growth boundary so retired buffers hold duplicated
            // raw slots; they must not be double-dropped.
            for _ in 0..3 * MIN_CAP {
                w.push(D);
            }
            for _ in 0..MIN_CAP {
                drop(w.pop());
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3 * MIN_CAP);
    }

    #[test]
    fn injector_feeds_many() {
        let inj = Injector::new();
        for i in 0..5 {
            inj.push(i);
        }
        let mut got = Vec::new();
        while let Steal::Success(v) = inj.steal() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
