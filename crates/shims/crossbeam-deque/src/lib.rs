//! Offline shim for `crossbeam-deque`.
//!
//! Mutex-backed FIFO deques with the `Worker`/`Stealer`/`Injector`
//! API. The real crate's lock-free Chase–Lev deque is strictly faster
//! under contention; this shim preserves the exact semantics (owner
//! pushes/pops its own queue, thieves steal the opposite end, a global
//! injector feeds the pool) so the scheduler code is unchanged when the
//! real crate is vendored.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// A race occurred; retry. (Never produced by this shim, but kept
    /// so scheduler loops are written against the real contract.)
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Did the attempt come up empty?
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// The owner end of a work-stealing deque.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO deque (owner pops the front it pushes to the back;
    /// thieves steal from the front as well, preserving FIFO order).
    pub fn new_fifo() -> Worker<T> {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Pops a task from the owner's end.
    pub fn pop(&self) -> Option<T> {
        lock(&self.inner).pop_front()
    }

    /// Is the deque currently empty?
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Creates a thief handle.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A thief handle onto another worker's deque.
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal one task.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Is the observed deque empty?
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }
}

/// A global FIFO injection queue shared by the whole pool.
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Injector<T> {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Attempts to take one task.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Is the injector empty?
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_owner_and_thief() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Success(3));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_feeds_many() {
        let inj = Injector::new();
        for i in 0..5 {
            inj.push(i);
        }
        let mut got = Vec::new();
        while let Steal::Success(v) = inj.steal() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
