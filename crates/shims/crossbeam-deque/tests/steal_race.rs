//! Interleaving tests for the Chase–Lev deque's push/pop/steal races.
//!
//! There is no `loom` in the offline image, so instead of exhaustive
//! model checking these tests *drive* the racy interleavings directly:
//! a spin barrier releases both threads into the critical section at
//! once and the race is replayed thousands of times, which in practice
//! visits every schedule of the two-instruction windows that matter
//! (the last-element `top` CAS and the growth/steal seqlock overlap).
//! Every test asserts the exactly-once invariant: each pushed element
//! is consumed by precisely one side, none lost, none duplicated.

use crossbeam_deque::{Steal, Stealer, Worker};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

/// Replays the 2-thread last-element race: the owner pops while one
/// thief steals a deque holding exactly one element. Exactly one side
/// must win, on every replay, in both flavors.
#[test]
fn two_thread_last_element_race_is_exactly_once() {
    for lifo in [false, true] {
        const ROUNDS: usize = 4_000;
        let w = if lifo {
            Worker::new_lifo()
        } else {
            Worker::new_fifo()
        };
        let s = w.stealer();
        let barrier = Arc::new(Barrier::new(2));
        let stolen = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicBool::new(false));

        let thief = {
            let barrier = Arc::clone(&barrier);
            let stolen = Arc::clone(&stolen);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                    // Race window: spin until the element is consumed by
                    // either side.
                    loop {
                        match s.steal() {
                            Steal::Success(_) => {
                                stolen.fetch_add(1, Ordering::SeqCst);
                                break;
                            }
                            Steal::Retry => continue,
                            Steal::Empty => {
                                if done.load(Ordering::SeqCst) {
                                    break; // owner won this round
                                }
                            }
                        }
                    }
                    barrier.wait();
                }
            })
        };

        let mut popped = 0usize;
        for round in 0..ROUNDS {
            w.push(round);
            done.store(false, Ordering::SeqCst);
            barrier.wait();
            if w.pop().is_some() {
                popped += 1;
            }
            done.store(true, Ordering::SeqCst);
            barrier.wait();
            // Between rounds the deque must be empty: the round's single
            // element went to exactly one side.
            assert_eq!(
                w.pop(),
                None,
                "round {round} left a duplicate (lifo={lifo})"
            );
        }
        thief.join().unwrap();
        assert_eq!(
            popped + stolen.load(Ordering::SeqCst),
            ROUNDS,
            "lost or duplicated elements (lifo={lifo})"
        );
        // Sanity: the race was real — neither side won every round.
        // (Statistically impossible over 4k barrier-released rounds
        // unless one path is broken and always loses.)
        assert!(popped > 0, "owner never won the race (lifo={lifo})");
        assert!(
            stolen.load(Ordering::SeqCst) > 0,
            "thief never won the race (lifo={lifo})"
        );
    }
}

/// The 3-thread last-element race: the owner pops while TWO thieves
/// steal a deque holding exactly one element, so the `top` CAS has
/// three contenders (and thief-vs-thief losers must also forget their
/// speculative copy). Exactly one of the three sides must win each
/// round, in both flavors.
#[test]
fn three_thread_last_element_race_is_exactly_once() {
    for lifo in [false, true] {
        const ROUNDS: usize = 2_000;
        const THIEVES: usize = 2;
        let w = if lifo {
            Worker::new_lifo()
        } else {
            Worker::new_fifo()
        };
        let barrier = Arc::new(Barrier::new(1 + THIEVES));
        let stolen = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicBool::new(false));

        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = w.stealer();
                let barrier = Arc::clone(&barrier);
                let stolen = Arc::clone(&stolen);
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        barrier.wait();
                        loop {
                            match s.steal() {
                                Steal::Success(_) => {
                                    stolen.fetch_add(1, Ordering::SeqCst);
                                    break;
                                }
                                Steal::Retry => continue,
                                Steal::Empty => {
                                    if done.load(Ordering::SeqCst) {
                                        break; // someone else won this round
                                    }
                                }
                            }
                        }
                        barrier.wait();
                    }
                })
            })
            .collect();

        let mut popped = 0usize;
        for round in 0..ROUNDS {
            w.push(round);
            done.store(false, Ordering::SeqCst);
            barrier.wait();
            if w.pop().is_some() {
                popped += 1;
            }
            done.store(true, Ordering::SeqCst);
            barrier.wait();
            assert_eq!(
                w.pop(),
                None,
                "round {round} left a duplicate (lifo={lifo})"
            );
        }
        for t in thieves {
            t.join().unwrap();
        }
        assert_eq!(
            popped + stolen.load(Ordering::SeqCst),
            ROUNDS,
            "lost or duplicated elements (lifo={lifo})"
        );
        assert!(popped > 0, "owner never won the race (lifo={lifo})");
        assert!(
            stolen.load(Ordering::SeqCst) > 0,
            "thieves never won the race (lifo={lifo})"
        );
    }
}

/// Concurrent stealers against an owner that pushes bursts (forcing
/// repeated buffer growth from the tiny initial capacity) and pops in
/// between. Every element must be consumed exactly once.
#[test]
fn concurrent_steal_with_growth_consumes_each_exactly_once() {
    const N: usize = 200_000;
    const THIEVES: usize = 3;
    let w = Worker::new_fifo();
    let seen: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
    let done = Arc::new(AtomicBool::new(false));

    let thieves: Vec<_> = (0..THIEVES)
        .map(|_| {
            let s: Stealer<usize> = w.stealer();
            let seen = Arc::clone(&seen);
            let done = Arc::clone(&done);
            thread::spawn(move || loop {
                match s.steal() {
                    Steal::Success(v) => {
                        let prev = seen[v].fetch_add(1, Ordering::SeqCst);
                        assert_eq!(prev, 0, "element {v} consumed twice");
                    }
                    Steal::Retry => {}
                    Steal::Empty => {
                        if done.load(Ordering::SeqCst) {
                            return;
                        }
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let mut i = 0usize;
    while i < N {
        // Bursts larger than the current ring force growth while the
        // thieves are mid-steal; interleaved owner pops exercise the
        // FIFO owner/thief shared end.
        let burst = 64.min(N - i);
        for _ in 0..burst {
            w.push(i);
            i += 1;
        }
        for _ in 0..8 {
            if let Some(v) = w.pop() {
                let prev = seen[v].fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev, 0, "element {v} consumed twice (owner)");
            }
        }
    }
    // Drain what the thieves haven't taken yet.
    while let Some(v) = w.pop() {
        let prev = seen[v].fetch_add(1, Ordering::SeqCst);
        assert_eq!(prev, 0, "element {v} consumed twice (drain)");
    }
    done.store(true, Ordering::SeqCst);
    for t in thieves {
        t.join().unwrap();
    }
    for (v, flag) in seen.iter().enumerate() {
        assert_eq!(flag.load(Ordering::SeqCst), 1, "element {v} lost");
    }
}

/// LIFO owner racing thieves: the owner's depth-first pop shares only
/// the last element with thieves; under constant churn nothing may be
/// lost or duplicated.
#[test]
fn lifo_owner_churn_against_thieves() {
    const N: usize = 100_000;
    let w: Worker<usize> = Worker::new_lifo();
    let seen: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
    let done = Arc::new(AtomicBool::new(false));

    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let s = w.stealer();
            let seen = Arc::clone(&seen);
            let done = Arc::clone(&done);
            thread::spawn(move || loop {
                match s.steal() {
                    Steal::Success(v) => {
                        let prev = seen[v].fetch_add(1, Ordering::SeqCst);
                        assert_eq!(prev, 0, "element {v} consumed twice");
                    }
                    Steal::Retry => {}
                    Steal::Empty => {
                        if done.load(Ordering::SeqCst) {
                            return;
                        }
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();

    // Keep occupancy near zero so nearly every pop races the thieves
    // for the last element.
    for v in 0..N {
        w.push(v);
        if let Some(got) = w.pop() {
            let prev = seen[got].fetch_add(1, Ordering::SeqCst);
            assert_eq!(prev, 0, "element {got} consumed twice (owner)");
        }
    }
    while let Some(got) = w.pop() {
        let prev = seen[got].fetch_add(1, Ordering::SeqCst);
        assert_eq!(prev, 0, "element {got} consumed twice (drain)");
    }
    done.store(true, Ordering::SeqCst);
    for t in thieves {
        t.join().unwrap();
    }
    for (v, flag) in seen.iter().enumerate() {
        assert_eq!(flag.load(Ordering::SeqCst), 1, "element {v} lost");
    }
}

/// Heap-owning elements across growth + concurrent steals: exercised
/// under the exactly-once counters above this additionally ensures (via
/// `String`'s allocator invariants + the final length check) that raw
/// buffer duplication never double-frees or leaks.
#[test]
fn owned_elements_survive_growth_and_steals_intact() {
    const N: usize = 50_000;
    let w: Worker<String> = Worker::new_fifo();
    let s = w.stealer();
    let collected = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let thief = {
        let collected = Arc::clone(&collected);
        let done = Arc::clone(&done);
        thread::spawn(move || loop {
            match s.steal() {
                Steal::Success(v) => {
                    assert!(v.starts_with("rec-"));
                    collected.fetch_add(1, Ordering::SeqCst);
                }
                Steal::Retry => {}
                Steal::Empty => {
                    if done.load(Ordering::SeqCst) {
                        return;
                    }
                }
            }
        })
    };
    for i in 0..N {
        w.push(format!("rec-{i}"));
        if i % 5 == 0 {
            if let Some(v) = w.pop() {
                assert!(v.starts_with("rec-"));
                collected.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    while let Some(v) = w.pop() {
        assert!(v.starts_with("rec-"));
        collected.fetch_add(1, Ordering::SeqCst);
    }
    done.store(true, Ordering::SeqCst);
    thief.join().unwrap();
    assert_eq!(collected.load(Ordering::SeqCst), N);
}
