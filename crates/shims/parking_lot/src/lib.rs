//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API the
//! workspace uses: non-poisoning `lock()`/`read()`/`write()` that return
//! guards directly. Poisoned locks are recovered transparently (the
//! workspace treats a panicked critical section as survivable, exactly
//! like the real parking_lot).
//!
//! Under `--cfg snet_check` the mutex core is swapped for the
//! `snet-check` model mutex, so code locking through this shim (the
//! sched mailbox path) runs under the deterministic model scheduler.
//! `RwLock` stays `std` in both builds — nothing model-checked uses it.

use std::sync::{self, PoisonError};

#[cfg(snet_check)]
use snet_check::sync as imp;
#[cfg(not(snet_check))]
use std::sync as imp;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(imp::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = imp::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(imp::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(imp::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(imp::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return a `Result`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7; // must not panic
        assert_eq!(*m.lock(), 7);
    }
}
