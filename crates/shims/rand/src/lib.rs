//! Offline shim for `rand`.
//!
//! A deterministic xoshiro256++ generator behind the `Rng` /
//! `SeedableRng` / `rngs::StdRng` names the workspace uses. The stream
//! differs from the real `StdRng` (which is explicitly *not* a stable
//! contract in rand either); everything downstream only requires
//! determinism for a fixed seed within this workspace, which holds.

/// Uniform sampling support for the types the workspace draws.
pub trait SampleUniform: Sized {
    /// Draws a value in `[low, high)`.
    fn sample(rng: &mut impl RngCore, low: Self, high: Self) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for any generator.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Constructs a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SampleUniform for f64 {
    fn sample(rng: &mut impl RngCore, low: f64, high: f64) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + u * (high - low)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut impl RngCore, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range requires low < high");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(i32, i64, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [a, b, c, d] = self.s;
            let result = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
            let t = b << 17;
            let mut s = [a, b, c, d];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(2010);
        let mut b = StdRng::seed_from_u64(2010);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-10.0..10.0);
            assert!((-10.0..10.0).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
