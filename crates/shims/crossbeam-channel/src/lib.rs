//! Offline shim for `crossbeam-channel`.
//!
//! A Mutex + Condvar MPMC channel with the semantics the workspace
//! relies on:
//!
//! * `bounded(n)` blocks senders when `n` messages are queued;
//!   `unbounded()` never blocks senders;
//! * `send` fails (returning the message) once every receiver is gone;
//! * `recv` fails once every sender is gone *and* the queue is drained;
//! * dropping the last sender/receiver wakes all blocked peers.
//!
//! Not a lock-free implementation — correctness and API compatibility
//! over raw throughput; the workspace's hot path moved to the
//! work-stealing scheduler, which does not use channels for hand-off.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, PoisonError};

// Under `--cfg snet_check` the lock and the condvars come from the
// snet-check model scheduler, so `cargo test -p snet-check` explores
// interleavings of this *exact* implementation — notably the
// waiter-gated notify protocol (`recv_waiting`/`send_waiting`) whose
// PR-4 eaten-wakeup bug stress tests missed. Note the timed entry
// points (`send_timeout`/`recv_timeout`) branch on `Instant::now` and
// cannot be modeled; models use the untimed `send`/`recv`.
#[cfg(snet_check)]
use snet_check::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(snet_check))]
use std::sync::{Condvar, Mutex, MutexGuard};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
    /// Receivers currently blocked in `recv`/`recv_timeout`. Senders
    /// skip the `readable` notify syscall when nobody is waiting —
    /// the same parked-thread gating the real crossbeam implements —
    /// which matters on record-at-a-time hand-off paths.
    recv_waiting: usize,
    /// Senders currently blocked on a full bounded queue; receivers
    /// skip the `writable` notify symmetrically.
    send_waiting: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message arrives or the last sender leaves.
    readable: Condvar,
    /// Signalled when space frees up or the last receiver leaves.
    writable: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Error returned by [`Sender::send`] when all receivers are gone;
/// carries the undelivered message.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty but senders remain.
    Empty,
    /// Channel empty and all senders gone.
    Disconnected,
}

/// Error returned by [`Sender::try_send`]; carries the undelivered
/// message.
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "TrySendError::Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "TrySendError::Disconnected(..)"),
        }
    }
}

/// Error returned by [`Sender::send_timeout`]; carries the undelivered
/// message.
#[derive(PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// No space freed up within the timeout; receivers remain.
    Timeout(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => write!(f, "SendTimeoutError::Timeout(..)"),
            SendTimeoutError::Disconnected(_) => write!(f, "SendTimeoutError::Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout; senders remain.
    Timeout,
    /// Channel empty and all senders gone.
    Disconnected,
}

/// The sending half of a channel. Clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clonable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel with capacity `cap` (0 is treated as 1: true
/// rendezvous channels are not used by this workspace).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

/// Creates a channel with unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
            recv_waiting: 0,
            send_waiting: 0,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends every message from `iter`, acquiring the channel lock once
    /// per *chunk* (and once per capacity window within a chunk)
    /// instead of once per message, and waking receivers once per
    /// window instead of once per message.
    ///
    /// Blocks (like [`Sender::send`]) whenever the bounded queue is
    /// full. If every receiver disconnects mid-send, the error carries
    /// the undelivered remainder (messages already enqueued stay
    /// delivered).
    pub fn send_iter<I>(&self, iter: I) -> Result<(), SendError<Vec<T>>>
    where
        I: IntoIterator<Item = T>,
    {
        // The caller's iterator runs arbitrary code, so it is never
        // advanced while the channel lock is held (it could touch this
        // very channel, and std's mutex is not reentrant): items are
        // pulled into a local chunk first, then delivered.
        const CHUNK: usize = 64;
        let mut it = iter.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(CHUNK).collect();
            let mut chunk_it = chunk.into_iter();
            // Invariant: never wait for space without an undelivered
            // message in hand. Each `writable` notification is a
            // one-slot token; a sender that consumed one and returned
            // without pushing would strand the freed slot while its
            // sibling senders (and then the receiver, on the emptied
            // queue) sleep forever.
            let Some(mut pending) = chunk_it.next() else {
                return Ok(());
            };
            let mut st = self.shared.lock();
            let mut queued = 0usize;
            loop {
                if st.receivers == 0 {
                    let wake = queued > 0 && st.recv_waiting > 0;
                    drop(st);
                    if wake {
                        self.shared.readable.notify_all();
                    }
                    let mut rest = vec![pending];
                    rest.extend(chunk_it);
                    rest.extend(it);
                    return Err(SendError(rest));
                }
                if st.cap.is_some_and(|c| st.queue.len() >= c) {
                    // Full: publish the window queued so far, then wait
                    // for space. notify_all because a window may
                    // satisfy many parked receivers at once.
                    if queued > 0 && st.recv_waiting > 0 {
                        self.shared.readable.notify_all();
                    }
                    queued = 0;
                    st.send_waiting += 1;
                    st = self
                        .shared
                        .writable
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                    st.send_waiting -= 1;
                    continue;
                }
                st.queue.push_back(pending);
                queued += 1;
                match chunk_it.next() {
                    Some(v) => pending = v,
                    None => break,
                }
            }
            let wake = queued > 0 && st.recv_waiting > 0;
            drop(st);
            if wake {
                self.shared.readable.notify_all();
            }
        }
    }

    /// Is the bounded queue currently at capacity? (Unbounded channels
    /// are never full.)
    pub fn is_full(&self) -> bool {
        let st = self.shared.lock();
        st.cap.is_some_and(|c| st.queue.len() >= c)
    }

    /// Shim extension (not part of crossbeam's API; callers must treat
    /// it as `try_send` in a loop, which is the drop-in replacement if
    /// the real crate is ever vendored): moves as many items as fit
    /// from the front of `src` into the queue under **one** lock with
    /// at most **one** receiver wake. One wake per window instead of
    /// one per record matters on a loaded single-core host, where every
    /// wake lets the consumer preempt the producer mid-window.
    /// Returns the number delivered; `Err` when every receiver is gone
    /// (items stay in `src`).
    pub fn try_send_front(&self, src: &mut Vec<T>) -> Result<usize, SendError<()>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(SendError(()));
        }
        let room = match st.cap {
            Some(c) => c.saturating_sub(st.queue.len()),
            None => src.len(),
        };
        let n = room.min(src.len());
        st.queue.extend(src.drain(..n));
        let wake = n > 0 && st.recv_waiting > 0;
        drop(st);
        if wake {
            self.shared.readable.notify_all();
        }
        Ok(n)
    }

    /// Non-blocking send: fails with [`TrySendError::Full`] instead of
    /// waiting when the bounded queue is at capacity.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if st.cap.is_some_and(|c| st.queue.len() >= c) {
            return Err(TrySendError::Full(value));
        }
        st.queue.push_back(value);
        let wake = st.recv_waiting > 0;
        drop(st);
        if wake {
            self.shared.readable.notify_one();
        }
        Ok(())
    }

    /// Blocks until the message is enqueued, every receiver is gone, or
    /// `timeout` elapses (returning the message in the latter cases).
    pub fn send_timeout(
        &self,
        value: T,
        timeout: std::time::Duration,
    ) -> Result<(), SendTimeoutError<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            if st.cap.is_none_or(|c| st.queue.len() < c) {
                st.queue.push_back(value);
                let wake = st.recv_waiting > 0;
                drop(st);
                if wake {
                    self.shared.readable.notify_one();
                }
                return Ok(());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(value));
            }
            st.send_waiting += 1;
            let (guard, _) = self
                .shared
                .writable
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            st.send_waiting -= 1;
        }
    }

    /// Blocks until the message is enqueued or every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            let full = st.cap.is_some_and(|c| st.queue.len() >= c);
            if !full {
                st.queue.push_back(value);
                let wake = st.recv_waiting > 0;
                drop(st);
                if wake {
                    self.shared.readable.notify_one();
                }
                return Ok(());
            }
            st.send_waiting += 1;
            st = self
                .shared
                .writable
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
            st.send_waiting -= 1;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let last = {
            let mut st = self.shared.lock();
            st.senders -= 1;
            st.senders == 0
        };
        if last {
            // Receivers blocked on an empty queue must observe EOS.
            self.shared.readable.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message is available or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                let wake = st.send_waiting > 0;
                drop(st);
                if wake {
                    self.shared.writable.notify_one();
                }
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st.recv_waiting += 1;
            st = self
                .shared
                .readable
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
            st.recv_waiting -= 1;
        }
    }

    /// Blocks until a message is available, the channel disconnects, or
    /// `timeout` elapses.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                let wake = st.send_waiting > 0;
                drop(st);
                if wake {
                    self.shared.writable.notify_one();
                }
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            st.recv_waiting += 1;
            let (guard, _) = self
                .shared
                .readable
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            st.recv_waiting -= 1;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        match st.queue.pop_front() {
            Some(v) => {
                let wake = st.send_waiting > 0;
                drop(st);
                if wake {
                    self.shared.writable.notify_one();
                }
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking iterator over received messages; ends at disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Is the queue currently empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let last = {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            st.receivers == 0
        };
        if last {
            // Senders blocked on a full queue must observe the failure.
            self.shared.writable.notify_all();
        }
    }
}

/// Borrowing blocking iterator (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning blocking iterator.
pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_and_eos() {
        let (tx, rx) = bounded(2);
        let t = thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2));
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn multiple_senders_disconnect_only_when_all_gone() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_states() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_iter_unbounded_is_one_shot() {
        let (tx, rx) = unbounded::<u32>();
        tx.send_iter(0..100).unwrap();
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_iter_blocks_on_bounded_and_preserves_order() {
        let (tx, rx) = bounded::<u32>(4);
        let t = thread::spawn(move || tx.send_iter(0..64));
        let got: Vec<u32> = rx.iter().collect();
        t.join().unwrap().unwrap();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn send_iter_returns_remainder_on_disconnect() {
        let (tx, rx) = bounded::<u32>(2);
        let t = thread::spawn(move || tx.send_iter(0..10));
        // Take two, then hang up: the sender must fail with the
        // undelivered tail (whatever had not been enqueued yet).
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        let err = t.join().unwrap().unwrap_err();
        let SendError(rest) = err;
        assert!(!rest.is_empty());
        assert_eq!(*rest.last().unwrap(), 9, "tail preserved in order");
    }

    #[test]
    fn send_iter_empty_returns_without_blocking_on_a_full_queue() {
        // Regression: an exhausted/empty iterator must never wait for
        // space it will not use — a woken sender that returns without
        // pushing swallows the receiver's one-slot wakeup token and
        // deadlocks its sibling senders (then the receiver).
        let (tx, rx) = bounded::<u32>(1);
        tx.send(7).unwrap(); // queue now full
        tx.send_iter(std::iter::empty()).unwrap(); // must not block
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn contended_send_iter_senders_never_eat_each_others_wakeups() {
        // Many senders (batched and plain, some with empty batches)
        // funnel through a capacity-1 channel: every message must come
        // out. The pre-fix protocol wedged here within a few windows.
        let (tx, rx) = bounded::<u32>(1);
        const SENDERS: u32 = 4;
        const PER: u32 = 500;
        let handles: Vec<_> = (0..SENDERS)
            .map(|s| {
                let tx = tx.clone();
                thread::spawn(move || {
                    let base = s * PER;
                    for chunk in (0..PER).collect::<Vec<_>>().chunks(7) {
                        tx.send_iter(chunk.iter().map(|i| base + i)).unwrap();
                        tx.send_iter(std::iter::empty()).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got.len(), (SENDERS * PER) as usize);
        let mut sorted = got;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..SENDERS * PER).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_reports_full_then_disconnected() {
        let (tx, rx) = bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers_then_disconnects() {
        let d = std::time::Duration::from_millis(10);
        let (tx, rx) = bounded::<u32>(4);
        assert_eq!(rx.recv_timeout(d), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(d), Ok(9));
        drop(tx);
        assert_eq!(rx.recv_timeout(d), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn mpmc_consumes_each_message_once() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
