//! Offline shim for `smallvec` — with real inline storage.
//!
//! Exposes the `SmallVec<[T; N]>` type the workspace uses. The first
//! `N` elements live *inline* (no heap allocation); pushing past `N`
//! spills to a `Vec`, after which the vector behaves exactly like the
//! plain-`Vec` fallback this shim used to be. The flat, contiguous,
//! binary-searchable layout the record representation depends on holds
//! in both modes (`Deref<Target = [T]>` over either storage).
//!
//! Records carry at most a handful of fields and tags, so inline
//! storage turns the per-record allocation pair (fields + tags) into
//! zero heap traffic on the engines' hot hand-off path.
//!
//! The load-bearing invariant for every `unsafe` block below: in
//! `Store::Inline { len, buf }`, exactly the first `len` slots of
//! `buf` hold initialized `A::Item`s, and `len <= A::CAP`. Each block
//! carries a `SAFETY:` comment tying it back to this invariant
//! (enforced by `scripts/check_unsafe.py`); the drop-safety unit tests
//! below run under Miri in CI.

#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::ptr;

/// Marker trait tying `SmallVec<[T; N]>` syntax to an element type and
/// an inline capacity.
pub trait Array {
    /// Element type.
    type Item;
    /// Inline capacity.
    const CAP: usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const CAP: usize = N;
}

/// Either `CAP` inline slots or a spilled heap vector.
///
/// `MaybeUninit<A>` (i.e. `MaybeUninit<[T; N]>`) is raw storage for the
/// inline mode — only the first `len` slots are initialized. Using the
/// array type itself as the buffer sidesteps the unstable
/// `[MaybeUninit<T>; A::CAP]` const-generic form.
enum Store<A: Array> {
    Inline { len: usize, buf: MaybeUninit<A> },
    Heap(Vec<A::Item>),
}

/// A contiguous growable array storing its first
/// [`Array::CAP`] elements inline.
pub struct SmallVec<A: Array> {
    store: Store<A>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector (inline; no allocation).
    pub fn new() -> SmallVec<A> {
        SmallVec {
            store: Store::Inline {
                len: 0,
                buf: MaybeUninit::uninit(),
            },
        }
    }

    /// Creates an empty vector with at least `cap` capacity (inline if
    /// it fits, heap otherwise).
    pub fn with_capacity(cap: usize) -> SmallVec<A> {
        if cap <= A::CAP {
            SmallVec::new()
        } else {
            SmallVec {
                store: Store::Heap(Vec::with_capacity(cap)),
            }
        }
    }

    fn inline_ptr(buf: &MaybeUninit<A>) -> *const A::Item {
        buf.as_ptr() as *const A::Item
    }

    fn inline_ptr_mut(buf: &mut MaybeUninit<A>) -> *mut A::Item {
        buf.as_mut_ptr() as *mut A::Item
    }

    /// Moves the inline elements into a heap vector with room for at
    /// least `extra` more elements.
    fn spill(&mut self, extra: usize) {
        if let Store::Inline { len, buf } = &mut self.store {
            let n = *len;
            let mut vec = Vec::with_capacity((A::CAP * 2).max(n + extra).max(4));
            // SAFETY: the inline invariant says the first `n` slots of
            // `buf` are initialized, and the Vec was allocated with
            // capacity >= n, so the copy reads and writes in bounds and
            // `set_len(n)` covers exactly the moved prefix. `*len = 0`
            // below marks the moved-from slots as logically dead so the
            // replacement of `self.store` cannot double-drop them (the
            // old Inline variant's buffer is plain bytes once len is 0).
            unsafe {
                ptr::copy_nonoverlapping(Self::inline_ptr(buf), vec.as_mut_ptr(), n);
                vec.set_len(n);
            }
            *len = 0;
            self.store = Store::Heap(vec);
        }
    }

    /// Appends an element.
    pub fn push(&mut self, value: A::Item) {
        match &mut self.store {
            // SAFETY: the guard gives `*len < A::CAP`, so slot `*len`
            // is in bounds and (by the inline invariant) uninitialized;
            // `ptr::write` claims it without dropping stale bytes, and
            // the increment extends the initialized prefix over it.
            Store::Inline { len, buf } if *len < A::CAP => unsafe {
                ptr::write(Self::inline_ptr_mut(buf).add(*len), value);
                *len += 1;
            },
            Store::Inline { .. } => {
                self.spill(1);
                match &mut self.store {
                    Store::Heap(v) => v.push(value),
                    Store::Inline { .. } => unreachable!("just spilled"),
                }
            }
            Store::Heap(v) => v.push(value),
        }
    }

    /// Inserts an element at `index`, shifting the tail right.
    pub fn insert(&mut self, index: usize, value: A::Item) {
        match &mut self.store {
            Store::Inline { len, buf } if *len < A::CAP => {
                assert!(index <= *len, "insert index {index} out of bounds");
                // SAFETY: `index <= len < CAP` (assert + match guard),
                // so the shift's source `index..len` and destination
                // `index+1..len+1` are both within the CAP-slot buffer;
                // `ptr::copy` handles the overlap. Slot `index` then
                // holds a duplicate (moved-from) element, immediately
                // overwritten by `ptr::write` without dropping it.
                unsafe {
                    let p = Self::inline_ptr_mut(buf);
                    ptr::copy(p.add(index), p.add(index + 1), *len - index);
                    ptr::write(p.add(index), value);
                }
                *len += 1;
            }
            Store::Inline { .. } => {
                self.spill(1);
                self.insert(index, value);
            }
            Store::Heap(v) => v.insert(index, value),
        }
    }

    /// Removes and returns the element at `index`, shifting the tail
    /// left.
    pub fn remove(&mut self, index: usize) -> A::Item {
        match &mut self.store {
            Store::Inline { len, buf } => {
                assert!(index < *len, "remove index {index} out of bounds");
                // SAFETY: `index < len`, so slot `index` is initialized
                // and `ptr::read` moves it out; the overlapping shift
                // of `index+1..len` left by one re-covers the hole, and
                // the decrement un-claims the now-duplicated last slot
                // so it is never read or dropped again.
                unsafe {
                    let p = Self::inline_ptr_mut(buf);
                    let value = ptr::read(p.add(index));
                    ptr::copy(p.add(index + 1), p.add(index), *len - index - 1);
                    *len -= 1;
                    value
                }
            }
            Store::Heap(v) => v.remove(index),
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        match &mut self.store {
            Store::Inline { len, buf } => {
                let n = std::mem::replace(len, 0);
                // SAFETY: the first `n` slots were initialized, and
                // `len` was zeroed *before* dropping so a panicking
                // element Drop cannot lead to a second drop of the
                // prefix (the vector is already observably empty).
                unsafe {
                    ptr::drop_in_place(ptr::slice_from_raw_parts_mut(Self::inline_ptr_mut(buf), n));
                }
            }
            Store::Heap(v) => v.clear(),
        }
    }

    /// Removes the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        match &mut self.store {
            Store::Inline { len, buf } => {
                if *len == 0 {
                    return None;
                }
                *len -= 1;
                // SAFETY: pre-decrement `len >= 1`, so the slot at the
                // new `*len` is the initialized last element; the
                // decrement already un-claimed it, making this read the
                // unique move-out.
                Some(unsafe { ptr::read(Self::inline_ptr(buf).add(*len)) })
            }
            Store::Heap(v) => v.pop(),
        }
    }

    /// Keeps only elements satisfying the predicate.
    pub fn retain(&mut self, mut f: impl FnMut(&mut A::Item) -> bool) {
        match &mut self.store {
            Store::Heap(v) => v.retain_mut(f),
            Store::Inline { .. } => {
                // n ≤ CAP (a handful): the shifting remove is fine.
                let mut i = 0;
                while i < self.len() {
                    if f(&mut self[i]) {
                        i += 1;
                    } else {
                        drop(self.remove(i));
                    }
                }
            }
        }
    }

    /// Borrows the backing slice.
    pub fn as_slice(&self) -> &[A::Item] {
        self
    }

    /// `true` once the contents have spilled to the heap. Lets callers
    /// (and allocation tests) observe whether a short vector is still
    /// in its no-allocation inline mode.
    pub fn spilled(&self) -> bool {
        matches!(self.store, Store::Heap(_))
    }

    /// Constructs from a full inline array without allocating.
    pub fn from_buf(buf: A) -> SmallVec<A> {
        SmallVec {
            store: Store::Inline {
                len: A::CAP,
                buf: MaybeUninit::new(buf),
            },
        }
    }

    /// Constructs from a `Vec`, moving short contents inline and
    /// adopting the heap buffer otherwise.
    pub fn from_vec(vec: Vec<A::Item>) -> SmallVec<A> {
        if vec.len() <= A::CAP {
            let mut out = SmallVec::new();
            out.extend(vec);
            out
        } else {
            SmallVec {
                store: Store::Heap(vec),
            }
        }
    }

    /// Converts into a `Vec`, handing over the heap buffer when already
    /// spilled (inline contents are moved out, which allocates).
    pub fn into_vec(self) -> Vec<A::Item> {
        let this = std::mem::ManuallyDrop::new(self);
        // SAFETY: `this` is ManuallyDrop, so our own Drop (which would
        // drop the prefix a second time) never runs; this read is the
        // unique transfer of the store's ownership.
        match unsafe { ptr::read(&this.store) } {
            Store::Inline { len, buf } => {
                let mut vec = Vec::with_capacity(len);
                // SAFETY: first `len` slots of `buf` are initialized
                // and the Vec has capacity >= len; after the copy,
                // `buf` is dead bytes (local, plain `MaybeUninit`, no
                // Drop), so the elements are moved exactly once.
                unsafe {
                    ptr::copy_nonoverlapping(Self::inline_ptr(&buf), vec.as_mut_ptr(), len);
                    vec.set_len(len);
                }
                vec
            }
            Store::Heap(v) => v,
        }
    }
}

impl<A: Array> Drop for SmallVec<A> {
    fn drop(&mut self) {
        // Heap mode drops via the Vec; inline mode must drop the
        // initialized prefix explicitly.
        self.clear();
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    fn deref(&self) -> &[A::Item] {
        match &self.store {
            // SAFETY: the inline invariant — first `len` slots
            // initialized — is exactly the validity requirement of
            // `from_raw_parts`; the borrow of `self` keeps the buffer
            // alive and un-mutated for the slice's lifetime.
            Store::Inline { len, buf } => unsafe {
                std::slice::from_raw_parts(Self::inline_ptr(buf), *len)
            },
            Store::Heap(v) => v,
        }
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        match &mut self.store {
            // SAFETY: as in `deref`, plus the `&mut self` borrow makes
            // this the unique reference into the buffer.
            Store::Inline { len, buf } => unsafe {
                std::slice::from_raw_parts_mut(Self::inline_ptr_mut(buf), *len)
            },
            Store::Heap(v) => v,
        }
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        let mut out = SmallVec::with_capacity(self.len());
        for item in self.iter() {
            out.push(item.clone());
        }
        out
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self[..].fmt(f)
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        let mut v = SmallVec::new();
        v.extend(iter);
        v
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

/// Owning iterator over a [`SmallVec`]. Fields are private: the inline
/// variant's buffer/window pair is an ownership invariant (`next..len`
/// initialized), so safe construction from outside would be unsound.
pub struct IntoIter<A: Array> {
    inner: IntoIterInner<A>,
}

enum IntoIterInner<A: Array> {
    /// Inline mode: the raw buffer plus the un-consumed window
    /// `next..len`. Dropped without being fully consumed, the window's
    /// remaining elements are dropped in place.
    Inline {
        buf: MaybeUninit<A>,
        next: usize,
        len: usize,
    },
    /// Spilled mode: the heap vector's own iterator.
    Heap(std::vec::IntoIter<A::Item>),
}

impl<A: Array> Iterator for IntoIter<A> {
    type Item = A::Item;

    fn next(&mut self) -> Option<A::Item> {
        match &mut self.inner {
            IntoIterInner::Inline { buf, next, len } => {
                if next < len {
                    let p = buf.as_ptr() as *const A::Item;
                    // SAFETY: the iterator invariant is that slots
                    // `next..len` are initialized and owned by the
                    // iterator; `next < len` puts this slot in that
                    // window, and the increment removes it from the
                    // window before anything can read it again.
                    let value = unsafe { ptr::read(p.add(*next)) };
                    *next += 1;
                    Some(value)
                } else {
                    None
                }
            }
            IntoIterInner::Heap(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            IntoIterInner::Inline { next, len, .. } => {
                let n = *len - *next;
                (n, Some(n))
            }
            IntoIterInner::Heap(it) => it.size_hint(),
        }
    }
}

impl<A: Array> Drop for IntoIter<A> {
    fn drop(&mut self) {
        if let IntoIterInner::Inline { buf, next, len } = &mut self.inner {
            // SAFETY: the un-consumed window `next..len` is exactly the
            // initialized, iterator-owned slots (see `next`); dropping
            // it in place drops each remaining element exactly once.
            // `next()` can never run again after Drop.
            unsafe {
                ptr::drop_in_place(ptr::slice_from_raw_parts_mut(
                    (buf.as_mut_ptr() as *mut A::Item).add(*next),
                    *len - *next,
                ));
            }
        }
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = IntoIter<A>;
    fn into_iter(self) -> IntoIter<A> {
        // Disassemble without running our Drop (the iterator takes over
        // ownership of the initialized prefix).
        let this = std::mem::ManuallyDrop::new(self);
        // SAFETY: `this` is ManuallyDrop so SmallVec's Drop never runs;
        // this read is the unique ownership transfer of the store into
        // the iterator, which assumes the drop obligation for the
        // `next..len` window (see `Drop for IntoIter`).
        let inner = match unsafe { ptr::read(&this.store) } {
            Store::Inline { len, buf } => IntoIterInner::Inline { buf, next: 0, len },
            Store::Heap(v) => IntoIterInner::Heap(v.into_iter()),
        };
        IntoIter { inner }
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Convenience constructor macro mirroring `smallvec::smallvec!`.
#[macro_export]
macro_rules! smallvec {
    ($($x:expr),* $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $(v.push($x);)*
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn push_insert_remove() {
        let mut v: SmallVec<[u32; 4]> = SmallVec::new();
        v.push(1);
        v.push(3);
        v.insert(1, 2);
        assert_eq!(&v[..], &[1, 2, 3]);
        assert_eq!(v.remove(0), 1);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn slice_ops_via_deref() {
        let mut v: SmallVec<[u32; 4]> = (0..10).collect();
        assert_eq!(v.binary_search(&7), Ok(7));
        v.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v[0], 9);
    }

    #[test]
    fn macro_and_eq() {
        let a: SmallVec<[i32; 2]> = smallvec![1, 2, 3];
        let b: SmallVec<[i32; 2]> = (1..=3).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn spills_past_inline_capacity_and_preserves_order() {
        let mut v: SmallVec<[String; 3]> = SmallVec::new();
        for i in 0..20 {
            v.push(format!("s{i}"));
            // Every intermediate state must read back correctly.
            assert_eq!(v.len(), i + 1);
            assert_eq!(v[i], format!("s{i}"));
        }
        let all: Vec<String> = v.into_iter().collect();
        assert_eq!(all, (0..20).map(|i| format!("s{i}")).collect::<Vec<_>>());
    }

    #[test]
    fn insert_remove_across_the_spill_boundary() {
        let mut v: SmallVec<[u32; 2]> = SmallVec::new();
        v.insert(0, 2);
        v.insert(0, 0); // inline, full
        v.insert(1, 1); // forces spill mid-insert
        assert_eq!(&v[..], &[0, 1, 2]);
        assert_eq!(v.remove(1), 1);
        assert_eq!(&v[..], &[0, 2]);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(0));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn retain_in_both_modes() {
        let mut inline: SmallVec<[u32; 8]> = (0..6).collect();
        inline.retain(|x| *x % 2 == 0);
        assert_eq!(&inline[..], &[0, 2, 4]);
        let mut heap: SmallVec<[u32; 2]> = (0..10).collect();
        heap.retain(|x| *x % 2 == 0);
        assert_eq!(&heap[..], &[0, 2, 4, 6, 8]);
    }

    /// Element with a drop counter: every constructed element must be
    /// dropped exactly once, in every storage mode and teardown path.
    struct Counted<'a>(&'a AtomicUsize);
    impl Drop for Counted<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn drops_exactly_once_inline_heap_and_partial_iter() {
        let drops = AtomicUsize::new(0);
        {
            let mut v: SmallVec<[Counted<'_>; 4]> = SmallVec::new();
            for _ in 0..3 {
                v.push(Counted(&drops)); // stays inline
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3, "inline drop-on-scope-exit");

        let drops = AtomicUsize::new(0);
        {
            let mut v: SmallVec<[Counted<'_>; 2]> = SmallVec::new();
            for _ in 0..6 {
                v.push(Counted(&drops)); // spills
            }
            drop(v.pop());
            v.clear();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 6, "heap pop+clear");

        let drops = AtomicUsize::new(0);
        {
            let mut v: SmallVec<[Counted<'_>; 4]> = SmallVec::new();
            for _ in 0..4 {
                v.push(Counted(&drops));
            }
            let mut it = v.into_iter();
            drop(it.next()); // consume one
                             // Drop the iterator with three elements unconsumed.
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            4,
            "partially consumed IntoIter"
        );

        let drops = AtomicUsize::new(0);
        {
            let mut v: SmallVec<[Counted<'_>; 4]> = SmallVec::new();
            for _ in 0..3 {
                v.push(Counted(&drops));
            }
            v.retain(|_| false);
            assert!(v.is_empty());
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3, "retain drops rejects once");
    }

    #[test]
    fn clone_is_deep_and_independent() {
        let mut a: SmallVec<[String; 2]> = smallvec!["x".to_owned(), "y".to_owned()];
        let b = a.clone();
        a.push("z".to_owned()); // spills a, not b
        assert_eq!(&b[..], &["x".to_owned(), "y".to_owned()]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn with_capacity_chooses_mode() {
        let small: SmallVec<[u8; 8]> = SmallVec::with_capacity(4);
        let big: SmallVec<[u8; 8]> = SmallVec::with_capacity(64);
        assert!(matches!(small.store, Store::Inline { .. }));
        assert!(matches!(big.store, Store::Heap(_)));
    }

    #[test]
    fn vec_conversions_round_trip_in_both_modes() {
        let inline: SmallVec<[String; 4]> =
            SmallVec::from_buf(["a".into(), "b".into(), "c".into(), "d".into()]);
        assert_eq!(inline.len(), 4);
        assert_eq!(inline.into_vec(), vec!["a", "b", "c", "d"]);

        let short: SmallVec<[u32; 4]> = SmallVec::from_vec(vec![1, 2]);
        assert!(matches!(short.store, Store::Inline { .. }));
        assert_eq!(short.into_vec(), vec![1, 2]);

        let long: SmallVec<[u32; 2]> = SmallVec::from_vec(vec![1, 2, 3, 4]);
        assert!(matches!(long.store, Store::Heap(_)));
        assert_eq!(long.into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn conversions_drop_exactly_once() {
        let drops = AtomicUsize::new(0);
        {
            let v: SmallVec<[Counted<'_>; 2]> =
                SmallVec::from_buf([Counted(&drops), Counted(&drops)]);
            let back = v.into_vec();
            assert_eq!(back.len(), 2);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 2, "from_buf → into_vec");

        let drops = AtomicUsize::new(0);
        {
            let v: SmallVec<[Counted<'_>; 2]> =
                SmallVec::from_vec(vec![Counted(&drops), Counted(&drops), Counted(&drops)]);
            drop(v);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3, "from_vec heap mode");
    }

    #[test]
    fn zero_capacity_array_spills_immediately() {
        let mut v: SmallVec<[u32; 0]> = SmallVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(&v[..], &[1, 2]);
    }
}
