//! Offline shim for `smallvec`.
//!
//! Exposes the `SmallVec<[T; N]>` type the workspace uses, backed by a
//! plain `Vec`. The *flat, contiguous, binary-searchable* layout — the
//! property the record representation depends on — is identical to the
//! real crate; what this shim forgoes is the inline (spill-free) storage
//! optimization for the first `N` elements. Vendoring the real crate is
//! a drop-in replacement and an automatic perf upgrade.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

/// Marker trait tying `SmallVec<[T; N]>` syntax to an element type and
/// an inline capacity hint.
pub trait Array {
    /// Element type.
    type Item;
    /// Inline capacity hint (used to pre-size the first allocation).
    const CAP: usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const CAP: usize = N;
}

/// A contiguous growable array with an inline-capacity type parameter.
pub struct SmallVec<A: Array> {
    vec: Vec<A::Item>,
    _marker: PhantomData<A>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector (no allocation until the first push).
    pub fn new() -> SmallVec<A> {
        SmallVec {
            vec: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Creates an empty vector with at least `cap` capacity.
    pub fn with_capacity(cap: usize) -> SmallVec<A> {
        SmallVec {
            vec: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Appends an element, pre-sizing to the inline capacity hint on the
    /// first growth so typical records allocate exactly once.
    pub fn push(&mut self, value: A::Item) {
        if self.vec.capacity() == 0 {
            self.vec.reserve(A::CAP.max(1));
        }
        self.vec.push(value);
    }

    /// Inserts an element at `index`, shifting the tail right.
    pub fn insert(&mut self, index: usize, value: A::Item) {
        if self.vec.capacity() == 0 {
            self.vec.reserve(A::CAP.max(1));
        }
        self.vec.insert(index, value);
    }

    /// Removes and returns the element at `index`, shifting the tail
    /// left.
    pub fn remove(&mut self, index: usize) -> A::Item {
        self.vec.remove(index)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Removes the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        self.vec.pop()
    }

    /// Keeps only elements satisfying the predicate.
    pub fn retain(&mut self, f: impl FnMut(&mut A::Item) -> bool) {
        self.vec.retain_mut(f);
    }

    /// Borrows the backing slice.
    pub fn as_slice(&self) -> &[A::Item] {
        &self.vec
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    fn deref(&self) -> &[A::Item] {
        &self.vec
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    fn deref_mut(&mut self) -> &mut [A::Item] {
        &mut self.vec
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec {
            vec: self.vec.clone(),
            _marker: PhantomData,
        }
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.vec == other.vec
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.vec.fmt(f)
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        SmallVec {
            vec: Vec::from_iter(iter),
            _marker: PhantomData,
        }
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        self.vec.extend(iter);
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = std::vec::IntoIter<A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.vec.into_iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.vec.iter()
    }
}

/// Convenience constructor macro mirroring `smallvec::smallvec!`.
#[macro_export]
macro_rules! smallvec {
    ($($x:expr),* $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $(v.push($x);)*
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_insert_remove() {
        let mut v: SmallVec<[u32; 4]> = SmallVec::new();
        v.push(1);
        v.push(3);
        v.insert(1, 2);
        assert_eq!(&v[..], &[1, 2, 3]);
        assert_eq!(v.remove(0), 1);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn slice_ops_via_deref() {
        let mut v: SmallVec<[u32; 4]> = (0..10).collect();
        assert_eq!(v.binary_search(&7), Ok(7));
        v.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v[0], 9);
    }

    #[test]
    fn macro_and_eq() {
        let a: SmallVec<[i32; 2]> = smallvec![1, 2, 3];
        let b: SmallVec<[i32; 2]> = (1..=3).collect();
        assert_eq!(a, b);
    }
}
