//! Offline shim for `bytes`: an immutable, cheaply clonable byte buffer.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable shared byte buffer; cloning is O(1).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.0.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
