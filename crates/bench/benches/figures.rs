//! Criterion-wrapped miniatures of the paper's figures.
//!
//! `cargo bench` regenerates reduced-scale Fig 5 / Fig 6 data points
//! (the full-scale harness is the `fig5`/`fig6` binaries — these
//! miniatures keep `cargo bench --workspace` fast while still
//! exercising every experimental code path end to end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snet_apps::{run_mpi_raytrace, run_snet_cluster, NetVariant, Schedule, SnetConfig, Workload};
use snet_dist::OverheadModel;
use snet_raytracer::ScenePreset;
use snet_simnet::ClusterSpec;

fn workload() -> Workload {
    Workload {
        preset: ScenePreset::Clustered,
        spheres: 60,
        seed: 2010,
        width: 96,
        height: 96,
    }
}

fn cluster(nodes: usize) -> ClusterSpec {
    // Faster virtual CPUs keep the miniature's real runtime low; the
    // topology (dual-CPU, 100 Mbit) matches the testbed.
    ClusterSpec {
        cpu_ops_per_sec: 200.0e6,
        ..ClusterSpec::paper_testbed(nodes)
    }
}

fn bench_fig6_series(c: &mut Criterion) {
    let wl = workload();
    let mut g = c.benchmark_group("fig6_mini");
    g.sample_size(10);
    for nodes in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("snet_static", nodes), &nodes, |b, &n| {
            b.iter(|| {
                run_snet_cluster(
                    &wl,
                    &SnetConfig::fig6_static(n),
                    cluster(n),
                    OverheadModel::default(),
                )
                .unwrap()
                .makespan_secs
            });
        });
        g.bench_with_input(BenchmarkId::new("snet_dynamic", nodes), &nodes, |b, &n| {
            b.iter(|| {
                run_snet_cluster(
                    &wl,
                    &SnetConfig::fig6_dynamic(n),
                    cluster(n),
                    OverheadModel::default(),
                )
                .unwrap()
                .makespan_secs
            });
        });
        g.bench_with_input(BenchmarkId::new("mpi_2proc", nodes), &nodes, |b, &n| {
            b.iter(|| {
                run_mpi_raytrace(&wl, n, 2, cluster(n))
                    .unwrap()
                    .makespan_secs
            });
        });
    }
    g.finish();
}

fn bench_fig5_points(c: &mut Criterion) {
    let wl = workload();
    let mut g = c.benchmark_group("fig5_mini");
    g.sample_size(10);
    for (tasks, tokens) in [(16u32, 8u32), (16, 16), (32, 16)] {
        for (name, schedule) in [
            ("block", Schedule::Block),
            ("factoring", Schedule::paper_factoring()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("{tasks}t_{tokens}k")),
                &(tasks, tokens),
                |b, &(tasks, tokens)| {
                    let cfg = SnetConfig {
                        variant: NetVariant::Dynamic,
                        nodes: 8,
                        tasks,
                        tokens,
                        schedule,
                    };
                    b.iter(|| {
                        run_snet_cluster(&wl, &cfg, cluster(8), OverheadModel::default())
                            .unwrap()
                            .makespan_secs
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig6_series, bench_fig5_points);
criterion_main!(benches);
