//! Ablation: per-record overhead of each S-Net combinator, per engine.
//!
//! The design decision under test: how much one record pays per glue
//! hop, per serial stage, per parallel branch set, per star unfolding
//! and per split replica — on the **threaded** engine (a thread per
//! component, bounded channels) versus the **scheduled** engine (tasks
//! on a fixed work-stealing pool). The scheduled engine's whole reason
//! to exist is these numbers; `BENCH_threaded_vs_sched.json` (emitted
//! by the `bench_engines` binary) tracks them across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::filter::OutputTemplate;
use snet_core::{BinOp, FilterSpec, NetSpec, Pattern, Record, TagExpr, Value, Variant};
use snet_runtime::{Net, SchedNet};

/// The engines under comparison.
#[derive(Clone, Copy)]
enum Engine {
    Threaded,
    Sched,
}

impl Engine {
    const ALL: [Engine; 2] = [Engine::Threaded, Engine::Sched];

    fn name(self) -> &'static str {
        match self {
            Engine::Threaded => "threaded",
            Engine::Sched => "sched",
        }
    }

    /// A reusable runner for one compiled network. Built *outside* the
    /// timing loop: the measurement is per-record glue cost, not spec
    /// cloning or engine construction.
    fn runner(self, spec: &NetSpec) -> Box<dyn Fn(Vec<Record>) -> Vec<Record>> {
        match self {
            Engine::Threaded => {
                let net = Net::new(spec.clone());
                Box::new(move |records| net.run_batch(records).unwrap())
            }
            Engine::Sched => {
                let net = SchedNet::new(spec.clone());
                Box::new(move |records| net.run_batch(records).unwrap())
            }
        }
    }
}

fn records(n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::new()
                .with_field("x", Value::Int(i))
                .with_tag("k", i % 4)
        })
        .collect()
}

fn inc_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("inc", &["x"], &[&["x"]]),
        |r| {
            let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("x", Value::Int(x + 1)),
                Work::ops(1),
            ))
        },
    ))
}

fn bench_serial_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial_depth");
    g.sample_size(20);
    for engine in Engine::ALL {
        for depth in [1usize, 4, 16] {
            let id = BenchmarkId::new(engine.name(), depth);
            g.bench_with_input(id, &depth, |b, &depth| {
                let run = engine.runner(&NetSpec::pipeline((0..depth).map(|_| inc_box())));
                b.iter(|| run(records(256)));
            });
        }
    }
    g.finish();
}

fn bench_parallel_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_width");
    g.sample_size(20);
    for engine in Engine::ALL {
        for width in [2usize, 4, 8] {
            let id = BenchmarkId::new(engine.name(), width);
            g.bench_with_input(id, &width, |b, &width| {
                let run =
                    engine.runner(&NetSpec::parallel((0..width).map(|_| inc_box()).collect()));
                b.iter(|| run(records(256)));
            });
        }
    }
    g.finish();
}

fn bench_star_unfolding(c: &mut Criterion) {
    let mut g = c.benchmark_group("star_unfolding");
    g.sample_size(20);
    let dec = NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
        vec![OutputTemplate::empty().set_tag(
            "n",
            TagExpr::bin(BinOp::Sub, TagExpr::tag("n"), TagExpr::Const(1)),
        )],
    ));
    let exit = Pattern::guarded(
        Variant::empty(),
        TagExpr::bin(BinOp::Le, TagExpr::tag("n"), TagExpr::Const(0)),
    );
    for engine in Engine::ALL {
        for depth in [4i64, 16, 64] {
            let id = BenchmarkId::new(engine.name(), depth);
            g.bench_with_input(id, &depth, |b, &depth| {
                let run = engine.runner(&NetSpec::star(dec.clone(), exit.clone()));
                b.iter(|| run(vec![Record::new().with_tag("n", depth)]));
            });
        }
    }
    g.finish();
}

fn bench_split_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_fanout");
    g.sample_size(20);
    for engine in Engine::ALL {
        for fan in [2i64, 8, 32] {
            let id = BenchmarkId::new(engine.name(), fan);
            g.bench_with_input(id, &fan, |b, &fan| {
                let run = engine.runner(&NetSpec::split(inc_box(), "r"));
                let recs: Vec<Record> = (0..256)
                    .map(|i| {
                        Record::new()
                            .with_field("x", Value::Int(i))
                            .with_tag("r", i % fan)
                    })
                    .collect();
                b.iter(|| run(recs.clone()));
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_serial_depth,
    bench_parallel_width,
    bench_star_unfolding,
    bench_split_fanout
);
criterion_main!(benches);
