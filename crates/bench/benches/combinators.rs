//! Ablation: per-record overhead of each S-Net combinator on the
//! threaded engine.
//!
//! The design decision under test (DESIGN.md §3): combinator glue —
//! dispatchers, collectors, star taps — runs as separate components
//! connected by bounded channels. These benches measure what one record
//! pays per glue hop, per serial stage, per parallel branch set, per
//! star unfolding and per split replica.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::filter::OutputTemplate;
use snet_core::{BinOp, FilterSpec, NetSpec, Pattern, Record, TagExpr, Value, Variant};
use snet_runtime::Net;

fn records(n: i64) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new().with_field("x", Value::Int(i)).with_tag("k", i % 4))
        .collect()
}

fn inc_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(BoxSig::parse("inc", &["x"], &[&["x"]]), |r| {
        let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
        Ok(BoxOutput::one(
            Record::new().with_field("x", Value::Int(x + 1)),
            Work::ops(1),
        ))
    }))
}

fn bench_serial_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial_depth");
    g.sample_size(20);
    for depth in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let net = Net::new(NetSpec::pipeline((0..depth).map(|_| inc_box())));
            b.iter(|| net.run_batch(records(256)).unwrap());
        });
    }
    g.finish();
}

fn bench_parallel_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_width");
    g.sample_size(20);
    for width in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            let net = Net::new(NetSpec::parallel((0..width).map(|_| inc_box()).collect()));
            b.iter(|| net.run_batch(records(256)).unwrap());
        });
    }
    g.finish();
}

fn bench_star_unfolding(c: &mut Criterion) {
    let mut g = c.benchmark_group("star_unfolding");
    g.sample_size(20);
    let dec = NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
        vec![OutputTemplate::empty().set_tag(
            "n",
            TagExpr::bin(BinOp::Sub, TagExpr::tag("n"), TagExpr::Const(1)),
        )],
    ));
    let exit = Pattern::guarded(
        Variant::empty(),
        TagExpr::bin(BinOp::Le, TagExpr::tag("n"), TagExpr::Const(0)),
    );
    for depth in [4i64, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let net = Net::new(NetSpec::star(dec.clone(), exit.clone()));
            b.iter(|| net.run_batch(vec![Record::new().with_tag("n", depth)]).unwrap());
        });
    }
    g.finish();
}

fn bench_split_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_fanout");
    g.sample_size(20);
    for fan in [2i64, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(fan), &fan, |b, &fan| {
            let net = Net::new(NetSpec::split(inc_box(), "r"));
            let recs: Vec<Record> = (0..256)
                .map(|i| Record::new().with_field("x", Value::Int(i)).with_tag("r", i % fan))
                .collect();
            b.iter(|| net.run_batch(recs.clone()).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_serial_depth,
    bench_parallel_width,
    bench_star_unfolding,
    bench_split_fanout
);
criterion_main!(benches);
