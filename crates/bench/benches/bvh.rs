//! Ablation: BVH traversal vs brute-force intersection.
//!
//! §II motivates the Goldsmith–Salmon hierarchy: "as each ray is cast
//! to every object, the majority of the rendering time is spent
//! calculating intersections". This bench shows the crossover — brute
//! force wins on tiny scenes, the BVH wins (and scales ~log n) beyond.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snet_raytracer::{intersect_brute, v3, Bvh, Counters, Ray, Scene, ScenePreset};

fn ray_bundle(n: usize) -> Vec<Ray> {
    // A deterministic fan of rays through the scene volume.
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            Ray::new(
                v3(-20.0 + 40.0 * t, 8.0, -25.0),
                v3(0.4 - 0.8 * t, -0.3, 1.0),
            )
        })
        .collect()
}

fn bench_intersection(c: &mut Criterion) {
    let mut g = c.benchmark_group("intersection");
    g.sample_size(30);
    for spheres in [8usize, 64, 512] {
        let scene = Scene::preset(ScenePreset::Balanced, spheres, 7);
        let bvh = Bvh::build(&scene.shapes);
        let rays = ray_bundle(256);
        g.bench_with_input(BenchmarkId::new("bvh", spheres), &spheres, |b, _| {
            b.iter(|| {
                let mut c = Counters::default();
                let mut hits = 0;
                for ray in &rays {
                    if bvh
                        .intersect(&scene.shapes, ray, 1e-6, f64::INFINITY, &mut c)
                        .is_some()
                    {
                        hits += 1;
                    }
                }
                hits
            });
        });
        g.bench_with_input(BenchmarkId::new("brute", spheres), &spheres, |b, _| {
            b.iter(|| {
                let mut c = Counters::default();
                let mut hits = 0;
                for ray in &rays {
                    if intersect_brute(&scene.shapes, ray, 1e-6, f64::INFINITY, &mut c).is_some() {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("bvh_build");
    g.sample_size(20);
    for spheres in [64usize, 512] {
        let scene = Scene::preset(ScenePreset::Clustered, spheres, 7);
        g.bench_with_input(BenchmarkId::from_parameter(spheres), &spheres, |b, _| {
            b.iter(|| Bvh::build(&scene.shapes).node_count());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_intersection, bench_construction);
criterion_main!(benches);
