//! Ablation: the Fig 3 merger network vs direct in-memory assembly.
//!
//! The merger expresses an n-way fold as a chain of synchrocells under
//! a star (because "boxes can only ever see one record at a time",
//! §IV.A). That generality costs per-unfolding glue; this bench
//! quantifies it against assembling the same chunks with
//! `Image::assemble` directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snet_apps::{merger_net, ChunkData, PicData};
use snet_core::{Record, Value};
use snet_raytracer::{split_rows, Chunk, Image};
use snet_runtime::Net;

const WIDTH: u32 = 64;
const HEIGHT: u32 = 64;

fn chunk_records(tasks: u32) -> Vec<Record> {
    split_rows(HEIGHT, tasks)
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            let chunk = Chunk {
                y0: s.y0,
                width: WIDTH,
                pixels: vec![[i as u8, 0, 0]; (s.rows() * WIDTH) as usize],
            };
            let mut rec = Record::new()
                .with_field(
                    "chunk",
                    Value::data(ChunkData {
                        chunk,
                        img_height: HEIGHT,
                    }),
                )
                .with_tag("tasks", tasks as i64);
            if i == 0 {
                rec.set_tag("fst", 1);
            }
            rec
        })
        .collect()
}

fn bench_merger(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge");
    g.sample_size(15);
    for tasks in [8u32, 32] {
        let recs = chunk_records(tasks);
        g.bench_with_input(BenchmarkId::new("snet_merger", tasks), &tasks, |b, _| {
            b.iter(|| {
                let net = Net::new(merger_net());
                let outs = net.run_batch(recs.clone()).unwrap();
                assert_eq!(outs.len(), 1, "one assembled picture");
                let pic: &PicData = outs[0]
                    .field("pic")
                    .and_then(|v| v.downcast_ref())
                    .expect("pic payload");
                pic.0.checksum()
            });
        });
        g.bench_with_input(BenchmarkId::new("direct", tasks), &tasks, |b, _| {
            let chunks: Vec<Chunk> = recs
                .iter()
                .map(|r| {
                    let cd: &ChunkData = r.field("chunk").and_then(|v| v.downcast_ref()).unwrap();
                    cd.chunk.clone()
                })
                .collect();
            b.iter(|| Image::assemble(WIDTH, HEIGHT, &chunks).checksum());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_merger);
criterion_main!(benches);
