//! Shared plumbing for the figure-regeneration binaries.
//!
//! Both `fig5` and `fig6` accept the same workload flags:
//!
//! * `--res N` — image resolution (N×N; default per binary);
//! * `--full` — the paper's 3000×3000 (slow!);
//! * `--scene balanced|clustered` — the imbalance knob (default
//!   clustered, which is what reproduces the paper's scaling story);
//! * `--spheres N` — scene complexity (default 180);
//! * `--csv` — machine-readable rows instead of the pretty table.

use snet_apps::Workload;
use snet_raytracer::ScenePreset;
use snet_simnet::ClusterSpec;

/// Parsed command-line options shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct FigureOpts {
    /// Square image resolution.
    pub res: u32,
    /// Scene preset.
    pub preset: ScenePreset,
    /// Sphere count.
    pub spheres: usize,
    /// Emit CSV rows.
    pub csv: bool,
    /// Positional arguments left over (binary-specific).
    pub rest: Vec<String>,
}

impl FigureOpts {
    /// Parses `std::env::args`, applying the given default resolution.
    pub fn parse(default_res: u32) -> FigureOpts {
        let mut opts = FigureOpts {
            res: default_res,
            preset: ScenePreset::Clustered,
            spheres: 180,
            csv: false,
            rest: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--res" => {
                    opts.res = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--res needs a number");
                }
                "--full" => opts.res = 3000,
                "--scene" => {
                    opts.preset = match args.next().as_deref() {
                        Some("balanced") => ScenePreset::Balanced,
                        Some("clustered") => ScenePreset::Clustered,
                        other => panic!("--scene balanced|clustered, got {other:?}"),
                    };
                }
                "--spheres" => {
                    opts.spheres = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--spheres needs a number");
                }
                "--csv" => opts.csv = true,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: [--res N] [--full] [--scene balanced|clustered] \
                         [--spheres N] [--csv]"
                    );
                    std::process::exit(0);
                }
                other => opts.rest.push(other.to_owned()),
            }
        }
        opts
    }

    /// The workload these options describe.
    pub fn workload(&self) -> Workload {
        Workload::benchmark(self.res, self.res, self.preset)
    }

    /// The paper's testbed with `nodes` nodes.
    pub fn cluster(&self, nodes: usize) -> ClusterSpec {
        ClusterSpec::paper_testbed(nodes)
    }

    /// Human-readable banner describing the run.
    pub fn banner(&self, what: &str) -> String {
        format!(
            "# {what}: {}x{} {:?} scene, {} spheres, dual-CPU nodes on 100 Mbit ethernet",
            self.res, self.res, self.preset, self.spheres
        )
    }
}

/// Formats a seconds value the way the paper's tables do.
pub fn secs(x: f64) -> String {
    format!("{x:9.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let opts = FigureOpts {
            res: 320,
            preset: ScenePreset::Clustered,
            spheres: 180,
            csv: false,
            rest: vec![],
        };
        let wl = opts.workload();
        assert_eq!(wl.width, 320);
        assert_eq!(wl.spheres, 180);
        let c = opts.cluster(8);
        assert_eq!(c.nodes, 8);
        assert_eq!(c.cpus_per_node, 2);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(941.87).trim(), "941.87");
        assert_eq!(secs(61.84).trim(), "61.84");
    }
}
