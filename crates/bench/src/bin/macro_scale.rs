//! Million-record macro-benchmark: many concurrent streaming sessions
//! on one scheduled-engine pool.
//!
//! Every other bench in the workspace measures 256-record batches; the
//! ROADMAP's north star is *sustained* heavy traffic. This harness
//! streams `--records` records (default 1,000,000) split across
//! `--sessions` concurrent streaming sessions, each a `SchedHandle` on
//! the **same** persistent worker pool, through a depth-`--depth`
//! pipeline of `tick` boxes (which fuses to a single chain task per
//! session under the default config). It reports:
//!
//! * **sustained throughput** (records/s, wall-clock over all sessions);
//! * **end-to-end latency p50/p99** — each record carries a
//!   timestamp-on-ingress tag (`<ts>`, nanoseconds since the shared
//!   epoch) stamped when it is admitted, and latency is measured when
//!   the record leaves the egress channel;
//! * **peak RSS** (`VmHWM` from `/proc/self/status`) — the bounded
//!   ingress/egress channels plus the per-component high-water marks
//!   give in-flight memory a ceiling that does not grow with the record
//!   count, and the buffer pool (`snet_core::pool`) keeps the
//!   steady-state allocation rate at zero, so peak RSS should be flat
//!   in `--records`.
//!
//! Results land in `--out` (default `BENCH_macro_scale.json`) with the
//! headline metrics at the JSON top level; `bench_gates.toml` gates a
//! throughput backstop, a p99 latency bound, and an RSS ceiling on it.
//!
//! ```text
//! # full mode (the committed BENCH_macro_scale.json):
//! cargo run --release -p snet-bench --bin macro_scale
//! # CI smoke mode (reduced record count, same gates):
//! cargo run --release -p snet-bench --bin macro_scale -- \
//!     --records 150000 --out macro_ci.json
//! ```

use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::{NetSpec, Record, Value};
use snet_runtime::sched::TrySendError;
use snet_runtime::{EngineConfig, SchedNet};
use std::fmt::Write as _;
use std::time::Instant;

/// A box that increments `x` and passes the ingress timestamp tag
/// through explicitly. Carrying `<ts>` in the signature (instead of
/// leaving it to flow inheritance) keeps the record an exact match for
/// the box's input variant, which is the engines' no-split fast path —
/// the same calling convention a latency-conscious deployment would
/// pick.
fn tick_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("tick", &["x", "<ts>"], &[&["x", "<ts>"]]),
        |r| {
            let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
            let ts = r.tag("ts").unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new()
                    .with_field("x", Value::Int(x + 1))
                    .with_tag("ts", ts),
                Work::ops(1),
            ))
        },
    ))
}

/// `VmHWM` (peak resident set) of this process, in bytes. Linux only;
/// 0 elsewhere.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One streaming session: an interleaved send/drain loop (the
/// `run_stream_interleaved` shape, plus latency bookkeeping) pushing
/// `count` records through its own `SchedHandle` and helping the pool
/// via `drive()` whenever it would otherwise spin. Returns the
/// per-record end-to-end latencies in nanoseconds.
fn run_session(net: &SchedNet, epoch: Instant, count: usize) -> Vec<u64> {
    let handle = net.start();
    let mut latencies: Vec<u64> = Vec::with_capacity(count);
    let mut sent = 0usize;
    let mut closed = false;
    let mut pending: Option<Record> = None;
    while latencies.len() < count {
        // Send phase: admit as much as the ingress bound allows. The
        // timestamp is (re)stamped immediately before each admission
        // attempt so it measures in-network latency, not producer-side
        // throttling.
        while sent < count {
            let now = epoch.elapsed().as_nanos() as i64;
            let rec = match pending.take() {
                Some(mut r) => {
                    r.set_tag("ts", now);
                    r
                }
                None => Record::new()
                    .with_field("x", Value::Int(sent as i64))
                    .with_tag("ts", now),
            };
            match handle.try_send(rec) {
                Ok(()) => sent += 1,
                Err(TrySendError::Full(r)) => {
                    pending = Some(r);
                    break;
                }
                Err(TrySendError::Closed(e)) => panic!("ingress closed mid-run: {e}"),
            }
        }
        if sent == count && !closed {
            handle.close_input();
            closed = true;
        }
        // Drain phase: every egress record yields one latency sample.
        let mut drained = false;
        while let Some(rec) = handle.try_recv() {
            let now = epoch.elapsed().as_nanos() as i64;
            let ts = rec.tag("ts").expect("ts tag survives the pipeline");
            latencies.push(now.saturating_sub(ts).max(0) as u64);
            drained = true;
        }
        // Neither side moved: help the pool instead of spinning.
        if !drained && latencies.len() < count && !handle.drive() {
            std::thread::yield_now();
        }
    }
    handle.finish().expect("run failed");
    latencies
}

/// `p`-th percentile (0–100) of an unsorted sample set, in place.
fn percentile(samples: &mut [u64], p: f64) -> u64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let rank = ((samples.len() as f64) * p / 100.0).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

fn main() {
    let mut records = 1_000_000usize;
    let mut sessions = 8usize;
    let mut depth = 16usize;
    let mut out_path = "BENCH_macro_scale.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--records" => {
                records = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--records needs a number");
            }
            "--sessions" => {
                sessions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .expect("--sessions needs a positive number");
            }
            "--depth" => {
                depth = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&d| d > 0)
                    .expect("--depth needs a positive number");
            }
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                panic!("unknown flag `{other}` (--records N, --sessions N, --depth N, --out PATH)")
            }
        }
    }
    let mode = if records >= 1_000_000 {
        "full"
    } else {
        "smoke"
    };
    let config = EngineConfig::default();
    let spec = NetSpec::pipeline((0..depth).map(|_| tick_box()));
    let net = SchedNet::with_config(spec, config);

    // Warm-up: fills the buffer pools, spawns the workers, and grows
    // every mailbox/channel to its steady-state capacity, so the
    // measured window is the steady state the gates reason about.
    run_session(&net, Instant::now(), 10_000.min(records));

    let per_session = records / sessions;
    let remainder = records - per_session * sessions;
    eprintln!(
        "macro_scale: {records} records, {sessions} sessions, depth {depth}, \
         {} workers ({mode} mode)",
        config.workers
    );
    let epoch = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                let net = &net;
                let count = per_session + usize::from(s < remainder);
                scope.spawn(move || run_session(net, epoch, count))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("session panicked"))
            .collect()
    });
    let elapsed = epoch.elapsed();
    assert_eq!(latencies.len(), records, "every record must come back");

    let throughput = records as f64 / elapsed.as_secs_f64();
    let p50_us = percentile(&mut latencies, 50.0) as f64 / 1_000.0;
    let p99_us = percentile(&mut latencies, 99.0) as f64 / 1_000.0;
    let peak_rss = peak_rss_bytes();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"macro_scale: {records} records over {sessions} \
         concurrent streaming sessions, depth-{depth} pipeline, one pool\","
    );
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"records\": {records},");
    let _ = writeln!(json, "  \"sessions\": {sessions},");
    let _ = writeln!(json, "  \"depth\": {depth},");
    let _ = writeln!(json, "  \"workers\": {},", config.workers);
    let _ = writeln!(json, "  \"channel_capacity\": {},", config.channel_capacity);
    let _ = writeln!(json, "  \"batch\": {},", config.batch);
    let _ = writeln!(json, "  \"fuse\": {},", config.fuse);
    let _ = writeln!(json, "  \"elapsed_s\": {:.3},", elapsed.as_secs_f64());
    let _ = writeln!(json, "  \"throughput_rps\": {throughput:.0},");
    let _ = writeln!(json, "  \"p50_latency_us\": {p50_us:.1},");
    let _ = writeln!(json, "  \"p99_latency_us\": {p99_us:.1},");
    let _ = writeln!(json, "  \"peak_rss_bytes\": {peak_rss},");
    let _ = writeln!(
        json,
        "  \"note\": \"latency = egress time minus the ts tag stamped at ingress \
         admission; peak RSS is VmHWM, which is flat in the record count because \
         in-flight records are bounded by the channel capacities and high-water \
         marks and steady-state buffers are pool-recycled (see the Memory & scale \
         section in snet-runtime)\""
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write macro_scale json");

    eprintln!(
        "macro_scale: {throughput:.0} rec/s, p50 {p50_us:.1} us, p99 {p99_us:.1} us, \
         peak RSS {:.1} MiB over {:.2}s",
        peak_rss as f64 / (1024.0 * 1024.0),
        elapsed.as_secs_f64()
    );
    println!("wrote {out_path}");
}
