//! Micro-bench for the analyzer-driven `exact_input` fast path.
//!
//! When `snet-analyze` proves every record reaching a box
//! exact-matches its input variant, the planner annotates the box and
//! `box_step` skips the per-record `accepts` check. This bench pins
//! that annotation at "no regression": the annotated pipeline must be
//! at least as fast as the identical un-annotated one (gated at the
//! 0.95 cross-machine backstop in `bench_gates.toml`; >= 1.0x is the
//! locally-verified figure).
//!
//! Two measurement layers, both on deep serial box chains fed records
//! that exact-match (`{x}` only — the proof obligation):
//!
//! * the deterministic interpreter, which isolates `box_step` itself
//!   from engine scheduling noise;
//! * the scheduled engine via `SchedNet::with_entry_type` (the
//!   user-facing path that actually runs the analyzer), against
//!   `SchedNet::with_config` on the raw spec.
//!
//! Usage: `bench_analyze [--out PATH] [--samples N]`
//! (default out: `BENCH_analyze.json`).

use snet_analyze::{analyze_and_annotate, AnalyzeConfig};
use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::{NetSpec, RType, Record, Value, Variant};
use snet_runtime::{EngineConfig, Interp, SchedNet};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const RECORDS: i64 = 256;

fn inc_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("inc", &["x"], &[&["x"]]),
        |r| {
            let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("x", Value::Int(x + 1)),
                Work::ops(1),
            ))
        },
    ))
}

/// Records that exact-match the boxes' `{x}` input variant — the shape
/// for which the analyzer can prove the `accepts` check redundant.
fn records() -> Vec<Record> {
    (0..RECORDS)
        .map(|i| Record::new().with_field("x", Value::Int(i)))
        .collect()
}

fn entry() -> RType {
    RType::single(Variant::parse_labels(&["x"], &[]))
}

/// (min, min) wall-clock over interleaved samples of two measurees
/// (A, B, A, B, …) so machine drift hits both sides equally. One
/// warm-up run each.
fn min_paired(samples: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (Duration, Duration) {
    a();
    b();
    let mut ta = Duration::MAX;
    let mut tb = Duration::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        a();
        ta = ta.min(t0.elapsed());
        let t0 = Instant::now();
        b();
        tb = tb.min(t0.elapsed());
    }
    (ta, tb)
}

struct Row {
    layer: &'static str,
    topology: String,
    annotated_min: Duration,
    plain_min: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.plain_min.as_secs_f64() / self.annotated_min.as_secs_f64()
    }
}

fn main() {
    let mut out_path = "BENCH_analyze.json".to_owned();
    let mut samples = 30usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples needs a number");
            }
            other => panic!("unknown flag `{other}` (--out PATH, --samples N)"),
        }
    }

    let config = EngineConfig::default();
    let mut rows: Vec<Row> = Vec::new();

    for depth in [4usize, 16] {
        let topology = format!("serial_depth={depth}");
        let plain_spec = NetSpec::pipeline((0..depth).map(|_| inc_box()));

        // The annotated spec: same pipeline, run through the analyzer
        // with the exact entry type. Every box must earn the proof.
        let mut annotated_spec = plain_spec.clone();
        let (analysis, annotated) =
            analyze_and_annotate(&mut annotated_spec, &entry(), &AnalyzeConfig::default());
        assert!(!analysis.has_errors(), "{:?}", analysis.diagnostics);
        assert_eq!(annotated, depth, "every box should be proven exact");

        // Layer 1: the deterministic interpreter (pure box_step cost).
        let (annotated_min, plain_min) = min_paired(
            samples,
            || {
                let r = Interp::new(&annotated_spec).run_batch(records()).unwrap();
                assert_eq!(r.outputs.len(), RECORDS as usize);
            },
            || {
                let r = Interp::new(&plain_spec).run_batch(records()).unwrap();
                assert_eq!(r.outputs.len(), RECORDS as usize);
            },
        );
        rows.push(Row {
            layer: "interp",
            topology: topology.clone(),
            annotated_min,
            plain_min,
        });

        // Layer 2: the scheduled engine, annotation via the public
        // entry-typed constructor.
        let annotated_net = SchedNet::with_entry_type(plain_spec.clone(), &entry(), config)
            .expect("pipeline analyzes clean");
        let plain_net = SchedNet::with_config(plain_spec, config);
        let (annotated_min, plain_min) = min_paired(
            samples,
            || {
                let outs = annotated_net.run_batch(records()).unwrap();
                assert_eq!(outs.len(), RECORDS as usize);
            },
            || {
                let outs = plain_net.run_batch(records()).unwrap();
                assert_eq!(outs.len(), RECORDS as usize);
            },
        );
        rows.push(Row {
            layer: "sched",
            topology,
            annotated_min,
            plain_min,
        });
    }

    for row in &rows {
        eprintln!(
            "{:>7} {:>16}: annotated min {:>10.3?}  plain min {:>10.3?}  speedup {:.3}x",
            row.layer,
            row.topology,
            row.annotated_min,
            row.plain_min,
            row.speedup(),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"analyzer exact_input annotation on vs off, interpreter + scheduled engine, serial box chains, {RECORDS}-record batches of exact-matching records\",",
    );
    let _ = writeln!(json, "  \"samples_per_point\": {samples},");
    let _ = writeln!(
        json,
        "  \"gate\": \"speedup_annotated_over_plain on every row must be >= 1.0 locally (the annotation skips work, it must never add any); CI gates the cross-machine backstop >= 0.95 on interp serial_depth=16 (min-of-samples)\",",
    );
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"layer\": \"{}\", \"topology\": \"{}\", \"annotated_min_ns\": {}, \"plain_min_ns\": {}, \"speedup_annotated_over_plain\": {:.3}}}{}",
            row.layer,
            row.topology,
            row.annotated_min.as_nanos(),
            row.plain_min.as_nanos(),
            row.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write analyze bench json");
    println!("wrote {out_path}");
}
