//! Threaded vs. scheduled engine baseline + batched hand-off sweep +
//! streaming-vs-batch comparison + operator-fusion speedup.
//!
//! All sections except `--fusion-out` run with fusion *disabled*
//! (`fuse: false`): they are longitudinal trajectory files whose
//! committed baselines predate fusion, and they measure the
//! per-component engines — thread-per-component spawning, the hand-off
//! protocol, the streaming handle, the policy machinery. Fusion would
//! collapse the pipelines they sweep into one task and change what the
//! numbers mean. The fused-vs-unfused comparison gets its own file.
//!
//! Writes five result files:
//!
//! * `--out` (default `BENCH_threaded_vs_sched.json`): threaded vs
//!   scheduled engine at the default configuration, the perf
//!   trajectory file started in PR 1;
//! * `--handoff-out` (default `BENCH_batched_handoff.json`): the
//!   scheduled engine swept across hand-off batch sizes
//!   `{1, 8, 32, 128}`, with speedups relative to the in-run `batch=1`
//!   point and (when `--baseline` names a readable results file) to
//!   the previously *committed* scheduler numbers. The baseline is
//!   read before `--out` is regenerated, so by default each run
//!   compares against the last committed engine — at PR 4 time, the
//!   PR-1 single-record, mutex-deque scheduler;
//! * `--streaming-out` (default `BENCH_streaming.json`): the streaming
//!   handle path vs the one-shot batch path on the same engine and
//!   topology, for both unified-API drivers — `run_stream` (feeder
//!   thread against the ingress bound) and `run_stream_interleaved`
//!   (single thread, caller-runs `drive()` helping). Both
//!   scheduled-engine modes ride the same persistent pool; the gate
//!   (enforced in CI, on the min-of-samples statistic) is that
//!   interleaved streaming costs at most 5% vs batch on the depth-16
//!   pipeline;
//! * `--fault-out` (default `BENCH_fault_overhead.json`): the cost of
//!   the failure-policy machinery on the depth-16 scheduled pipeline.
//!   `failfast` (policy machinery disabled: no record clone, one
//!   `Option` check per preemption point) is gated at < 3% vs the
//!   committed pre-robustness scheduler number when measured locally;
//!   CI re-measures on its own hardware, so it gates the relaxed
//!   cross-machine backstop (>= 0.85x vs committed) plus the same-run
//!   property that enabling a deadline or a lenient policy on a
//!   fault-free run stays within noise of `failfast`;
//! * `--fusion-out` (default `BENCH_fusion.json`): the scheduled engine
//!   with SISO-chain fusion on vs off on the same pipelines. The
//!   depth-16 pipeline fuses to a single task (three components:
//!   source, chain, sink), eliminating 15 mailbox hops per record; the
//!   gate is >= 1.5x fused-over-unfused locally on the min-of-samples
//!   statistic, with a >= 1.2x cross-machine backstop in CI.
//!
//! ```text
//! cargo run -p snet-bench --release --bin bench_engines
//! cargo run -p snet-bench --release --bin bench_engines -- \
//!     --out path.json --handoff-out sweep.json --streaming-out s.json \
//!     --fault-out f.json --samples 30
//! ```
//!
//! The headline number is `serial_depth=16`: a 16-stage box pipeline
//! over 256 records, where the threaded engine pays 17 thread spawns
//! plus a channel hand-off per record per stage, and the scheduled
//! engine runs the same graph on a fixed 4-worker pool.

use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::{NetSpec, Record, Value};
use snet_runtime::{
    run_stream, run_stream_interleaved, EngineConfig, FailurePolicy, Net, SchedNet,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const RECORDS: i64 = 256;

fn inc_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("inc", &["x"], &[&["x"]]),
        |r| {
            let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
            Ok(BoxOutput::one(
                Record::new().with_field("x", Value::Int(x + 1)),
                Work::ops(1),
            ))
        },
    ))
}

fn records() -> Vec<Record> {
    (0..RECORDS)
        .map(|i| {
            Record::new()
                .with_field("x", Value::Int(i))
                .with_tag("k", i % 4)
        })
        .collect()
}

/// Median wall-clock duration of `f` over `samples` runs (after one
/// warm-up run).
fn median(samples: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct Row {
    topology: String,
    threaded: Duration,
    sched: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.threaded.as_secs_f64() / self.sched.as_secs_f64()
    }
}

/// Pulls `"sched_ns"` for a topology out of a previously committed
/// results file (our own fixed format — not a general JSON parser).
fn baseline_sched_ns(json: &str, topology: &str) -> Option<u128> {
    let key = format!("\"topology\": \"{topology}\"");
    let row = &json[json.find(&key)?..];
    let row = &row[..row.find('}')?];
    let ns = &row[row.find("\"sched_ns\": ")? + "\"sched_ns\": ".len()..];
    let end = ns.find(|c: char| !c.is_ascii_digit())?;
    ns[..end].parse().ok()
}

const SWEEP_BATCHES: [usize; 4] = [1, 8, 32, 128];

fn main() {
    let mut out_path = "BENCH_threaded_vs_sched.json".to_owned();
    let mut handoff_path = "BENCH_batched_handoff.json".to_owned();
    let mut streaming_path = "BENCH_streaming.json".to_owned();
    let mut fault_path = "BENCH_fault_overhead.json".to_owned();
    let mut fusion_path = "BENCH_fusion.json".to_owned();
    let mut baseline_path = "BENCH_threaded_vs_sched.json".to_owned();
    let mut samples = 20usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--handoff-out" => handoff_path = args.next().expect("--handoff-out needs a path"),
            "--streaming-out" => {
                streaming_path = args.next().expect("--streaming-out needs a path");
            }
            "--fault-out" => fault_path = args.next().expect("--fault-out needs a path"),
            "--fusion-out" => fusion_path = args.next().expect("--fusion-out needs a path"),
            "--baseline" => baseline_path = args.next().expect("--baseline needs a path"),
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples needs a number");
            }
            other => panic!(
                "unknown flag `{other}` (--out PATH, --handoff-out PATH, --streaming-out PATH, --fault-out PATH, --fusion-out PATH, --baseline PATH, --samples N)"
            ),
        }
    }
    // Read the PR-1 baseline BEFORE regenerating `--out` (they default
    // to the same path).
    let baseline_json = std::fs::read_to_string(&baseline_path).unwrap_or_default();

    // Fusion off for the trajectory sections (see the module docs); the
    // fused-vs-unfused comparison below constructs its own config.
    let config = EngineConfig {
        fuse: false,
        ..EngineConfig::default()
    };
    let mut rows: Vec<Row> = Vec::new();
    for depth in [1usize, 4, 16] {
        let spec = NetSpec::pipeline((0..depth).map(|_| inc_box()));
        // Engines are constructed once per topology, outside the timed
        // routine: the measurement is batch execution, not setup.
        let threaded_net = Net::with_config(spec.clone(), config);
        let threaded = median(samples, || {
            let outs = threaded_net.run_batch(records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
        let sched_net = SchedNet::with_config(spec, config);
        let sched = median(samples, || {
            let outs = sched_net.run_batch(records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
        let row = Row {
            topology: format!("serial_depth={depth}"),
            threaded,
            sched,
        };
        eprintln!(
            "{:>16}: threaded {:>10.3?}  sched {:>10.3?}  speedup {:.2}x",
            row.topology,
            row.threaded,
            row.sched,
            row.speedup(),
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"combinator serial pipelines, {RECORDS}-record batches\","
    );
    let _ = writeln!(json, "  \"workers\": {},", config.workers);
    let _ = writeln!(json, "  \"samples_per_point\": {samples},");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"topology\": \"{}\", \"threaded_ns\": {}, \"sched_ns\": {}, \"speedup_sched_over_threaded\": {:.3}}}{}",
            row.topology,
            row.threaded.as_nanos(),
            row.sched.as_nanos(),
            row.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("wrote {out_path}");

    let headline = rows.last().expect("three rows");
    println!(
        "serial_depth=16: scheduled engine is {:.2}x the threaded engine's throughput",
        headline.speedup()
    );

    // ---- Batched hand-off sweep (scheduled engine only) ----
    struct SweepRow {
        topology: String,
        batch: usize,
        sched: Duration,
        baseline_ns: Option<u128>,
    }
    let mut sweep: Vec<SweepRow> = Vec::new();
    for depth in [4usize, 16] {
        let topology = format!("serial_depth={depth}");
        let baseline_ns = baseline_sched_ns(&baseline_json, &topology);
        let spec = NetSpec::pipeline((0..depth).map(|_| inc_box()));
        for batch in SWEEP_BATCHES {
            let net = SchedNet::with_config(spec.clone(), EngineConfig { batch, ..config });
            let sched = median(samples, || {
                let outs = net.run_batch(records()).unwrap();
                assert_eq!(outs.len(), RECORDS as usize);
            });
            eprintln!("{topology:>16} batch={batch:>3}: sched {sched:>10.3?}");
            sweep.push(SweepRow {
                topology: topology.clone(),
                batch,
                sched,
                baseline_ns,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"scheduled engine hand-off batch sweep, combinator serial pipelines, {RECORDS}-record batches\",",
    );
    let _ = writeln!(json, "  \"workers\": {},", config.workers);
    let _ = writeln!(json, "  \"default_batch\": {},", config.batch);
    let _ = writeln!(json, "  \"samples_per_point\": {samples},");
    let _ = writeln!(
        json,
        "  \"committed_baseline\": \"sched_ns from {} as committed before this run (at PR 4: the PR-1 single-record, mutex-deque scheduler)\",",
        baseline_path
    );
    json.push_str("  \"results\": [\n");
    for (i, row) in sweep.iter().enumerate() {
        let batch1_ns = sweep
            .iter()
            .find(|r| r.topology == row.topology && r.batch == 1)
            .expect("batch=1 is in the sweep")
            .sched
            .as_nanos();
        let vs_batch1 = batch1_ns as f64 / row.sched.as_nanos() as f64;
        let vs_pr1 = row
            .baseline_ns
            .map(|ns| format!("{:.3}", ns as f64 / row.sched.as_nanos() as f64))
            .unwrap_or_else(|| "null".into());
        let _ = writeln!(
            json,
            "    {{\"topology\": \"{}\", \"batch\": {}, \"sched_ns\": {}, \"speedup_vs_batch1\": {:.3}, \"speedup_vs_committed_baseline\": {}}}{}",
            row.topology,
            row.batch,
            row.sched.as_nanos(),
            vs_batch1,
            vs_pr1,
            if i + 1 < sweep.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&handoff_path, &json).expect("write hand-off sweep json");
    println!("wrote {handoff_path}");

    let d16_default = sweep
        .iter()
        .find(|r| r.topology == "serial_depth=16" && r.batch == config.batch)
        .expect("default batch is in the sweep");
    if let Some(base) = d16_default.baseline_ns {
        println!(
            "serial_depth=16: batch={} is {:.2}x the previously committed scheduler",
            d16_default.batch,
            base as f64 / d16_default.sched.as_nanos() as f64
        );
    }

    // ---- Streaming handle vs one-shot batch (both engines) ----
    //
    // Two unified-API streaming drivers are measured against the batch
    // path on the same engine instance and config:
    //
    // * `interleaved` (`run_stream_interleaved`, window = the ingress
    //   capacity): one thread alternates bounded-window sends with
    //   output drains — the cheapest legitimate streaming client, and
    //   the number that isolates the handle indirection itself;
    // * `threads` (`run_stream`): a feeder thread pushes against the
    //   ingress bound while the main thread drains — true concurrent
    //   production/consumption, which on a single-CPU host additionally
    //   pays cross-thread wakeups.
    //
    // Both min (robust against CI scheduler noise — the gated statistic)
    // and median are reported.
    struct StreamRow {
        engine: &'static str,
        mode: &'static str,
        topology: String,
        streaming_min: Duration,
        streaming_median: Duration,
        batch_min: Duration,
        batch_median: Duration,
    }
    /// (median, min) wall-clock over `samples` runs, after one warm-up.
    fn med_min(samples: usize, mut f: impl FnMut()) -> (Duration, Duration) {
        f();
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        (times[times.len() / 2], times[0])
    }
    let window = config.channel_capacity.max(1);
    let mut streaming_rows: Vec<StreamRow> = Vec::new();
    for depth in [4usize, 16] {
        let topology = format!("serial_depth={depth}");
        let spec = NetSpec::pipeline((0..depth).map(|_| inc_box()));
        let sched_net = SchedNet::with_config(spec.clone(), config);
        let threaded_net = Net::with_config(spec, config);

        let (sched_batch_med, sched_batch_min) = med_min(samples, || {
            let outs = sched_net.run_batch(records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
        let (threaded_batch_med, threaded_batch_min) = med_min(samples, || {
            let outs = threaded_net.run_batch(records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });

        let mut measure = |engine: &'static str, mode: &'static str, f: &mut dyn FnMut()| {
            let (streaming_median, streaming_min) = med_min(samples, f);
            let (batch_median, batch_min) = match engine {
                "threaded" => (threaded_batch_med, threaded_batch_min),
                _ => (sched_batch_med, sched_batch_min),
            };
            eprintln!(
                "{topology:>16} {engine:>8}/{mode:<11}: streaming min {streaming_min:>10.3?} med {streaming_median:>10.3?}  batch min {batch_min:>10.3?}  min-ratio {:.2}x",
                batch_min.as_secs_f64() / streaming_min.as_secs_f64(),
            );
            streaming_rows.push(StreamRow {
                engine,
                mode,
                topology: topology.clone(),
                streaming_min,
                streaming_median,
                batch_min,
                batch_median,
            });
        };
        measure("sched", "interleaved", &mut || {
            let outs = run_stream_interleaved(&sched_net, records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
        measure("sched", "threads", &mut || {
            let outs = run_stream(&sched_net, records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
        measure("threaded", "interleaved", &mut || {
            let outs = run_stream_interleaved(&threaded_net, records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
        measure("threaded", "threads", &mut || {
            let outs = run_stream(&threaded_net, records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"streaming handle (start/send_all/recv, bounded ingress) vs one-shot batch, combinator serial pipelines, {RECORDS}-record batches\",",
    );
    let _ = writeln!(json, "  \"workers\": {},", config.workers);
    let _ = writeln!(json, "  \"channel_capacity\": {},", config.channel_capacity);
    let _ = writeln!(json, "  \"stream_window\": {window},");
    let _ = writeln!(json, "  \"samples_per_point\": {samples},");
    let _ = writeln!(
        json,
        "  \"gate\": \"sched/interleaved min-ratio on serial_depth=16 must be >= 0.95 (min-of-samples is the gated statistic: robust to CI scheduler noise)\",",
    );
    json.push_str("  \"results\": [\n");
    for (i, row) in streaming_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"mode\": \"{}\", \"topology\": \"{}\", \"streaming_min_ns\": {}, \"streaming_median_ns\": {}, \"batch_min_ns\": {}, \"batch_median_ns\": {}, \"streaming_throughput_vs_batch\": {:.3}}}{}",
            row.engine,
            row.mode,
            row.topology,
            row.streaming_min.as_nanos(),
            row.streaming_median.as_nanos(),
            row.batch_min.as_nanos(),
            row.batch_median.as_nanos(),
            row.batch_min.as_secs_f64() / row.streaming_min.as_secs_f64(),
            if i + 1 < streaming_rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&streaming_path, &json).expect("write streaming json");
    println!("wrote {streaming_path}");

    let d16_stream = streaming_rows
        .iter()
        .find(|r| r.engine == "sched" && r.mode == "interleaved" && r.topology == "serial_depth=16")
        .expect("sched/interleaved depth-16 is in the streaming rows");
    println!(
        "serial_depth=16: streaming sched (interleaved) runs at {:.2}x batch-sched throughput (CI gate: >= 0.95x)",
        d16_stream.batch_min.as_secs_f64() / d16_stream.streaming_min.as_secs_f64()
    );

    // ---- Failure-policy machinery overhead (scheduled engine) ----
    //
    // All four configurations run the identical fault-free depth-16
    // pipeline; only the policy/deadline knobs differ. `failfast` is
    // the post-robustness hot path with the machinery disabled — the
    // configuration the < 3%-vs-committed-baseline claim is about. The
    // other rows measure what merely *enabling* a deadline or a
    // lenient policy costs when no fault ever fires.
    struct FaultRow {
        mode: &'static str,
        min: Duration,
        median: Duration,
    }
    let fault_spec = NetSpec::pipeline((0..16).map(|_| inc_box()));
    let fault_baseline_ns = baseline_sched_ns(&baseline_json, "serial_depth=16");
    let mut fault_rows: Vec<FaultRow> = Vec::new();
    for (mode, cfg) in [
        ("failfast", config),
        (
            "deadline_generous",
            EngineConfig {
                deadline: Some(Duration::from_secs(3600)),
                ..config
            },
        ),
        (
            "deadletter_clean",
            EngineConfig {
                policy: FailurePolicy::DeadLetter,
                ..config
            },
        ),
        (
            "retry_clean",
            EngineConfig {
                policy: FailurePolicy::Retry {
                    max_attempts: 3,
                    backoff: Duration::from_micros(100),
                },
                ..config
            },
        ),
    ] {
        let net = SchedNet::with_config(fault_spec.clone(), cfg);
        let (median, min) = med_min(samples, || {
            let outs = net.run_batch(records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
        eprintln!("serial_depth=16 {mode:>18}: sched min {min:>10.3?} med {median:>10.3?}");
        fault_rows.push(FaultRow { mode, min, median });
    }

    let failfast_min = fault_rows[0].min;
    let vs_committed = fault_baseline_ns
        .map(|ns| format!("{:.3}", ns as f64 / failfast_min.as_nanos() as f64))
        .unwrap_or_else(|| "null".into());

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"failure-policy machinery overhead, fault-free scheduled serial_depth=16 pipeline, {RECORDS}-record batches\",",
    );
    let _ = writeln!(json, "  \"workers\": {},", config.workers);
    let _ = writeln!(json, "  \"samples_per_point\": {samples},");
    let _ = writeln!(
        json,
        "  \"committed_baseline\": \"sched_ns for serial_depth=16 from {} as committed before this run (the pre-robustness scheduler)\",",
        baseline_path
    );
    let _ = writeln!(
        json,
        "  \"gate\": \"failfast_vs_committed_throughput >= 0.97 locally (< 3% overhead with the machinery disabled); CI gates the cross-machine backstop >= 0.85, same-run overhead_vs_failfast <= 1.05 for deadline_generous, and <= 1.30 for the lenient policies (their one-clone-per-record cost)\",",
    );
    let _ = writeln!(
        json,
        "  \"failfast_vs_committed_throughput\": {vs_committed},"
    );
    json.push_str("  \"results\": [\n");
    for (i, row) in fault_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mode\": \"{}\", \"sched_min_ns\": {}, \"sched_median_ns\": {}, \"overhead_vs_failfast\": {:.3}}}{}",
            row.mode,
            row.min.as_nanos(),
            row.median.as_nanos(),
            row.min.as_nanos() as f64 / failfast_min.as_nanos() as f64,
            if i + 1 < fault_rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&fault_path, &json).expect("write fault overhead json");
    println!("wrote {fault_path}");
    if let Some(ns) = fault_baseline_ns {
        println!(
            "serial_depth=16: failfast (machinery off) runs at {:.3}x the committed pre-robustness throughput (local gate: >= 0.97x)",
            ns as f64 / failfast_min.as_nanos() as f64
        );
    }

    // ---- Operator fusion: fused vs unfused scheduled engine ----
    //
    // The same fault-free pipelines, same pool, same hand-off batch —
    // the only difference is the planner collapsing the SISO box run
    // into one fused-chain task. min-of-samples is the gated statistic.
    struct FusionRow {
        topology: String,
        fused_min: Duration,
        fused_median: Duration,
        unfused_min: Duration,
        unfused_median: Duration,
    }
    /// (median, min) pairs for two alternating measurees. The fusion
    /// gate is a *ratio* of the two, so the samples are interleaved —
    /// A, B, A, B, … — rather than block-sampled: slow machine drift
    /// (thermal, scheduler mood) then hits both sides equally instead
    /// of skewing whichever block ran during the bad stretch.
    #[allow(clippy::type_complexity)]
    fn med_min_paired(
        samples: usize,
        mut a: impl FnMut(),
        mut b: impl FnMut(),
    ) -> ((Duration, Duration), (Duration, Duration)) {
        a();
        b();
        let mut ta: Vec<Duration> = Vec::with_capacity(samples);
        let mut tb: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            a();
            ta.push(t0.elapsed());
            let t0 = Instant::now();
            b();
            tb.push(t0.elapsed());
        }
        ta.sort_unstable();
        tb.sort_unstable();
        ((ta[ta.len() / 2], ta[0]), (tb[tb.len() / 2], tb[0]))
    }
    let mut fusion_rows: Vec<FusionRow> = Vec::new();
    for depth in [4usize, 16] {
        let topology = format!("serial_depth={depth}");
        let spec = NetSpec::pipeline((0..depth).map(|_| inc_box()));
        let fused_net = SchedNet::with_config(
            spec.clone(),
            EngineConfig {
                fuse: true,
                ..config
            },
        );
        let unfused_net = SchedNet::with_config(spec, config);
        let ((fused_median, fused_min), (unfused_median, unfused_min)) = med_min_paired(
            samples,
            || {
                let outs = fused_net.run_batch(records()).unwrap();
                assert_eq!(outs.len(), RECORDS as usize);
            },
            || {
                let outs = unfused_net.run_batch(records()).unwrap();
                assert_eq!(outs.len(), RECORDS as usize);
            },
        );
        eprintln!(
            "{topology:>16}: fused min {fused_min:>10.3?}  unfused min {unfused_min:>10.3?}  speedup {:.2}x",
            unfused_min.as_secs_f64() / fused_min.as_secs_f64(),
        );
        fusion_rows.push(FusionRow {
            topology,
            fused_min,
            fused_median,
            unfused_min,
            unfused_median,
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"SISO-chain operator fusion on vs off, scheduled engine, combinator serial pipelines, {RECORDS}-record batches\",",
    );
    let _ = writeln!(json, "  \"workers\": {},", config.workers);
    let _ = writeln!(json, "  \"samples_per_point\": {samples},");
    let _ = writeln!(
        json,
        "  \"gate\": \"speedup_fused_over_unfused on serial_depth=16 must be >= 1.5 locally; CI gates the cross-machine backstop >= 1.2 (min-of-samples is the gated statistic)\",",
    );
    json.push_str("  \"results\": [\n");
    for (i, row) in fusion_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"topology\": \"{}\", \"fused_min_ns\": {}, \"fused_median_ns\": {}, \"unfused_min_ns\": {}, \"unfused_median_ns\": {}, \"speedup_fused_over_unfused\": {:.3}}}{}",
            row.topology,
            row.fused_min.as_nanos(),
            row.fused_median.as_nanos(),
            row.unfused_min.as_nanos(),
            row.unfused_median.as_nanos(),
            row.unfused_min.as_nanos() as f64 / row.fused_min.as_nanos() as f64,
            if i + 1 < fusion_rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&fusion_path, &json).expect("write fusion json");
    println!("wrote {fusion_path}");

    let d16_fusion = fusion_rows.last().expect("two fusion rows");
    println!(
        "serial_depth=16: fused chain runs at {:.2}x unfused scheduled throughput (local gate: >= 1.5x; CI backstop: >= 1.2x)",
        d16_fusion.unfused_min.as_nanos() as f64 / d16_fusion.fused_min.as_nanos() as f64
    );
}
