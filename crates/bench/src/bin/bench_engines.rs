//! Threaded vs. scheduled engine baseline: measures the combinator
//! micro-benchmarks on both local engines and writes
//! `BENCH_threaded_vs_sched.json` so later PRs have a perf trajectory.
//!
//! ```text
//! cargo run -p snet-bench --release --bin bench_engines
//! cargo run -p snet-bench --release --bin bench_engines -- --out path.json --samples 30
//! ```
//!
//! The headline number is `serial_depth=16`: a 16-stage box pipeline
//! over 256 records, where the threaded engine pays 17 thread spawns
//! plus a channel hand-off per record per stage, and the scheduled
//! engine runs the same graph on a fixed 4-worker pool.

use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::{NetSpec, Record, Value};
use snet_runtime::{EngineConfig, Net, SchedNet};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const RECORDS: i64 = 256;

fn inc_box() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(BoxSig::parse("inc", &["x"], &[&["x"]]), |r| {
        let x = r.field("x").and_then(|v| v.as_int()).unwrap_or(0);
        Ok(BoxOutput::one(
            Record::new().with_field("x", Value::Int(x + 1)),
            Work::ops(1),
        ))
    }))
}

fn records() -> Vec<Record> {
    (0..RECORDS)
        .map(|i| Record::new().with_field("x", Value::Int(i)).with_tag("k", i % 4))
        .collect()
}

/// Median wall-clock duration of `f` over `samples` runs (after one
/// warm-up run).
fn median(samples: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

struct Row {
    topology: String,
    threaded: Duration,
    sched: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.threaded.as_secs_f64() / self.sched.as_secs_f64()
    }
}

fn main() {
    let mut out_path = "BENCH_threaded_vs_sched.json".to_owned();
    let mut samples = 20usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--samples needs a number");
            }
            other => panic!("unknown flag `{other}` (--out PATH, --samples N)"),
        }
    }

    let config = EngineConfig::default();
    let mut rows: Vec<Row> = Vec::new();
    for depth in [1usize, 4, 16] {
        let spec = NetSpec::pipeline((0..depth).map(|_| inc_box()));
        // Engines are constructed once per topology, outside the timed
        // routine: the measurement is batch execution, not setup.
        let threaded_net = Net::with_config(spec.clone(), config);
        let threaded = median(samples, || {
            let outs = threaded_net.run_batch(records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
        let sched_net = SchedNet::with_config(spec, config);
        let sched = median(samples, || {
            let outs = sched_net.run_batch(records()).unwrap();
            assert_eq!(outs.len(), RECORDS as usize);
        });
        let row = Row {
            topology: format!("serial_depth={depth}"),
            threaded,
            sched,
        };
        eprintln!(
            "{:>16}: threaded {:>10.3?}  sched {:>10.3?}  speedup {:.2}x",
            row.topology, row.threaded, row.sched, row.speedup(),
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"combinator serial pipelines, {RECORDS}-record batches\",");
    let _ = writeln!(json, "  \"workers\": {},", config.workers);
    let _ = writeln!(json, "  \"samples_per_point\": {samples},");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"topology\": \"{}\", \"threaded_ns\": {}, \"sched_ns\": {}, \"speedup_sched_over_threaded\": {:.3}}}{}",
            row.topology,
            row.threaded.as_nanos(),
            row.sched.as_nanos(),
            row.speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("wrote {out_path}");

    let headline = rows.last().expect("three rows");
    println!(
        "serial_depth=16: scheduled engine is {:.2}x the threaded engine's throughput",
        headline.speedup()
    );
}
