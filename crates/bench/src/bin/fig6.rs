//! Fig 6 — "Runtimes on 1 - 8 nodes, comparing the original MPI
//! implementation against S-NET variants (left) and speed-up of each
//! implementation measured against the original MPI implementation
//! with 2 processes per node (right)".
//!
//! Regenerates both panels: the absolute-runtime table for the five
//! series (S-Net Static, S-Net Static 2 CPU, MPI, MPI 2 Proc/Node,
//! S-Net Best Dynamic) over 1/2/4/6/8 nodes, and the derived speed-up
//! panel. Run with `--csv` for machine-readable rows.
//!
//! ```text
//! cargo run -p snet-bench --release --bin fig6
//! ```

use snet_apps::{run_mpi_raytrace, run_snet_cluster, SnetConfig};
use snet_bench::{secs, FigureOpts};
use snet_dist::OverheadModel;

const NODE_COUNTS: [usize; 5] = [1, 2, 4, 6, 8];
const SERIES: [&str; 5] = [
    "S-Net Static",
    "S-Net Static 2 CPU",
    "MPI",
    "MPI 2 Proc/Node",
    "S-Net Best Dynamic",
];

fn main() {
    let opts = FigureOpts::parse(512);
    let wl = opts.workload();
    let overhead = OverheadModel::default();
    eprintln!("{}", opts.banner("Fig 6"));

    // rows[s][n] = runtime of series s on NODE_COUNTS[n] nodes.
    let mut rows = vec![vec![0.0f64; NODE_COUNTS.len()]; SERIES.len()];
    let reference = wl.reference_image();

    for (ni, &nodes) in NODE_COUNTS.iter().enumerate() {
        let cluster = opts.cluster(nodes);

        let stat = run_snet_cluster(&wl, &SnetConfig::fig6_static(nodes), cluster, overhead)
            .expect("static run");
        assert_eq!(stat.image, reference, "static image mismatch");
        rows[0][ni] = stat.makespan_secs;

        let stat2 = run_snet_cluster(&wl, &SnetConfig::fig6_static_2cpu(nodes), cluster, overhead)
            .expect("static 2cpu run");
        assert_eq!(stat2.image, reference, "static-2cpu image mismatch");
        rows[1][ni] = stat2.makespan_secs;

        let mpi1 = run_mpi_raytrace(&wl, nodes, 1, cluster).expect("mpi run");
        assert_eq!(mpi1.image, reference, "mpi image mismatch");
        rows[2][ni] = mpi1.makespan_secs;

        let mpi2 = run_mpi_raytrace(&wl, nodes, 2, cluster).expect("mpi 2proc run");
        assert_eq!(mpi2.image, reference, "mpi-2proc image mismatch");
        rows[3][ni] = mpi2.makespan_secs;

        let dynamic = run_snet_cluster(&wl, &SnetConfig::fig6_dynamic(nodes), cluster, overhead)
            .expect("dynamic run");
        assert_eq!(dynamic.image, reference, "dynamic image mismatch");
        rows[4][ni] = dynamic.makespan_secs;

        eprintln!("# {nodes} node(s) done");
    }

    if opts.csv {
        println!("series,nodes,runtime_secs");
        for (si, series) in SERIES.iter().enumerate() {
            for (ni, &nodes) in NODE_COUNTS.iter().enumerate() {
                println!("{series},{nodes},{:.4}", rows[si][ni]);
            }
        }
        println!();
        println!("series,nodes,speedup_vs_mpi2");
        for si in [1usize, 4] {
            for (ni, &nodes) in NODE_COUNTS.iter().enumerate() {
                println!("{},{nodes},{:.4}", SERIES[si], rows[3][ni] / rows[si][ni]);
            }
        }
        return;
    }

    println!("\nFig 6 (left): absolute runtimes in virtual seconds");
    print!("{:>22}", "");
    for &n in &NODE_COUNTS {
        print!("  {n:>2} Node{}", if n == 1 { " " } else { "s" });
    }
    println!();
    for (si, series) in SERIES.iter().enumerate() {
        print!("{series:>22}");
        for cell in &rows[si] {
            print!(" {}", secs(*cell));
        }
        println!();
    }

    println!("\nFig 6 (right): speed-up vs. MPI 2 Processes/Node");
    print!("{:>22}", "");
    for &n in &NODE_COUNTS {
        print!("  {n:>2} Node{}", if n == 1 { " " } else { "s" });
    }
    println!();
    for si in [1usize, 4] {
        print!("{:>22}", SERIES[si]);
        for (baseline, mine) in rows[3].iter().zip(&rows[si]) {
            print!(" {:>9.2}", baseline / mine);
        }
        println!();
    }

    // The qualitative claims of §V, checked on every regeneration.
    // (The paper's *growth* of the dynamic speed-up curve from 0.42 at
    // 1 node is driven by its anomalously expensive 1-node dynamic run
    // — see EXPERIMENTS.md; with realistic per-record costs the
    // dynamic net wins outright even on 1 node, so we check the
    // endpoint claims rather than the growth.)
    let n1 = 0;
    let n4 = 2;
    let n8 = NODE_COUNTS.len() - 1;
    println!("\nShape checks (§V):");
    check(
        "1-node: MPI beats S-Net Static (runtime overhead visible)",
        rows[2][n1] < rows[0][n1],
    );
    check(
        "2+ nodes: S-Net Static within 25% of MPI (overhead amortized)",
        (1..NODE_COUNTS.len()).all(|ni| rows[0][ni] < rows[2][ni] * 1.25),
    );
    check(
        "static scalability limited beyond 2 nodes (imbalanced scene)",
        rows[0][n4] / rows[0][n8] < 1.9, // 4→8 nodes: far from the ideal 2x
    );
    check(
        "dynamic beats every static variant on 8 nodes",
        (0..4).all(|si| rows[4][n8] < rows[si][n8]),
    );
    check(
        "dynamic speed-up vs MPI-2proc exceeds 1 from 4 nodes on",
        (n4..NODE_COUNTS.len()).all(|ni| rows[3][ni] / rows[4][ni] > 1.0),
    );
}

fn check(what: &str, ok: bool) {
    println!("  [{}] {what}", if ok { "ok" } else { "MISS" });
}
