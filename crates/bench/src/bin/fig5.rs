//! Fig 5 — "Runtimes on 8 nodes using simple factoring scheduling
//! (left) and block scheduling (right) on a 3000 by 3000 pixels scene".
//!
//! Regenerates both panels: the dynamic S-Net net on 8 nodes over the
//! full tasks × tokens grid of the paper (8, 16, 32, 48, 64, 72), once
//! with the simple-factoring schedule and once with block scheduling.
//!
//! ```text
//! cargo run -p snet-bench --release --bin fig5            # both panels
//! cargo run -p snet-bench --release --bin fig5 -- factoring
//! cargo run -p snet-bench --release --bin fig5 -- block --csv
//! ```

use snet_apps::{run_snet_cluster, NetVariant, Schedule, SnetConfig};
use snet_bench::{secs, FigureOpts};
use snet_dist::OverheadModel;

const NODES: usize = 8;
const TASKS: [u32; 6] = [8, 16, 32, 48, 64, 72];
const TOKENS: [u32; 6] = [8, 16, 32, 48, 64, 72];

fn main() {
    let opts = FigureOpts::parse(512);
    let panels: Vec<(&str, Schedule)> = match opts.rest.first().map(|s| s.as_str()) {
        Some("factoring") => vec![("Simple Factoring", Schedule::paper_factoring())],
        Some("block") => vec![("Block", Schedule::Block)],
        None => vec![
            ("Simple Factoring", Schedule::paper_factoring()),
            ("Block", Schedule::Block),
        ],
        Some(other) => panic!("unknown panel `{other}` (factoring|block)"),
    };
    let wl = opts.workload();
    let overhead = OverheadModel::default();
    let reference = wl.reference_image();
    eprintln!("{}", opts.banner("Fig 5"));

    for (name, schedule) in panels {
        // grid[ti][ki] = runtime with TASKS[ti] tasks and TOKENS[ki] tokens.
        let mut grid = vec![vec![0.0f64; TOKENS.len()]; TASKS.len()];
        for (ti, &tasks) in TASKS.iter().enumerate() {
            for (ki, &tokens) in TOKENS.iter().enumerate() {
                let cfg = SnetConfig {
                    variant: NetVariant::Dynamic,
                    nodes: NODES,
                    tasks,
                    tokens: tokens.min(tasks),
                    schedule,
                };
                let out = run_snet_cluster(&wl, &cfg, opts.cluster(NODES), overhead)
                    .expect("dynamic run");
                assert_eq!(out.image, reference, "image mismatch at {tasks}/{tokens}");
                grid[ti][ki] = out.makespan_secs;
            }
            eprintln!("# {name}: {tasks} tasks done");
        }

        if opts.csv {
            println!("schedule,tasks,tokens,runtime_secs");
            for (ti, &tasks) in TASKS.iter().enumerate() {
                for (ki, &tokens) in TOKENS.iter().enumerate() {
                    println!("{name},{tasks},{tokens},{:.4}", grid[ti][ki]);
                }
            }
            continue;
        }

        println!("\nFig 5: 8 Nodes, {name} Scheduling (virtual seconds)");
        print!("{:>10}", "tokens:");
        for &k in &TOKENS {
            print!(" {k:>9}");
        }
        println!();
        for (ti, &tasks) in TASKS.iter().enumerate() {
            print!("{tasks:>4} tasks");
            print!(" ");
            for cell in &grid[ti] {
                print!(" {}", secs(*cell));
            }
            println!();
        }

        // §V shape checks: 16 tokens (2 per node = 1 per CPU) near-best;
        // tokens == tasks worst for large task counts.
        let t48 = TASKS.iter().position(|&t| t == 48).expect("48 in grid");
        let k16 = TOKENS.iter().position(|&k| k == 16).expect("16 in grid");
        let best_k = (0..TOKENS.len())
            .min_by(|&a, &b| grid[t48][a].total_cmp(&grid[t48][b]))
            .expect("nonempty row");
        println!("\nShape checks (§V, {name}):");
        check(
            "48 tasks: 16 tokens within 15% of the row's best",
            grid[t48][k16] <= grid[t48][best_k] * 1.15,
        );
        check(
            "48 tasks: tokens == tasks is worse than 16 tokens",
            grid[t48][3] > grid[t48][k16],
        );
        check(
            "8 tasks: token count beyond 8 changes nothing (all pre-assigned)",
            {
                let row = &grid[0];
                row.iter().all(|&v| (v - row[0]).abs() < row[0] * 0.01)
            },
        );
    }
}

fn check(what: &str, ok: bool) {
    println!("  [{}] {what}", if ok { "ok" } else { "MISS" });
}
