//! # snet-dist — Distributed S-Net on the simulated cluster
//!
//! Executes an [`snet_core::NetSpec`] on the deterministic
//! discrete-event cluster of `snet-simnet`, honouring the Distributed
//! S-Net placement combinators: `A @ n` pins a subtree to node `n`, and
//! `A !@ <tag>` places each index replica on the node named by its tag
//! value (modulo the cluster size), exactly the prototype's "numbers
//! correspond to MPI task identifiers" (§III).
//!
//! Every component instance runs as a simulated process on its node.
//! Box invocations execute the *real* box function (the ray tracer
//! actually renders) and charge the reported abstract work as virtual
//! CPU time on the hosting node; record hand-offs charge the
//! [`OverheadModel`]'s per-hop glue cost on the sending node's CPU and
//! the record's wire size on the network (NIC serialization + link
//! latency across nodes, memory-copy cost within a node). The result is
//! a virtual-time makespan comparable against the hand-written MPI
//! baseline running on the same simulated hardware — the measurement
//! the paper's §V figures are built from.
//!
//! The engine shares the small-step semantics of `snet_core::semantics`
//! with the threaded engine, the scheduled engine, and the reference
//! interpreter, so a network means the same thing on all four
//! substrates; this crate only adds *where* things run and *what they
//! cost*.

use parking_lot::Mutex;
use snet_core::semantics::{self, MismatchPolicy};
use snet_core::value::AnyData;
use snet_core::{ChainStage, NetSpec, Record, SnetError, SyncOutcome, Value};
use snet_simnet::{Cluster, ClusterSpec, SimCtx, SimError, SimHandle, SimQueue, Simulation};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ------------------------------------------------------------ overhead

/// The S-Net runtime's per-record cost model.
///
/// The paper reports that S-Net's coordination overhead is visible on
/// one node and amortized from two nodes on (§V); this model makes that
/// overhead an explicit, tunable quantity instead of an accident of the
/// host machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverheadModel {
    /// Abstract CPU operations charged on the *sending* node for every
    /// record hop between components (stream hand-off, type match,
    /// dispatch bookkeeping). The unit is the same "op" the application
    /// work counters use, converted to seconds by
    /// [`ClusterSpec::cpu_ops_per_sec`].
    pub hop_ops: u64,
}

impl OverheadModel {
    /// No per-record runtime cost at all: isolates scheduling and
    /// transport effects (used by tests that check pure load-balancing
    /// properties).
    pub fn zero() -> OverheadModel {
        OverheadModel { hop_ops: 0 }
    }
}

impl Default for OverheadModel {
    /// Calibrated so that on the paper-shaped testbed the static S-Net
    /// net pays a real but bounded premium over the hand-written MPI
    /// baseline (§V: visible on 1 node, amortized from 2 on), while the
    /// dynamic net's merger chain does not drown its load-balancing win
    /// at the fig6 default resolution.
    fn default() -> OverheadModel {
        OverheadModel { hop_ops: 4_000 }
    }
}

// --------------------------------------------------------------- stats

#[derive(Default)]
struct Stats {
    records_hopped: AtomicU64,
    glue_ops: AtomicU64,
    box_ops: AtomicU64,
    wire_bytes: AtomicU64,
    sync_stores: AtomicU64,
    sync_fires: AtomicU64,
    sync_stranded: AtomicU64,
    star_unfoldings: AtomicU64,
    split_replicas: AtomicU64,
    dispatched: AtomicU64,
    passthroughs: AtomicU64,
}

impl Stats {
    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StatsSnapshot {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            records_hopped: get(&self.records_hopped),
            glue_ops: get(&self.glue_ops),
            box_ops: get(&self.box_ops),
            wire_bytes: get(&self.wire_bytes),
            sync_stores: get(&self.sync_stores),
            sync_fires: get(&self.sync_fires),
            sync_stranded: get(&self.sync_stranded),
            star_unfoldings: get(&self.star_unfoldings),
            split_replicas: get(&self.split_replicas),
            dispatched: get(&self.dispatched),
            passthroughs: get(&self.passthroughs),
        }
    }
}

/// Runtime counters of one cluster run (deterministic across repeated
/// runs of the same program).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Records handed between components (every edge traversal).
    pub records_hopped: u64,
    /// Abstract ops charged for runtime glue (hops, dispatch).
    pub glue_ops: u64,
    /// Abstract ops reported by box invocations.
    pub box_ops: u64,
    /// Bytes that crossed the simulated network (inter-node only).
    pub wire_bytes: u64,
    /// Synchrocell stores.
    pub sync_stores: u64,
    /// Synchrocell fires (merges emitted).
    pub sync_fires: u64,
    /// Records stranded in unfired synchrocells at end-of-stream.
    pub sync_stranded: u64,
    /// Star replica instantiations.
    pub star_unfoldings: u64,
    /// Index-split replica instantiations.
    pub split_replicas: u64,
    /// Records routed by dispatchers.
    pub dispatched: u64,
    /// Records forwarded past a non-matching component.
    pub passthroughs: u64,
}

// -------------------------------------------------------------- result

/// Result of one simulated cluster run.
#[derive(Debug)]
pub struct RunResult {
    /// Virtual makespan (time of the last processed event).
    pub makespan: Duration,
    /// Records that left the network, in virtual-arrival order.
    pub outputs: Vec<Record>,
    /// Runtime counters.
    pub stats: StatsSnapshot,
    /// Discrete events processed.
    pub events: u64,
    /// Simulated processes instantiated.
    pub processes: usize,
    /// Per-node CPU busy time in seconds (idle time = load imbalance).
    pub cpu_busy_secs: Vec<f64>,
}

// -------------------------------------------------------------- engine

/// A shared-ownership sender onto a component's input stream.
///
/// Closes the underlying queue when the *last* sender closes — the
/// discrete-event equivalent of dropping the last `Sender` clone in the
/// threaded engine.
struct Tx {
    q: SimQueue<Record>,
    senders: Arc<AtomicUsize>,
    /// Node hosting the consumer (transfer costs are charged from the
    /// sender's node to this one).
    dst_node: usize,
}

impl Tx {
    fn new(q: SimQueue<Record>, dst_node: usize) -> Tx {
        Tx {
            q,
            senders: Arc::new(AtomicUsize::new(1)),
            dst_node,
        }
    }

    fn another(&self) -> Tx {
        self.senders.fetch_add(1, Ordering::AcqRel);
        Tx {
            q: self.q.clone(),
            senders: Arc::clone(&self.senders),
            dst_node: self.dst_node,
        }
    }

    fn close(self) {
        if self.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.q.close();
        }
    }
}

struct Env {
    handle: SimHandle,
    cluster: Cluster,
    overhead: OverheadModel,
    stats: Arc<Stats>,
    error: Arc<Mutex<Option<SnetError>>>,
    nodes: usize,
    /// Shared (`Arc`ed) payloads already resident on each node, keyed
    /// by pointer identity and *holding* the payload: keeping the `Arc`
    /// alive pins its address for the whole run, so a recycled
    /// allocation can never alias a cached key (which would silently
    /// undercharge transfers and break run determinism). A payload
    /// crosses the wire to a node at most once — the transport
    /// equivalent of the MPI baseline broadcasting the scene once per
    /// node instead of once per section. Intra-node hand-off of shared
    /// payloads is a pointer pass (the copy work the application *does*
    /// perform — chunk blits, image assembly — is charged by the boxes
    /// themselves as `Work`).
    resident: Vec<Mutex<HashMap<usize, Arc<dyn AnyData>>>>,
}

impl Env {
    fn queue(&self, name: &str) -> SimQueue<Record> {
        SimQueue::new(&self.handle, name)
    }

    /// Records a failure and aborts the hosting process; the simulation
    /// kernel tears the remaining processes down.
    fn fail(&self, e: SnetError) -> ! {
        let msg = e.to_string();
        {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
        panic!("snet-dist component aborted: {msg}");
    }

    /// The bytes this hop actually moves: per-label framing plus every
    /// payload not already resident on the destination node. Shared
    /// (`Arc`ed) payloads are recorded as resident once delivered — and
    /// on the sender's node too (it evidently holds them), so a payload
    /// returning to its origin is never billed.
    fn billable_bytes(&self, rec: &Record, from: usize, to: usize) -> usize {
        let mut bytes = 0usize;
        for (_, v) in rec.fields() {
            bytes += 8; // label id + discriminant framing
            if let Value::Data(d) = v {
                let key = Arc::as_ptr(d) as *const u8 as usize;
                self.resident[from]
                    .lock()
                    .entry(key)
                    .or_insert_with(|| Arc::clone(d));
                if from == to {
                    // Pointer hand-off within a node.
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) =
                    self.resident[to].lock().entry(key)
                {
                    e.insert(Arc::clone(d));
                    bytes += v.approx_bytes();
                }
                continue;
            }
            bytes += v.approx_bytes();
        }
        bytes + rec.tags().count() * 16
    }

    /// Hands one record from a component on `from` to the consumer of
    /// `tx`: glue CPU cost on the sender, wire/memcpy cost on the path,
    /// delivery after the link latency.
    fn send(&self, ctx: &SimCtx, from: usize, tx: &Tx, rec: Record) {
        self.send_inner(ctx, from, tx, rec, true);
    }

    /// Like [`Env::send`] but without the glue CPU charge — for
    /// components the S-Net runtime splices out of the stream graph
    /// (fired synchrocells, identity filters), which forward records
    /// without touching them. Transport costs still apply.
    fn forward(&self, ctx: &SimCtx, from: usize, tx: &Tx, rec: Record) {
        self.send_inner(ctx, from, tx, rec, false);
    }

    fn send_inner(&self, ctx: &SimCtx, from: usize, tx: &Tx, rec: Record, glue: bool) {
        Stats::add(&self.stats.records_hopped, 1);
        if glue && self.overhead.hop_ops > 0 {
            self.cluster.compute(ctx, from, self.overhead.hop_ops);
            Stats::add(&self.stats.glue_ops, self.overhead.hop_ops);
        }
        let bytes = self.billable_bytes(&rec, from, tx.dst_node);
        if from != tx.dst_node {
            Stats::add(&self.stats.wire_bytes, bytes as u64);
        }
        let delay = self.cluster.transfer(ctx, from, tx.dst_node, bytes);
        tx.q.send_delayed(rec, delay);
    }

    fn place(&self, node: u32) -> usize {
        node as usize % self.nodes
    }

    fn place_tag(&self, value: i64) -> usize {
        value.rem_euclid(self.nodes as i64) as usize
    }
}

/// The node whose CPU consumes a subtree's input stream (where its
/// first component lives). Parents use it to charge transfer costs for
/// the edge feeding the subtree.
fn home_node(spec: &NetSpec, current: usize, nodes: usize) -> usize {
    match spec {
        NetSpec::At { body, node } => home_node(body, *node as usize % nodes, nodes),
        NetSpec::Named { body, .. } => home_node(body, current, nodes),
        NetSpec::Serial(a, _) => home_node(a, current, nodes),
        _ => current,
    }
}

/// Runs `spec` on a simulated cluster, feeding `inputs` from node 0 and
/// reporting the virtual makespan, outputs, and runtime counters.
pub fn run_on_cluster(
    spec: &NetSpec,
    inputs: Vec<Record>,
    cluster_spec: ClusterSpec,
    overhead: OverheadModel,
) -> Result<RunResult, SnetError> {
    assert!(cluster_spec.nodes > 0, "cluster needs at least one node");
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.handle(), cluster_spec);
    let env = Arc::new(Env {
        handle: sim.handle().clone(),
        cluster: cluster.clone(),
        overhead,
        stats: Arc::new(Stats::default()),
        error: Arc::new(Mutex::new(None)),
        nodes: cluster_spec.nodes,
        resident: (0..cluster_spec.nodes)
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
    });

    // Output collector on node 0 (the master assembles results).
    let out_q = env.queue("net-output");
    let outputs: Arc<Mutex<Vec<Record>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let out_q = out_q.clone();
        let outputs = Arc::clone(&outputs);
        sim.spawn("collector", move |ctx| {
            while let Some(rec) = out_q.recv(ctx) {
                outputs.lock().push(rec);
            }
        });
    }

    // The network between entry queue and collector.
    let entry_home = home_node(spec, 0, env.nodes);
    let entry_q = env.queue("net-input");
    build(spec, entry_q.clone(), Tx::new(out_q, 0), 0, &env);

    // Feeder: the master injects the input stream.
    {
        let env = Arc::clone(&env);
        let entry_tx = Tx::new(entry_q, entry_home);
        sim.spawn("feeder", move |ctx| {
            for rec in inputs {
                env.send(ctx, 0, &entry_tx, rec);
            }
            entry_tx.close();
        });
    }

    let report = match sim.run() {
        Ok(report) => report,
        Err(sim_err) => {
            // A component failure is recorded before the process aborts;
            // prefer the precise S-Net error over the kernel's report.
            if let Some(e) = env.error.lock().take() {
                return Err(e);
            }
            return Err(match sim_err {
                SimError::Deadlock { at, blocked } => SnetError::Engine(format!(
                    "cluster run deadlocked at {at}: {}",
                    blocked.join("; ")
                )),
                SimError::ProcessPanic { name, message } => {
                    SnetError::Engine(format!("cluster process `{name}` panicked: {message}"))
                }
            });
        }
    };
    if let Some(e) = env.error.lock().take() {
        return Err(e);
    }

    let outputs = std::mem::take(&mut *outputs.lock());
    Ok(RunResult {
        makespan: Duration::from_nanos(report.end_time.as_nanos()),
        outputs,
        stats: env.stats.snapshot(),
        events: report.events,
        processes: report.processes,
        cpu_busy_secs: cluster.cpu_busy().iter().map(|d| d.as_secs_f64()).collect(),
    })
}

/// Recursively instantiates `spec` between `input` and `output` as
/// simulated processes, with the subtree hosted on `node` unless a
/// placement combinator overrides it.
fn build(spec: &NetSpec, input: SimQueue<Record>, output: Tx, node: usize, env: &Arc<Env>) {
    match spec {
        NetSpec::FusedChain { stages } => {
            // Fusion is an execution-plan artifact of the shared-memory
            // engines; the simulated cluster models one process per
            // component, so a chain expands back to the serial
            // composition it denotes (same processes, same hop costs).
            let serial = NetSpec::pipeline(stages.iter().map(|s| match s {
                ChainStage::Box(def) => NetSpec::Box(def.clone()),
                ChainStage::Filter(f) => NetSpec::Filter(f.clone()),
            }));
            build(&serial, input, output, node, env);
        }
        NetSpec::Box(def) => {
            let def = def.clone();
            let env2 = Arc::clone(env);
            let name = format!("box-{}@{node}", def.sig.name);
            env.handle.spawn(&name, move |ctx| {
                while let Some(rec) = input.recv(ctx) {
                    let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        semantics::box_step(&def, rec, MismatchPolicy::Forward)
                    }))
                    .unwrap_or_else(|payload| {
                        let cause = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        Err(SnetError::BoxFailure {
                            name: def.sig.name.clone(),
                            cause: format!("panicked: {cause}"),
                        })
                    });
                    match step {
                        Ok(step) => {
                            if step.matched {
                                Stats::add(&env2.stats.box_ops, step.work.ops);
                                // The box's computation occupies this
                                // node's CPU for its reported work.
                                env2.cluster.compute(ctx, node, step.work.ops);
                            } else {
                                Stats::add(&env2.stats.passthroughs, 1);
                            }
                            for r in step.records {
                                env2.send(ctx, node, &output, r);
                            }
                        }
                        Err(e) => env2.fail(e),
                    }
                }
                output.close();
            });
        }
        NetSpec::Filter(f) => {
            let f = f.clone();
            let env2 = Arc::clone(env);
            // The compiler splices identity filters (`[]`) out of the
            // stream graph; they forward records at zero glue cost.
            let transparent = f.is_identity();
            env.handle.spawn(&format!("filter@{node}"), move |ctx| {
                while let Some(rec) = input.recv(ctx) {
                    if transparent {
                        env2.forward(ctx, node, &output, rec);
                        continue;
                    }
                    match semantics::filter_step(&f, rec, MismatchPolicy::Forward) {
                        Ok(step) => {
                            if !step.matched {
                                Stats::add(&env2.stats.passthroughs, 1);
                            }
                            for r in step.records {
                                env2.send(ctx, node, &output, r);
                            }
                        }
                        Err(e) => env2.fail(e),
                    }
                }
                output.close();
            });
        }
        NetSpec::Sync(spec) => {
            let spec = spec.clone();
            let env2 = Arc::clone(env);
            env.handle.spawn(&format!("sync@{node}"), move |ctx| {
                let mut state = spec.new_state();
                while let Some(rec) = input.recv(ctx) {
                    // A fired synchrocell is removed from the network by
                    // the runtime (it is the identity from then on), so
                    // its pass-throughs carry no glue cost.
                    let fired_before = state.is_fired();
                    let out = match state.push(&spec, rec) {
                        SyncOutcome::Stored => {
                            Stats::add(&env2.stats.sync_stores, 1);
                            continue;
                        }
                        SyncOutcome::Fired(m) => {
                            Stats::add(&env2.stats.sync_fires, 1);
                            m
                        }
                        SyncOutcome::Passed(r) if fired_before => {
                            env2.forward(ctx, node, &output, r);
                            continue;
                        }
                        SyncOutcome::Passed(r) => r,
                    };
                    env2.send(ctx, node, &output, out);
                }
                let stranded = state.pending().count() as u64;
                if stranded > 0 {
                    Stats::add(&env2.stats.sync_stranded, stranded);
                }
                output.close();
            });
        }
        NetSpec::Serial(a, b) => {
            let mid_home = home_node(b, node, env.nodes);
            let mid = env.queue("serial-mid");
            build(a, input, Tx::new(mid.clone(), mid_home), node, env);
            build(b, mid, output, node, env);
        }
        NetSpec::Parallel { branches, .. } => {
            let mut branch_txs = Vec::with_capacity(branches.len());
            let mut patterns = Vec::with_capacity(branches.len());
            for branch in branches {
                let bq = env.queue("par-branch");
                let bhome = home_node(branch, node, env.nodes);
                build(branch, bq.clone(), output.another(), node, env);
                branch_txs.push(Tx::new(bq, bhome));
                patterns.push(branch.input_patterns());
            }
            let env2 = Arc::clone(env);
            env.handle
                .spawn(&format!("par-dispatch@{node}"), move |ctx| {
                    while let Some(rec) = input.recv(ctx) {
                        let winners = semantics::matching_branches(&patterns, &rec);
                        match winners.first() {
                            Some(&i) => {
                                Stats::add(&env2.stats.dispatched, 1);
                                env2.send(ctx, node, &branch_txs[i], rec);
                            }
                            None => {
                                Stats::add(&env2.stats.passthroughs, 1);
                                env2.send(ctx, node, &output, rec);
                            }
                        }
                    }
                    for tx in branch_txs {
                        tx.close();
                    }
                    output.close();
                });
        }
        NetSpec::Star { body, exit, .. } => {
            build_star_tap(body, exit.clone(), input, output, node, env);
        }
        NetSpec::Split { body, tag, placed } => {
            let body = (**body).clone();
            let tag = *tag;
            let placed = *placed;
            let env2 = Arc::clone(env);
            env.handle
                .spawn(&format!("split-dispatch@{node}"), move |ctx| {
                    // BTreeMap: replica creation and teardown order must be
                    // deterministic for reproducible event logs.
                    let mut replicas: BTreeMap<i64, Tx> = BTreeMap::new();
                    while let Some(rec) = input.recv(ctx) {
                        let Some(value) = rec.tag(tag) else {
                            env2.fail(SnetError::MissingTag(tag));
                        };
                        if let std::collections::btree_map::Entry::Vacant(e) = replicas.entry(value)
                        {
                            Stats::add(&env2.stats.split_replicas, 1);
                            // `!@<tag>`: the tag value names the hosting
                            // node; plain `!` keeps replicas local.
                            let replica_node = if placed { env2.place_tag(value) } else { node };
                            let rhome = home_node(&body, replica_node, env2.nodes);
                            let rq = env2.queue("split-replica");
                            build(&body, rq.clone(), output.another(), replica_node, &env2);
                            e.insert(Tx::new(rq, rhome));
                        }
                        Stats::add(&env2.stats.dispatched, 1);
                        env2.send(ctx, node, &replicas[&value], rec);
                    }
                    for (_, tx) in replicas {
                        tx.close();
                    }
                    output.close();
                });
        }
        NetSpec::At { body, node: n } => {
            let placed = env.place(*n);
            build(body, input, output, placed, env);
        }
        NetSpec::Named { body, .. } => build(body, input, output, node, env),
    }
}

/// One tap of a serial-replication star (§III: "the chain is tapped
/// before every replica"): matching records exit; the rest enter a
/// lazily instantiated replica whose output feeds the next tap.
fn build_star_tap(
    body: &NetSpec,
    exit: snet_core::Pattern,
    input: SimQueue<Record>,
    output: Tx,
    node: usize,
    env: &Arc<Env>,
) {
    let body = body.clone();
    let env2 = Arc::clone(env);
    env.handle.spawn(&format!("star-tap@{node}"), move |ctx| {
        let mut into_body: Option<Tx> = None;
        while let Some(rec) = input.recv(ctx) {
            if exit.matches(&rec) {
                env2.send(ctx, node, &output, rec);
                continue;
            }
            if into_body.is_none() {
                Stats::add(&env2.stats.star_unfoldings, 1);
                let body_home = home_node(&body, node, env2.nodes);
                let body_q = env2.queue("star-body");
                let next_q = env2.queue("star-next");
                build(
                    &body,
                    body_q.clone(),
                    Tx::new(next_q.clone(), node),
                    node,
                    &env2,
                );
                build_star_tap(&body, exit.clone(), next_q, output.another(), node, &env2);
                into_body = Some(Tx::new(body_q, body_home));
            }
            let tx = into_body.as_ref().expect("replica just unfolded");
            env2.send(ctx, node, tx, rec);
        }
        if let Some(tx) = into_body {
            tx.close();
        }
        output.close();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
    use snet_core::{Pattern, Value, Variant};

    fn spec(nodes: usize) -> ClusterSpec {
        ClusterSpec {
            nodes,
            cpus_per_node: 2,
            cpu_ops_per_sec: 1e6,
            link_bandwidth: 1e6,
            link_latency: Duration::from_millis(1),
            mem_bandwidth: 100e6,
            quantum: Duration::from_millis(10),
        }
    }

    fn work_box(name: &str, ops: u64) -> NetSpec {
        NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse(name, &["x"], &[&["x"]]),
            move |r| Ok(BoxOutput::one(r.clone(), Work::ops(ops))),
        ))
    }

    fn xrecs(n: i64) -> Vec<Record> {
        (0..n)
            .map(|i| Record::new().with_field("x", Value::Int(i)))
            .collect()
    }

    #[test]
    fn box_work_becomes_virtual_time() {
        // 4 records × 1e6 ops at 1e6 ops/s on a 2-CPU node → ≥ 2 s.
        let net = work_box("w", 1_000_000);
        let out = run_on_cluster(&net, xrecs(4), spec(1), OverheadModel::zero()).unwrap();
        assert_eq!(out.outputs.len(), 4);
        assert!(out.makespan.as_secs_f64() >= 2.0, "{:?}", out.makespan);
        assert_eq!(out.stats.box_ops, 4_000_000);
        assert_eq!(
            out.stats.wire_bytes, 0,
            "single node: nothing crosses the wire"
        );
    }

    #[test]
    fn placement_charges_the_named_node() {
        // `w @ 1`: all compute lands on node 1.
        let net = NetSpec::at(work_box("w", 500_000), 1);
        let out = run_on_cluster(&net, xrecs(2), spec(2), OverheadModel::zero()).unwrap();
        assert!(out.cpu_busy_secs[1] > 0.9, "{:?}", out.cpu_busy_secs);
        assert!(out.cpu_busy_secs[0] < 0.1, "{:?}", out.cpu_busy_secs);
        // Records crossed to node 1 and back.
        assert!(out.stats.wire_bytes > 0);
    }

    #[test]
    fn placed_split_spreads_load_by_tag() {
        let net = NetSpec::split_placed(work_box("w", 400_000), "node");
        let inputs: Vec<Record> = (0..8)
            .map(|i| {
                Record::new()
                    .with_field("x", Value::Int(i))
                    .with_tag("node", i % 4)
            })
            .collect();
        let out = run_on_cluster(&net, inputs, spec(4), OverheadModel::zero()).unwrap();
        assert_eq!(out.stats.split_replicas, 4);
        for (i, busy) in out.cpu_busy_secs.iter().enumerate() {
            assert!(*busy > 0.5, "node {i} idle: {:?}", out.cpu_busy_secs);
        }
    }

    #[test]
    fn overhead_model_slows_the_run_down() {
        let net = work_box("w", 10_000);
        let cheap = run_on_cluster(&net, xrecs(16), spec(2), OverheadModel::zero()).unwrap();
        let costly =
            run_on_cluster(&net, xrecs(16), spec(2), OverheadModel { hop_ops: 100_000 }).unwrap();
        assert!(costly.makespan > cheap.makespan);
        assert!(costly.stats.glue_ops > 0);
        assert_eq!(cheap.stats.glue_ops, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let net = NetSpec::serial(
            NetSpec::split_placed(work_box("w", 123_456), "node"),
            work_box("post", 7_000),
        );
        let inputs: Vec<Record> = (0..10)
            .map(|i| {
                Record::new()
                    .with_field("x", Value::Int(i))
                    .with_tag("node", i % 3)
            })
            .collect();
        let a = run_on_cluster(&net, inputs.clone(), spec(3), OverheadModel::default()).unwrap();
        let b = run_on_cluster(&net, inputs, spec(3), OverheadModel::default()).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn sync_and_star_statistics_are_counted() {
        // [| {a}, {b} |]: a+b merge, then a second {a} passes through.
        let cell = NetSpec::Sync(snet_core::SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]));
        let out = run_on_cluster(
            &cell,
            vec![
                Record::new().with_field("a", Value::Int(1)),
                Record::new().with_field("b", Value::Int(2)),
                Record::new().with_field("a", Value::Int(3)),
            ],
            spec(1),
            OverheadModel::zero(),
        )
        .unwrap();
        assert_eq!(out.stats.sync_fires, 1);
        assert_eq!(out.outputs.len(), 2); // merge + passed-through third
    }

    #[test]
    fn component_failures_surface_with_attribution() {
        let bad = NetSpec::Box(BoxDef::from_fn(
            BoxSig::parse("fragile", &["x"], &[&["x"]]),
            |r| {
                if r.field("x").and_then(|v| v.as_int()) == Some(2) {
                    Err(SnetError::Engine("injected fault".into()))
                } else {
                    Ok(BoxOutput::one(r.clone(), Work::ops(1)))
                }
            },
        ));
        let err = run_on_cluster(&bad, xrecs(5), spec(2), OverheadModel::zero())
            .expect_err("fault must abort");
        let msg = err.to_string();
        assert!(
            msg.contains("fragile") && msg.contains("injected fault"),
            "{msg}"
        );
    }

    #[test]
    fn missing_split_tag_is_reported() {
        let net = NetSpec::split_placed(work_box("w", 1), "node");
        let err = run_on_cluster(&net, xrecs(1), spec(2), OverheadModel::zero())
            .expect_err("missing tag must abort");
        assert!(matches!(err, SnetError::MissingTag(_)), "{err}");
    }
}
