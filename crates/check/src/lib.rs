//! # snet-check — a loom-style model checker for the workspace's lock-free internals
//!
//! Stress tests sample interleavings; this crate *enumerates* them.
//! A model is an ordinary closure that spawns threads and touches
//! shared state through [`sync`] / [`thread`] / [`hint`] — the same
//! surface as `std`. The checker runs the closure repeatedly, each
//! time under a different schedule, driving the choice of which thread
//! performs each visible operation (atomic access, lock, notify, spawn,
//! yield) by depth-first search over the decision tree.
//!
//! ```
//! use snet_check::{model, sync::Mutex, sync::Arc, thread};
//!
//! let report = model(|| {
//!     let m = Arc::new(Mutex::new(0));
//!     let m2 = Arc::clone(&m);
//!     let t = thread::spawn(move || *m2.lock().unwrap() += 1);
//!     *m.lock().unwrap() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*m.lock().unwrap(), 2);
//! });
//! assert!(report.schedules > 1);
//! ```
//!
//! On failure (assertion panic or deadlock) the checker reports the
//! exact schedule — a `Vec<u32>` of decisions — plus the tail of the
//! operation trace, and [`replay`] re-runs that one schedule under a
//! debugger.
//!
//! ## What the model covers — and what it does not
//!
//! - **Sequentially consistent interleavings only.** Every atomic runs
//!   `SeqCst` regardless of the ordering the code requested, so
//!   weak-memory reorderings (a `Relaxed` load hoisted over an
//!   `Acquire`) are *not* explored. The TSan and Miri CI lanes cover
//!   that axis; the checker covers the scheduling axis (lost wakeups,
//!   missed-CAS windows, deadlocks), which is where every concurrency
//!   bug this workspace has actually shipped lived.
//! - **Preemption bounding.** Unbounded DFS explodes; by default a
//!   schedule may contain at most 3 *forced* preemptions (switching
//!   away from a runnable thread at a non-yield operation). Bugs
//!   reachable in few preemptions is the CHESS observation, and it has
//!   held for every protocol modeled here. Set
//!   [`Config::preemption_bound`] to `None` for exhaustive search on
//!   small models.
//! - **Timed waits have stuck-state semantics.** `wait_timeout` fires
//!   its timeout only when *no* thread is runnable — i.e. exactly when
//!   the execution would otherwise be stuck. A protocol that is
//!   correct never needs that backstop, which is checkable:
//!   [`timeouts_fired`] returns the count for the current execution
//!   and models assert it is zero. Code that branches on *real* time
//!   (`Instant::now` deadlines) cannot be modeled — keep real-time
//!   paths out of models.
//!
//! ## Running
//!
//! The shims compile against this façade only under `--cfg snet_check`:
//!
//! ```text
//! RUSTFLAGS="--cfg snet_check" cargo test -p snet-check
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod hint;
pub mod sync;
pub mod thread;

mod exec;

use exec::Choice;
use std::sync::Arc;

/// Search configuration. The defaults explore tens of thousands of
/// schedules in well under a second for the protocol models in
/// `tests/`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum *forced* preemptions per schedule (switching away from a
    /// runnable thread anywhere other than a voluntary yield). `None`
    /// means unbounded — full DFS.
    pub preemption_bound: Option<usize>,
    /// Stop after exploring this many schedules; the [`Report`] records
    /// whether the search completed or was cut off.
    pub max_schedules: usize,
    /// Abort any single execution after this many visible operations
    /// (livelock guard). Aborted executions count as `skipped`.
    pub max_ops: usize,
    /// Record the operation trace (thread id + op name) so failures can
    /// print it. Costs allocation per op; on by default.
    pub trace: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: Some(3),
            max_schedules: 200_000,
            max_ops: 20_000,
            trace: true,
        }
    }
}

/// Outcome of a completed search.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct schedules fully explored.
    pub schedules: usize,
    /// Executions aborted by the `max_ops` livelock guard.
    pub skipped: usize,
    /// Whether the decision tree was exhausted (vs. cut off by
    /// `max_schedules`).
    pub complete: bool,
    /// Deepest decision sequence seen.
    pub max_depth: usize,
}

/// A schedule that violated the model: an assertion panicked or the
/// execution deadlocked.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong, including per-thread wait states on deadlock.
    pub message: String,
    /// The decision sequence to pass to [`replay`].
    pub schedule: Vec<u32>,
    /// Operation trace of the failing execution (empty if
    /// [`Config::trace`] was off).
    pub trace: Vec<(usize, &'static str)>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model failure: {}", self.message)?;
        writeln!(f, "schedule: {:?}", self.schedule)?;
        if !self.trace.is_empty() {
            let tail = self.trace.len().saturating_sub(40);
            writeln!(f, "trace (last {} ops):", self.trace.len() - tail)?;
            for (tid, op) in &self.trace[tail..] {
                writeln!(f, "  [t{tid}] {op}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for Failure {}

/// Explores every schedule of `f` under the default [`Config`],
/// panicking with the schedule and trace on the first failure.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match check(Config::default(), f) {
        Ok(report) => report,
        Err(failure) => panic!("{failure}"),
    }
}

/// Explores schedules of `f` under `cfg`, returning the first
/// [`Failure`] instead of panicking — the form used by tests that
/// *expect* a buggy protocol to be caught.
pub fn check<F>(cfg: Config, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix: Vec<Choice> = Vec::new();
    let mut report = Report {
        schedules: 0,
        skipped: 0,
        complete: false,
        max_depth: 0,
    };
    loop {
        let outcome = exec::run_once(
            &f,
            prefix.clone(),
            cfg.preemption_bound,
            cfg.max_ops,
            cfg.trace,
        );
        if outcome.overflow {
            report.skipped += 1;
        } else {
            report.schedules += 1;
        }
        report.max_depth = report.max_depth.max(outcome.path.len());
        if let Some(message) = outcome.failure {
            return Err(Failure {
                message,
                schedule: outcome.path.iter().map(|c| c.chosen).collect(),
                trace: outcome.trace,
            });
        }
        if report.schedules + report.skipped >= cfg.max_schedules {
            return Ok(report);
        }
        // Backtrack: advance the deepest decision that still has an
        // unexplored alternative, dropping everything after it.
        prefix = outcome.path;
        loop {
            match prefix.last_mut() {
                None => {
                    report.complete = true;
                    return Ok(report);
                }
                Some(last) if last.chosen + 1 < last.n => {
                    last.chosen += 1;
                    break;
                }
                Some(_) => {
                    prefix.pop();
                }
            }
        }
    }
}

/// Re-runs `f` under one exact schedule (as printed by a [`Failure`]),
/// for debugging. Panics propagate out.
pub fn replay<F>(schedule: &[u32], f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let path: Vec<Choice> = schedule
        .iter()
        .map(|&chosen| Choice { n: 0, chosen })
        .collect();
    let outcome = exec::run_once(&f, path, None, usize::MAX, true);
    if let Some(message) = outcome.failure {
        let failure = Failure {
            message,
            schedule: outcome.path.iter().map(|c| c.chosen).collect(),
            trace: outcome.trace,
        };
        panic!("{failure}");
    }
}

/// How many timed waits were released by the stuck-state timeout rule
/// in the *current* execution. Call from inside a model, typically at
/// the end: `assert_eq!(snet_check::timeouts_fired(), 0)` pins that
/// the protocol under test never lost a wakeup and fell back on its
/// timeout.
pub fn timeouts_fired() -> usize {
    exec::timeouts_fired_now()
}

#[cfg(test)]
mod self_tests {
    //! The checker checking itself: these run under plain `cargo test`
    //! (no `--cfg snet_check` needed — the façade is always compiled,
    //! only the *shims'* use of it is cfg-gated).

    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::{check, model, thread, Config};

    /// Two unsynchronized increments: load+store is not atomic, so some
    /// schedule must observe the lost update.
    #[test]
    fn finds_lost_update() {
        let failure = check(Config::default(), || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("the lost-update schedule must be found");
        assert!(failure.message.contains("lost update"), "{failure}");
    }

    /// The same increments under a mutex: every schedule passes, and
    /// the search terminates (completeness of backtracking).
    #[test]
    fn mutex_protects_counter() {
        let report = model(|| {
            let m = Arc::new(Mutex::new(0usize));
            let m2 = Arc::clone(&m);
            let t = thread::spawn(move || *m2.lock().unwrap() += 1);
            *m.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
        assert!(report.complete, "search should exhaust: {report:?}");
        assert!(report.schedules > 1, "must explore >1 schedule");
    }

    /// Classic lost wakeup: the waiter checks the flag, the notifier
    /// sets-and-notifies in between... except a condvar wait while
    /// holding the check's mutex cannot lose the notify. The *broken*
    /// version (flag check outside the lock) deadlocks and the checker
    /// says so.
    #[test]
    fn finds_check_then_wait_race() {
        let failure = check(
            Config {
                // No timed waits here, so a lost wakeup is a hard
                // deadlock the checker reports directly.
                ..Config::default()
            },
            || {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let pair2 = Arc::clone(&pair);
                let t = thread::spawn(move || {
                    let (flag, cv) = &*pair2;
                    *flag.lock().unwrap() = true;
                    cv.notify_one();
                });
                let (flag, cv) = &*pair;
                // BUG under test: check the flag, drop the lock, then
                // wait without rechecking. The set+notify can land in
                // the window, and the notify finds no waiter.
                let ready = *flag.lock().unwrap();
                if !ready {
                    let g = flag.lock().unwrap();
                    let _g = cv.wait(g).unwrap();
                }
                t.join().unwrap();
            },
        )
        .expect_err("the eaten-wakeup deadlock must be found");
        assert!(failure.message.contains("deadlock"), "{failure}");
    }

    /// Correct condvar use: wait in a while-loop under the same lock
    /// as the flag. No schedule deadlocks.
    #[test]
    fn condvar_wait_while_is_sound() {
        let report = model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (flag, cv) = &*pair2;
                *flag.lock().unwrap() = true;
                cv.notify_one();
            });
            let (flag, cv) = &*pair;
            let mut g = flag.lock().unwrap();
            while !*g {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            t.join().unwrap();
        });
        assert!(report.complete);
    }

    /// Deterministic replay: a failing schedule re-runs to the same
    /// failure.
    #[test]
    fn replay_reproduces() {
        let body = || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        };
        let failure = check(Config::default(), body).expect_err("must fail");
        let schedule = failure.schedule.clone();
        let replayed = std::panic::catch_unwind(|| super::replay(&schedule, body));
        assert!(replayed.is_err(), "replaying the schedule must re-fail");
    }

    /// Timed waits fire only when stuck, and the count is observable.
    #[test]
    fn timed_wait_backstop_counts() {
        let report = model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            // Nobody will ever notify: the timed wait *must* use its
            // backstop, exactly once.
            let (flag, cv) = &*pair;
            let g = flag.lock().unwrap();
            let (_g, res) = cv
                .wait_timeout(g, std::time::Duration::from_millis(1))
                .unwrap();
            assert!(res.timed_out());
            assert_eq!(super::timeouts_fired(), 1);
        });
        assert!(report.complete);
    }

    /// Three threads under a preemption bound still terminate quickly.
    #[test]
    fn three_threads_bounded() {
        let report = model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let ts: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            n.fetch_add(1, Ordering::SeqCst);
            for t in ts {
                t.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 3);
        });
        assert!(report.schedules > 10);
    }
}
