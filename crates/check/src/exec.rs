//! The controlled scheduler: one execution = one schedule.
//!
//! Model threads are real OS threads, but exactly one ever runs at a
//! time: every thread owns a token (mutex + condvar pair) and blocks on
//! it whenever the scheduler has not handed it the floor. Each visible
//! operation (atomic access, lock, notify, spawn, yield) calls into
//! [`Ctx::op`], which picks the thread that performs the *next*
//! operation. Whenever more than one thread could run, the choice is a
//! **decision point**: the sequence of decisions is the schedule, and
//! the driver in `lib.rs` enumerates schedules by depth-first search
//! over the decision tree, bounded by [`crate::Config`].
//!
//! Blocking is modeled, not real: a thread that would block (contended
//! mutex, condvar wait, join) parks on its token after recording *what*
//! it waits for, and the unblocking operation (unlock, notify, thread
//! exit) marks it runnable again. When no thread is runnable the
//! execution is **stuck**: if timed waiters exist their timeouts fire
//! (counted in [`Exec::timeouts_fired`], so models can assert that a
//! protocol never needs its timeout safety net); otherwise the stuck
//! state is a deadlock and the schedule that produced it is reported.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Hard cap on model threads per execution; decision-point arity and
/// the token table stay tiny.
pub(crate) const MAX_THREADS: usize = 8;

/// Panic payload used to unwind model threads during teardown. Not a
/// failure by itself — the failure (if any) is already recorded in the
/// execution state.
pub(crate) struct AbortToken;

/// One scheduling (or notify-victim) decision: `chosen` out of `n`
/// alternatives. `n == 0` marks a replayed choice whose arity was not
/// recorded (external replay input) and is not consistency-checked.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub n: u32,
    pub chosen: u32,
}

/// What a parked thread is waiting for. Mutexes and condvars are
/// identified by address; addresses are stable because waiting borrows
/// the primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Ready to run (possibly holding locks).
    Runnable,
    /// Contending for the model mutex at this address.
    Mutex(usize),
    /// Parked on the condvar at this address; `timed` waiters may be
    /// woken by the stuck-state timeout rule.
    Condvar { addr: usize, timed: bool },
    /// Waiting for the thread with this id to finish.
    Join(usize),
    /// Exited (normally or by abort).
    Finished,
}

/// A thread's run token: the scheduler sets it, the thread waits on it.
pub(crate) struct Token {
    go: StdMutex<bool>,
    cv: StdCondvar,
}

impl Token {
    fn new() -> Arc<Token> {
        Arc::new(Token {
            go: StdMutex::new(false),
            cv: StdCondvar::new(),
        })
    }

    fn wait(&self) {
        let mut go = self.go.lock().unwrap_or_else(|e| e.into_inner());
        while !*go {
            go = self.cv.wait(go).unwrap_or_else(|e| e.into_inner());
        }
        *go = false;
    }

    fn set(&self) {
        *self.go.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_one();
    }
}

struct ThreadSlot {
    status: Status,
    token: Arc<Token>,
    /// Set when the thread was released from a timed condvar wait by
    /// the stuck-state rule rather than by a notify.
    timed_out: bool,
}

/// Per-execution mutable state, guarded by one real mutex. Only the
/// running thread mutates it between decision points; during teardown
/// several unwinding threads may touch it concurrently, which the real
/// mutex makes safe.
pub(crate) struct Exec {
    threads: Vec<ThreadSlot>,
    current: usize,
    /// Schedule prefix to replay, then extended with default choices.
    path: Vec<Choice>,
    pos: usize,
    preemptions: usize,
    ops: usize,
    pub(crate) trace: Vec<(usize, &'static str)>,
    aborting: bool,
    pub(crate) overflow: bool,
    pub(crate) failure: Option<String>,
    finished: usize,
    pub(crate) timeouts_fired: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl Exec {
    fn new(path: Vec<Choice>) -> Exec {
        Exec {
            threads: Vec::new(),
            current: 0,
            path,
            pos: 0,
            preemptions: 0,
            ops: 0,
            trace: Vec::new(),
            aborting: false,
            overflow: false,
            failure: None,
            finished: 0,
            timeouts_fired: 0,
            os_handles: Vec::new(),
        }
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t].status == Status::Runnable)
            .collect()
    }

    /// Consumes (or records) one decision among `n` alternatives.
    /// Single-alternative points are not recorded — they carry no
    /// information and would bloat the search tree.
    fn decide(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        if self.pos < self.path.len() {
            let c = self.path[self.pos];
            assert!(
                c.n == 0 || c.n as usize == n,
                "nondeterministic model: decision point {} had {} alternatives on \
                 replay but {} originally (models must not branch on real time or \
                 ambient randomness)",
                self.pos,
                n,
                c.n
            );
            assert!(
                (c.chosen as usize) < n,
                "replay schedule chose alternative {} of {n} at decision point {}",
                c.chosen,
                self.pos
            );
            self.pos += 1;
            c.chosen as usize
        } else {
            self.path.push(Choice {
                n: n as u32,
                chosen: 0,
            });
            self.pos += 1;
            0
        }
    }

    fn status_summary(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(t, s)| format!("thread {t}: {:?}", s.status))
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Wakes every registered thread so that blocked/parked threads
    /// observe `aborting` and unwind.
    fn abort_all(&mut self) {
        self.aborting = true;
        for slot in &self.threads {
            slot.token.set();
        }
    }
}

/// Per-execution context shared by the driver and every model thread.
pub(crate) struct Ctx {
    pub(crate) exec: StdMutex<Exec>,
    /// Signalled when the last thread exits.
    all_done: StdCondvar,
    preemption_bound: Option<usize>,
    max_ops: usize,
    record_trace: bool,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Ctx>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's execution context; panics outside a model run.
pub(crate) fn current() -> (Arc<Ctx>, usize) {
    CTX.with(|c| c.borrow().clone()).expect(
        "snet-check sync primitive used outside snet_check::model \
         (checked builds only run under the model scheduler)",
    )
}

pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn lock_exec(ctx: &Ctx) -> std::sync::MutexGuard<'_, Exec> {
    ctx.exec.lock().unwrap_or_else(|e| e.into_inner())
}

impl Ctx {
    /// One visible operation by the running thread `tid`: records the
    /// trace event and decides who performs the next operation.
    /// `voluntary` marks explicit yields (`thread::yield_now`,
    /// `hint::spin_loop`): switching away from a voluntary yield is
    /// free (not a preemption) and switching is the *default* choice,
    /// which keeps spin loops from monopolizing default schedules.
    pub(crate) fn op(self: &Arc<Ctx>, tid: usize, desc: &'static str, voluntary: bool) {
        let next_token;
        let my_token;
        {
            let mut ex = lock_exec(self);
            self.check_abort(&ex);
            ex.ops += 1;
            if ex.ops > self.max_ops {
                ex.overflow = true;
                ex.abort_all();
                drop(ex);
                panic::panic_any(AbortToken);
            }
            if self.record_trace {
                ex.trace.push((tid, desc));
            }
            let runnable = ex.runnable();
            debug_assert!(runnable.contains(&tid), "running thread must be runnable");
            let others: Vec<usize> = runnable.iter().copied().filter(|&t| t != tid).collect();
            let bounded = !voluntary && self.preemption_bound.is_some_and(|b| ex.preemptions >= b);
            let cands: Vec<usize> = if others.is_empty() || bounded {
                vec![tid]
            } else if voluntary {
                others.iter().copied().chain([tid]).collect()
            } else {
                [tid].into_iter().chain(others.iter().copied()).collect()
            };
            let next = cands[ex.decide(cands.len())];
            if next == tid {
                return;
            }
            if !voluntary {
                ex.preemptions += 1;
            }
            ex.current = next;
            next_token = Arc::clone(&ex.threads[next].token);
            my_token = Arc::clone(&ex.threads[tid].token);
        }
        next_token.set();
        my_token.wait();
        self.check_abort(&lock_exec(self));
    }

    fn check_abort(&self, ex: &Exec) {
        if ex.aborting {
            panic::panic_any(AbortToken);
        }
    }

    /// Parks `tid` with the given wait reason and hands the floor to
    /// some runnable thread (resolving stuck states). Returns whether
    /// the wake came from the stuck-state timeout rule.
    fn block(self: &Arc<Ctx>, tid: usize, status: Status) -> bool {
        let my_token;
        {
            let mut ex = lock_exec(self);
            self.check_abort(&ex);
            ex.threads[tid].status = status;
            ex.threads[tid].timed_out = false;
            my_token = Arc::clone(&ex.threads[tid].token);
            self.dispatch(&mut ex);
        }
        my_token.wait();
        let mut ex = lock_exec(self);
        self.check_abort(&ex);
        let timed_out = ex.threads[tid].timed_out;
        ex.threads[tid].timed_out = false;
        timed_out
    }

    /// Hands the floor to a runnable thread (a decision point when
    /// several are runnable). Called when the current thread parked or
    /// exited, so staying put is not an option: if nothing is runnable,
    /// fire pending timed waits, and failing that report a deadlock.
    /// Panics (unwinding the caller) on deadlock; does nothing when
    /// every thread has finished.
    fn dispatch(self: &Arc<Ctx>, ex: &mut Exec) {
        let mut runnable = ex.runnable();
        if runnable.is_empty() {
            let timed: Vec<usize> = (0..ex.threads.len())
                .filter(|&t| matches!(ex.threads[t].status, Status::Condvar { timed: true, .. }))
                .collect();
            if !timed.is_empty() {
                for &t in &timed {
                    ex.threads[t].status = Status::Runnable;
                    ex.threads[t].timed_out = true;
                    ex.timeouts_fired += 1;
                }
                runnable = timed;
            } else if ex.finished == ex.threads.len() {
                return; // execution complete; nobody left to schedule
            } else {
                let msg = format!(
                    "deadlock: no runnable thread and no timed waiter ({})",
                    ex.status_summary()
                );
                if ex.failure.is_none() {
                    ex.failure = Some(msg);
                }
                ex.abort_all();
                panic::panic_any(AbortToken);
            }
        }
        let next = runnable[ex.decide(runnable.len())];
        ex.current = next;
        ex.threads[next].token.set();
    }

    // ---- mutex protocol -------------------------------------------------

    /// Blocks until the model mutex at `addr` is observed free. The
    /// caller (the mutex itself) re-checks and re-calls on contention.
    pub(crate) fn mutex_block(self: &Arc<Ctx>, tid: usize, addr: usize) {
        self.block(tid, Status::Mutex(addr));
    }

    /// Marks every thread contending for `addr` runnable again.
    pub(crate) fn mutex_unlocked(self: &Arc<Ctx>, addr: usize) {
        let mut ex = lock_exec(self);
        if ex.aborting {
            return; // teardown: everyone is already being woken
        }
        for slot in &mut ex.threads {
            if slot.status == Status::Mutex(addr) {
                slot.status = Status::Runnable;
            }
        }
    }

    // ---- condvar protocol -----------------------------------------------

    /// Atomically releases the mutex at `mutex_addr` (waking its
    /// contenders) and parks on the condvar at `cv_addr` — the no-lost-
    /// wakeup guarantee of a real condvar. Returns true if the wake
    /// came from the stuck-state timeout rule.
    pub(crate) fn condvar_wait(
        self: &Arc<Ctx>,
        tid: usize,
        cv_addr: usize,
        mutex_addr: usize,
        timed: bool,
    ) -> bool {
        {
            let mut ex = lock_exec(self);
            self.check_abort(&ex);
            for slot in &mut ex.threads {
                if slot.status == Status::Mutex(mutex_addr) {
                    slot.status = Status::Runnable;
                }
            }
        }
        self.block(
            tid,
            Status::Condvar {
                addr: cv_addr,
                timed,
            },
        )
    }

    /// Wakes one (or all) waiters of the condvar at `addr`. With
    /// several waiters, *which* one receives a single notify is a
    /// decision point — exactly the nondeterminism that lost-wakeup
    /// bugs hide behind.
    pub(crate) fn condvar_notify(self: &Arc<Ctx>, addr: usize, all: bool) {
        let mut ex = lock_exec(self);
        if ex.aborting {
            return;
        }
        let waiters: Vec<usize> = (0..ex.threads.len())
            .filter(
                |&t| matches!(ex.threads[t].status, Status::Condvar { addr: a, .. } if a == addr),
            )
            .collect();
        if waiters.is_empty() {
            return; // notify with nobody waiting is lost, as in real life
        }
        if all {
            for &t in &waiters {
                ex.threads[t].status = Status::Runnable;
            }
        } else {
            let victim = waiters[ex.decide(waiters.len())];
            ex.threads[victim].status = Status::Runnable;
        }
    }

    // ---- thread protocol ------------------------------------------------

    /// Registers a new model thread and returns its id. The OS-level
    /// spawn happens in `thread.rs`; the new thread starts parked on
    /// its token and becomes schedulable immediately.
    pub(crate) fn register_thread(self: &Arc<Ctx>) -> (usize, Arc<Token>) {
        let mut ex = lock_exec(self);
        let tid = ex.threads.len();
        assert!(
            tid < MAX_THREADS,
            "model spawned more than {MAX_THREADS} threads"
        );
        let token = Token::new();
        ex.threads.push(ThreadSlot {
            status: Status::Runnable,
            token: Arc::clone(&token),
            timed_out: false,
        });
        (tid, token)
    }

    pub(crate) fn adopt_os_handle(self: &Arc<Ctx>, h: std::thread::JoinHandle<()>) {
        lock_exec(self).os_handles.push(h);
    }

    /// Parks the caller until thread `target` finishes.
    pub(crate) fn join_block(self: &Arc<Ctx>, tid: usize, target: usize) {
        loop {
            {
                let ex = lock_exec(self);
                self.check_abort(&ex);
                if ex.threads[target].status == Status::Finished {
                    return;
                }
            }
            self.block(tid, Status::Join(target));
        }
    }

    /// Normal end of a model thread's closure: mark finished, wake
    /// joiners, hand the floor onward.
    fn retire(self: &Arc<Ctx>, tid: usize) {
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut ex = lock_exec(self);
            if !ex.aborting {
                ex.threads[tid].status = Status::Finished;
                for slot in &mut ex.threads {
                    if slot.status == Status::Join(tid) {
                        slot.status = Status::Runnable;
                    }
                }
                ex.finished += 1;
                self.dispatch(&mut ex);
            } else {
                ex.threads[tid].status = Status::Finished;
                ex.finished += 1;
            }
        }));
        // A deadlock discovered while retiring unwinds out of dispatch;
        // the failure is recorded, the exit still counts.
        if result.is_err() {
            let mut ex = lock_exec(self);
            if ex.threads[tid].status != Status::Finished {
                ex.threads[tid].status = Status::Finished;
                ex.finished += 1;
            }
        }
        self.signal_if_done();
    }

    /// Exit path for a thread unwound by [`AbortToken`] or a real
    /// panic: count the exit without scheduling anything.
    fn exit_aborted(self: &Arc<Ctx>, tid: usize) {
        let mut ex = lock_exec(self);
        if ex.threads[tid].status != Status::Finished {
            ex.threads[tid].status = Status::Finished;
            ex.finished += 1;
        }
        drop(ex);
        self.signal_if_done();
    }

    fn signal_if_done(self: &Arc<Ctx>) {
        let ex = lock_exec(self);
        if ex.finished == ex.threads.len() {
            self.all_done.notify_all();
        }
    }

    /// Records a user panic (assertion failure in the model) and tears
    /// the execution down.
    fn fail_from_panic(self: &Arc<Ctx>, tid: usize, payload: &(dyn std::any::Any + Send)) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "model thread panicked".to_string());
        let mut ex = lock_exec(self);
        if ex.failure.is_none() {
            ex.failure = Some(format!("thread {tid} panicked: {msg}"));
        }
        ex.abort_all();
    }
}

/// Body wrapper for every model thread (including thread 0): installs
/// the thread-local context, waits for its first token, runs the
/// closure under `catch_unwind`, and routes the three exit flavors.
fn run_thread(ctx: Arc<Ctx>, tid: usize, token: Arc<Token>, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctx), tid)));
    token.wait();
    let aborted_before_start = lock_exec(&ctx).aborting;
    if aborted_before_start {
        ctx.exit_aborted(tid);
    } else {
        match panic::catch_unwind(AssertUnwindSafe(body)) {
            Ok(()) => ctx.retire(tid),
            Err(payload) => {
                if !payload.is::<AbortToken>() {
                    ctx.fail_from_panic(tid, payload.as_ref());
                }
                ctx.exit_aborted(tid);
            }
        }
    }
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Spawn entry point used by `thread.rs` for model-spawned threads.
pub(crate) fn spawn_model_thread(
    ctx: &Arc<Ctx>,
    tid: usize,
    token: Arc<Token>,
    body: impl FnOnce() + Send + 'static,
) -> std::thread::JoinHandle<()> {
    let ctx = Arc::clone(ctx);
    std::thread::Builder::new()
        .name(format!("snet-check-{tid}"))
        .spawn(move || run_thread(ctx, tid, token, body))
        .expect("spawn model thread")
}

/// Outcome of one fully explored schedule.
pub(crate) struct ExecOutcome {
    pub failure: Option<String>,
    pub overflow: bool,
    pub path: Vec<Choice>,
    pub trace: Vec<(usize, &'static str)>,
}

/// Runs the model closure once under the schedule prefix `path`
/// (extending it with default choices past the prefix) and returns the
/// complete schedule actually taken.
pub(crate) fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    path: Vec<Choice>,
    preemption_bound: Option<usize>,
    max_ops: usize,
    record_trace: bool,
) -> ExecOutcome {
    let ctx = Arc::new(Ctx {
        exec: StdMutex::new(Exec::new(path)),
        all_done: StdCondvar::new(),
        preemption_bound,
        max_ops,
        record_trace,
    });
    let (tid0, token0) = ctx.register_thread();
    debug_assert_eq!(tid0, 0);
    let f0 = Arc::clone(f);
    let h0 = {
        let ctx = Arc::clone(&ctx);
        let token = Arc::clone(&token0);
        std::thread::Builder::new()
            .name("snet-check-0".into())
            .spawn(move || run_thread(ctx, 0, token, move || f0()))
            .expect("spawn model thread 0")
    };
    token0.set();
    let handles;
    let outcome;
    {
        let mut ex = lock_exec(&ctx);
        while ex.finished < ex.threads.len() {
            ex = ctx.all_done.wait(ex).unwrap_or_else(|e| e.into_inner());
        }
        handles = std::mem::take(&mut ex.os_handles);
        outcome = ExecOutcome {
            failure: ex.failure.take(),
            overflow: ex.overflow,
            path: std::mem::take(&mut ex.path),
            trace: std::mem::take(&mut ex.trace),
        };
    }
    let _ = h0.join();
    for h in handles {
        let _ = h.join();
    }
    outcome
}

/// Stuck-state timeout count for the *current* execution; models call
/// this (via [`crate::timeouts_fired`]) to assert a protocol never
/// relied on its timeout safety net.
pub(crate) fn timeouts_fired_now() -> usize {
    let (ctx, _) = current();
    let n = lock_exec(&ctx).timeouts_fired;
    n
}
