//! Drop-in replacements for the `std::sync` surface the shims and the
//! sched mailbox path use. Under the model every access is a visible
//! operation (a potential preemption point) and blocking is simulated,
//! so the DFS driver in `lib.rs` can enumerate interleavings. The
//! signatures mirror `std::sync` closely enough that the shims switch
//! between the two with a pair of cfg'd `use` lines.

use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;

pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

use crate::exec;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model mutex. Ownership lives in a real atomic (`0` = free, else
/// owner tid + 1) so teardown — when several threads unwind at once —
/// stays race-free, but contention is *simulated*: a locker that
/// observes the mutex held parks in the scheduler until an unlock
/// marks it runnable, then re-checks.
pub struct Mutex<T: ?Sized> {
    held: std::sync::atomic::AtomicUsize,
    value: UnsafeCell<T>,
}

// SAFETY: the model scheduler runs exactly one thread at a time between
// visible operations, and `held` serializes access to `value` exactly
// like a real mutex: a `&mut T` only exists inside a `MutexGuard`,
// which is only constructed after winning `held`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: as above — the guard protocol provides the mutual exclusion
// that `Sync` requires.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            held: std::sync::atomic::AtomicUsize::new(0),
            value: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.value.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        &self.held as *const _ as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (ctx, tid) = exec::current();
        loop {
            ctx.op(tid, "Mutex::lock", false);
            if self
                .held
                .compare_exchange(0, tid + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(MutexGuard { lock: self });
            }
            ctx.mutex_block(tid, self.addr());
        }
    }

    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        let (ctx, tid) = exec::current();
        ctx.op(tid, "Mutex::try_lock", false);
        if self
            .held
            .compare_exchange(0, tid + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            Ok(MutexGuard { lock: self })
        } else {
            Err(TryLockError::WouldBlock)
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        // SAFETY: `&mut self` is exclusive access — no other thread can
        // observe this mutex, so no guard exists and the cell is ours.
        Ok(unsafe { &mut *self.value.get() })
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the mutex (`held` was won in `lock`/
        // `try_lock` and is only cleared in `drop`/`condvar wait`), so
        // no other reference to the value exists.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive by the mutex protocol.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.held.store(0, Ordering::SeqCst);
        if exec::in_model() {
            let (ctx, _) = exec::current();
            ctx.mutex_unlocked(self.lock.addr());
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait. `std`'s `WaitTimeoutResult` cannot be
/// constructed outside `std`, so the façade ships its own with the same
/// `timed_out()` accessor; code that only calls `timed_out()` (all of
/// ours) compiles against either.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model condvar. Waiters are tracked by the scheduler keyed on this
/// struct's address; the marker byte keeps distinct condvars at
/// distinct addresses (a ZST would let two condvars coincide).
///
/// Timed waits have *stuck-state* semantics rather than real-time
/// semantics: a timeout fires only when no thread is runnable, i.e.
/// exactly when the wait would otherwise deadlock. The per-execution
/// count of fired timeouts is exposed via [`crate::timeouts_fired`] so
/// models can assert a protocol never leaned on its timeout backstop.
pub struct Condvar {
    _marker: std::sync::atomic::AtomicU8,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            _marker: std::sync::atomic::AtomicU8::new(0),
        }
    }

    fn addr(&self) -> usize {
        &self._marker as *const _ as usize
    }

    fn wait_inner<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let (ctx, tid) = exec::current();
        ctx.op(
            tid,
            if timed {
                "Condvar::wait_timeout"
            } else {
                "Condvar::wait"
            },
            false,
        );
        let mutex = guard.lock;
        // Release the mutex without running the guard's wake-up logic:
        // the scheduler wakes the mutex's contenders inside the same
        // critical section that parks us, making unlock-and-wait atomic
        // (the real condvar guarantee — no window for a lost wakeup).
        mutex.held.store(0, Ordering::SeqCst);
        std::mem::forget(guard);
        let mutex_addr = mutex.addr();
        let timed_out = ctx.condvar_wait(tid, self.addr(), mutex_addr, timed);
        // Re-acquire before returning, as a real condvar does.
        let guard = mutex.lock().unwrap_or_else(PoisonError::into_inner);
        (guard, timed_out)
    }

    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (guard, _) = self.wait_inner(guard, false);
        Ok(guard)
    }

    pub fn wait_timeout<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (guard, timed_out) = self.wait_inner(guard, true);
        Ok((guard, WaitTimeoutResult(timed_out)))
    }

    pub fn wait_while<'a, T: ?Sized, F: FnMut(&mut T) -> bool>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>> {
        while condition(&mut guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    pub fn notify_one(&self) {
        let (ctx, tid) = exec::current();
        ctx.op(tid, "Condvar::notify_one", false);
        ctx.condvar_notify(self.addr(), false);
    }

    pub fn notify_all(&self) {
        let (ctx, tid) = exec::current();
        ctx.op(tid, "Condvar::notify_all", false);
        ctx.condvar_notify(self.addr(), true);
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Arc re-export — no scheduling semantics of its own.
// ---------------------------------------------------------------------------

pub use std::sync::Arc;

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Atomics under the model: every access first yields to the scheduler
/// (a decision point), then performs the real operation SeqCst. The
/// checker therefore explores **sequentially consistent interleavings
/// only** — weaker-ordering reorderings are out of scope and covered
/// by the TSan/Miri CI lanes instead. The requested ordering is kept
/// in the trace label for readability but does not affect exploration.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::exec;

    macro_rules! model_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                pub const fn new(v: $ty) -> Self {
                    Self(std::sync::atomic::$std::new(v))
                }

                fn op(desc: &'static str) {
                    let (ctx, tid) = exec::current();
                    ctx.op(tid, desc, false);
                }

                pub fn load(&self, _o: Ordering) -> $ty {
                    Self::op(concat!(stringify!($name), "::load"));
                    self.0.load(Ordering::SeqCst)
                }

                pub fn store(&self, v: $ty, _o: Ordering) {
                    Self::op(concat!(stringify!($name), "::store"));
                    self.0.store(v, Ordering::SeqCst)
                }

                pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                    Self::op(concat!(stringify!($name), "::swap"));
                    self.0.swap(v, Ordering::SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    _s: Ordering,
                    _f: Ordering,
                ) -> Result<$ty, $ty> {
                    Self::op(concat!(stringify!($name), "::compare_exchange"));
                    self.0
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                pub fn compare_exchange_weak(
                    &self,
                    cur: $ty,
                    new: $ty,
                    _s: Ordering,
                    _f: Ordering,
                ) -> Result<$ty, $ty> {
                    // Weak CAS spurious failure is a scheduling artifact
                    // the SC model does not reproduce; strong semantics
                    // over-approximate success, and retry loops remain
                    // correct either way.
                    Self::op(concat!(stringify!($name), "::compare_exchange_weak"));
                    self.0
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                pub fn get_mut(&mut self) -> &mut $ty {
                    self.0.get_mut()
                }

                pub fn into_inner(self) -> $ty {
                    self.0.into_inner()
                }
            }
        };
        ($name:ident, $std:ident, $ty:ty, arith) => {
            model_atomic!($name, $std, $ty);

            impl $name {
                pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                    Self::op(concat!(stringify!($name), "::fetch_add"));
                    self.0.fetch_add(v, Ordering::SeqCst)
                }

                pub fn fetch_sub(&self, v: $ty, _o: Ordering) -> $ty {
                    Self::op(concat!(stringify!($name), "::fetch_sub"));
                    self.0.fetch_sub(v, Ordering::SeqCst)
                }

                pub fn fetch_or(&self, v: $ty, _o: Ordering) -> $ty {
                    Self::op(concat!(stringify!($name), "::fetch_or"));
                    self.0.fetch_or(v, Ordering::SeqCst)
                }

                pub fn fetch_and(&self, v: $ty, _o: Ordering) -> $ty {
                    Self::op(concat!(stringify!($name), "::fetch_and"));
                    self.0.fetch_and(v, Ordering::SeqCst)
                }

                pub fn fetch_max(&self, v: $ty, _o: Ordering) -> $ty {
                    Self::op(concat!(stringify!($name), "::fetch_max"));
                    self.0.fetch_max(v, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicUsize, AtomicUsize, usize, arith);
    model_atomic!(AtomicIsize, AtomicIsize, isize, arith);
    model_atomic!(AtomicU32, AtomicU32, u32, arith);
    model_atomic!(AtomicU64, AtomicU64, u64, arith);

    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        fn yield_op(desc: &'static str) {
            let (ctx, tid) = exec::current();
            ctx.op(tid, desc, false);
        }

        pub fn load(&self, _o: Ordering) -> bool {
            Self::yield_op("AtomicBool::load");
            self.0.load(Ordering::SeqCst)
        }

        pub fn store(&self, v: bool, _o: Ordering) {
            Self::yield_op("AtomicBool::store");
            self.0.store(v, Ordering::SeqCst)
        }

        pub fn swap(&self, v: bool, _o: Ordering) -> bool {
            Self::yield_op("AtomicBool::swap");
            self.0.swap(v, Ordering::SeqCst)
        }

        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            _s: Ordering,
            _f: Ordering,
        ) -> Result<bool, bool> {
            Self::yield_op("AtomicBool::compare_exchange");
            self.0
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
        }

        pub fn get_mut(&mut self) -> &mut bool {
            self.0.get_mut()
        }

        pub fn into_inner(self) -> bool {
            self.0.into_inner()
        }
    }

    #[derive(Debug)]
    pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            Self(std::sync::atomic::AtomicPtr::new(p))
        }

        fn yield_op(desc: &'static str) {
            let (ctx, tid) = exec::current();
            ctx.op(tid, desc, false);
        }

        pub fn load(&self, _o: Ordering) -> *mut T {
            Self::yield_op("AtomicPtr::load");
            self.0.load(Ordering::SeqCst)
        }

        pub fn store(&self, p: *mut T, _o: Ordering) {
            Self::yield_op("AtomicPtr::store");
            self.0.store(p, Ordering::SeqCst)
        }

        pub fn swap(&self, p: *mut T, _o: Ordering) -> *mut T {
            Self::yield_op("AtomicPtr::swap");
            self.0.swap(p, Ordering::SeqCst)
        }

        pub fn compare_exchange(
            &self,
            cur: *mut T,
            new: *mut T,
            _s: Ordering,
            _f: Ordering,
        ) -> Result<*mut T, *mut T> {
            Self::yield_op("AtomicPtr::compare_exchange");
            self.0
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
        }

        pub fn get_mut(&mut self) -> &mut *mut T {
            self.0.get_mut()
        }

        pub fn into_inner(self) -> *mut T {
            self.0.into_inner()
        }
    }

    /// Fences collapse under sequential consistency; this is a visible
    /// operation (preemption point) and nothing more.
    pub fn fence(_o: Ordering) {
        let (ctx, tid) = exec::current();
        ctx.op(tid, "fence", false);
    }
}
