//! `std::hint` stand-ins with scheduling semantics.

/// Under the model a spin-wait hint is a *voluntary yield*: the
/// scheduler prefers to run another thread, so `while cas_fails {
/// spin_loop() }` loops make progress on the default schedule instead
/// of spinning to the op cap.
pub fn spin_loop() {
    let (ctx, tid) = crate::exec::current();
    ctx.op(tid, "hint::spin_loop", true);
}
