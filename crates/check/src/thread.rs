//! Model threads: `spawn`/`JoinHandle`/`yield_now` with the `std::thread`
//! surface the shims use. Spawned closures run on real OS threads but
//! only ever one at a time, under the scheduler in `exec.rs`.

use std::sync::{Arc, Mutex as StdMutex};

use crate::exec;

pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
}

/// Spawns a model thread. The spawn itself is a visible operation, and
/// the child is schedulable immediately — the scheduler may run it
/// before, interleaved with, or after the parent's next operation.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (ctx, parent) = exec::current();
    let (tid, token) = ctx.register_thread();
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let h = exec::spawn_model_thread(&ctx, tid, token, move || {
        let out = f();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
    });
    ctx.adopt_os_handle(h);
    // The decision point *after* registration: the child may win it.
    ctx.op(parent, "thread::spawn", false);
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Blocks (in the model) until the thread finishes. The model
    /// aborts the whole execution on any panic, so unlike
    /// `std::thread::JoinHandle::join` this never returns `Err`.
    pub fn join(self) -> std::thread::Result<T> {
        let (ctx, tid) = exec::current();
        ctx.op(tid, "JoinHandle::join", false);
        ctx.join_block(tid, self.tid);
        let out = self
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined model thread produced no value");
        Ok(out)
    }
}

/// A voluntary yield: switching away costs no preemption budget, and
/// the scheduler prefers to run *someone else* so spin loops make
/// progress under the default (all-zero) schedule.
pub fn yield_now() {
    let (ctx, tid) = exec::current();
    ctx.op(tid, "thread::yield_now", true);
}
