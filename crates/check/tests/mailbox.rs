//! The sched engine's mailbox wake protocol (`sched.rs::notify` /
//! `park`), modeled against the snet-check façade — runs in every
//! build, no special RUSTFLAGS.
//!
//! The protocol: producers CAS a per-task `scheduled` flag, push the
//! task, and wake the worker condvar only when `sleepers > 0`
//! (skipping the syscall when every worker is busy). A parking worker
//! registers as a sleeper and **re-probes the injector** before
//! waiting, holding the sleep lock throughout; the producer-side wake
//! is **lock-then-notify** (acquire and release the sleep lock before
//! `notify_one`), which serializes the notify against the probe→wait
//! window.
//!
//! That lock-then-notify is a fix this checker found. The original
//! protocol notified without the lock, and the DFS driver surfaced the
//! schedule where the producer's entire push+load+notify lands between
//! the worker's injector re-probe and its condvar wait: the wake is
//! lost and the worker burns its 1ms timed-wait backstop (observable
//! here as `timeouts_fired() == 1`; in production, as bounded wake
//! latency). `unlocked_notify_leans_on_the_timeout` keeps that
//! schedule as a regression model; `shipped_protocol_*` pins that the
//! fixed protocol never touches the backstop on any schedule.

use snet_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use snet_check::sync::{Arc, Condvar, Mutex};
use snet_check::{check, thread, Config};
use std::time::Duration;

/// How the producer-side wake is issued, and how the worker waits.
#[derive(Clone, Copy)]
struct Variant {
    /// Skip the notify when `sleepers == 0` (the shipped gate).
    gate_on_sleepers: bool,
    /// Acquire+release the sleep lock before notifying (the fix).
    lock_before_notify: bool,
    /// Re-probe the injector after sleeper registration (shipped).
    reprobe: bool,
    /// Timed wait (the 1ms production backstop) vs. untimed — untimed
    /// turns any lost wake into a hard deadlock the checker reports.
    timed: bool,
}

const SHIPPED: Variant = Variant {
    gate_on_sleepers: true,
    lock_before_notify: true,
    reprobe: true,
    timed: true,
};

/// The worker-pool shared state, reduced to the wake protocol: the
/// injector is a plain queue of task ids, each task is its `scheduled`
/// flag.
struct Pool {
    injector: Mutex<Vec<usize>>,
    sleep: Mutex<()>,
    cv: Condvar,
    sleepers: AtomicUsize,
    scheduled: [AtomicBool; 2],
    done: [AtomicUsize; 2],
}

impl Pool {
    fn new() -> Pool {
        Pool {
            injector: Mutex::new(Vec::new()),
            sleep: Mutex::new(()),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            scheduled: [AtomicBool::new(false), AtomicBool::new(false)],
            done: [AtomicUsize::new(0), AtomicUsize::new(0)],
        }
    }

    /// `sched.rs::notify`: claim the flag, push, conditionally wake.
    fn notify(&self, task: usize, v: Variant) {
        if self.scheduled[task]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.injector.lock().unwrap().push(task);
            if !v.gate_on_sleepers || self.sleepers.load(Ordering::SeqCst) > 0 {
                if v.lock_before_notify {
                    drop(self.sleep.lock().unwrap());
                }
                self.cv.notify_one();
            }
        }
    }

    /// `sched.rs::park`: register as sleeper under the sleep lock,
    /// re-probe, wait (releasing the lock atomically).
    fn park(&self, v: Variant) {
        let sleep = self.sleep.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if v.reprobe && !self.injector.lock().unwrap().is_empty() {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        if v.timed {
            let _ = self
                .cv
                .wait_timeout(sleep, Duration::from_millis(1))
                .unwrap();
        } else {
            let _ = self.cv.wait(sleep).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Worker loop: probe, park when empty, run claimed tasks until
    /// both have been executed once.
    fn worker(&self, v: Variant) {
        loop {
            let task = self.injector.lock().unwrap().pop();
            match task {
                Some(t) => {
                    // `run_task`'s tail: clear the flag, process.
                    self.scheduled[t].store(false, Ordering::Release);
                    self.done[t].fetch_add(1, Ordering::SeqCst);
                }
                None => {
                    if self.done[0].load(Ordering::SeqCst) > 0
                        && self.done[1].load(Ordering::SeqCst) > 0
                    {
                        return;
                    }
                    self.park(v);
                }
            }
        }
    }
}

fn scenario(v: Variant) {
    let pool = Arc::new(Pool::new());
    let producer = {
        let pool = Arc::clone(&pool);
        thread::spawn(move || {
            pool.notify(0, v);
            pool.notify(1, v);
        })
    };
    pool.worker(v);
    producer.join().unwrap();
    assert_eq!(pool.done[0].load(Ordering::SeqCst), 1, "task 0 must run");
    assert_eq!(pool.done[1].load(Ordering::SeqCst), 1, "task 1 must run");
    assert!(
        pool.injector.lock().unwrap().is_empty(),
        "all pushed work drained"
    );
}

/// The shipped protocol: every schedule drains both tasks and *never*
/// needs the timed-wait backstop.
#[test]
fn shipped_protocol_never_uses_the_timeout() {
    // Bound 4 rather than the default 3: the 2-thread protocol
    // exhausts at bound 3; one more preemption level clears the
    // 1,000-schedule coverage floor while still completing.
    let cfg = Config {
        preemption_bound: Some(4),
        ..Config::default()
    };
    let report = check(cfg, || {
        scenario(SHIPPED);
        assert_eq!(
            snet_check::timeouts_fired(),
            0,
            "wake protocol must work without its timeout backstop"
        );
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// The shipped protocol with the backstop removed entirely (untimed
/// wait) still cannot deadlock — the timeout really is redundant.
#[test]
fn shipped_protocol_sound_without_any_timeout() {
    let cfg = Config {
        preemption_bound: Some(4),
        ..Config::default()
    };
    let report = check(cfg, || {
        scenario(Variant {
            timed: false,
            ..SHIPPED
        })
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// Regression model for the bug this checker found: with the notify
/// issued *outside* the sleep lock (the original protocol), the
/// producer's push+gate-check+notify can land entirely between the
/// worker's injector re-probe and its wait — the wake is lost. With
/// the backstop removed that is a hard deadlock, and the checker
/// reports the schedule.
#[test]
fn unlocked_notify_leans_on_the_timeout() {
    let failure = check(Config::default(), || {
        scenario(Variant {
            lock_before_notify: false,
            timed: false,
            ..SHIPPED
        })
    })
    .expect_err("the unlocked notify must lose a wake under some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
}

/// Delete the re-probe instead and the untimed variant also deadlocks:
/// the producer pushes after the worker's empty probe but reads
/// `sleepers == 0` before registration and skips the notify — the race
/// `park`'s re-probe exists to close.
#[test]
fn missing_reprobe_is_a_lost_wakeup() {
    let failure = check(Config::default(), || {
        scenario(Variant {
            reprobe: false,
            timed: false,
            ..SHIPPED
        })
    })
    .expect_err("removing the re-probe must deadlock under some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
}

/// The sleeper gate is pure performance, not correctness: removing it
/// (notify on every push) while keeping lock-then-notify and the
/// re-probe stays sound without any timeout.
#[test]
fn gate_is_perf_only() {
    let cfg = Config {
        preemption_bound: Some(4),
        ..Config::default()
    };
    let report = check(cfg, || {
        scenario(Variant {
            gate_on_sleepers: false,
            timed: false,
            ..SHIPPED
        })
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// And the converse: notifying on every push does NOT excuse skipping
/// lock-then-notify. Even ungated, an unlocked notify can land between
/// the worker's re-probe and its wait — the race is in the
/// probe-to-wait window, not in the gate. Anyone weakening
/// `park`/`notify` must break one of these tests.
#[test]
fn unlocked_notify_races_even_ungated() {
    let failure = check(Config::default(), || {
        scenario(Variant {
            gate_on_sleepers: false,
            lock_before_notify: false,
            timed: false,
            ..SHIPPED
        })
    })
    .expect_err("the unlocked notify must lose a wake even without the gate");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
}
