//! The streaming sink-finalize completion latch (`sched.rs`'s
//! `Run::signal_done` / `wait_done`), modeled against the snet-check
//! façade — runs in every build, no special RUSTFLAGS.
//!
//! The protocol: the worker that finalizes the sink sets `done` under
//! its mutex and `notify_all`s; drivers wait in a while-loop under the
//! same mutex with a 500ms timed wait that is documented as "a
//! lost-wakeup safety net, not a poll interval". These models make
//! that documentation a theorem: on every schedule the latch completes
//! without firing a timeout, even with the safety net deleted — and
//! the variant that writes the flag *outside* the mutex (the bug the
//! pattern exists to prevent) deadlocks on a schedule the checker
//! prints.

use snet_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use snet_check::sync::{Arc, Condvar, Mutex};
use snet_check::{check, thread, Config};
use std::time::Duration;

struct Latch {
    done: Mutex<bool>,
    done_cv: Condvar,
    /// The broken variant's flag: written without the mutex.
    done_racy: AtomicBool,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            done_racy: AtomicBool::new(false),
        }
    }

    /// `Run::signal_done`: flag under the lock, then notify.
    fn signal(&self) {
        *self.done.lock().unwrap() = true;
        self.done_cv.notify_all();
    }

    /// `Run::wait_done`: while-loop under the flag's mutex; `timed`
    /// mirrors the 500ms production safety net.
    fn wait(&self, timed: bool) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            if timed {
                let (guard, _) = self
                    .done_cv
                    .wait_timeout(done, Duration::from_millis(500))
                    .unwrap();
                done = guard;
            } else {
                done = self.done_cv.wait(done).unwrap();
            }
        }
    }

    /// The bug the under-lock write prevents: set the flag *outside*
    /// the mutex, then notify. A waiter that read `false` under the
    /// lock can be preempted before its wait; the notify lands in the
    /// gap and is lost.
    fn signal_racy(&self) {
        self.done_racy.store(true, Ordering::SeqCst);
        self.done_cv.notify_all();
    }

    fn wait_racy(&self) {
        loop {
            if self.done_racy.load(Ordering::SeqCst) {
                return;
            }
            let g = self.done.lock().unwrap();
            // Re-check inside the lock — but the flag is not written
            // under this lock, so the re-check closes nothing.
            if self.done_racy.load(Ordering::SeqCst) {
                return;
            }
            let _g = self.done_cv.wait(g).unwrap();
        }
    }
}

/// One finalizing worker, two waiting drivers (the `run_batch` caller
/// and a helper — `notify_all` must wake both): every schedule
/// completes without touching the 500ms safety net.
#[test]
fn latch_never_needs_the_safety_net() {
    let cfg = Config {
        preemption_bound: Some(4),
        ..Config::default()
    };
    let report = check(cfg, || {
        let latch = Arc::new(Latch::new());
        let woken = Arc::new(AtomicUsize::new(0));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let latch = Arc::clone(&latch);
                let woken = Arc::clone(&woken);
                thread::spawn(move || {
                    latch.wait(true);
                    woken.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        latch.signal();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::SeqCst), 2, "notify_all wakes both");
        assert_eq!(
            snet_check::timeouts_fired(),
            0,
            "the 500ms timeout must be a safety net, never the mechanism"
        );
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// Delete the safety net entirely (untimed waits): still no schedule
/// hangs — completion is genuinely wake-driven.
#[test]
fn latch_sound_without_the_safety_net() {
    let cfg = Config {
        preemption_bound: None,
        ..Config::default()
    };
    let report = check(cfg, || {
        let latch = Arc::new(Latch::new());
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let latch = Arc::clone(&latch);
                thread::spawn(move || latch.wait(false))
            })
            .collect();
        latch.signal();
        for w in waiters {
            w.join().unwrap();
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// The broken variant: flag written outside the latch mutex. The
/// checker finds the schedule where the waiter's locked re-check reads
/// `false`, the signal+notify land before the wait, and the waiter
/// sleeps forever.
#[test]
fn flag_outside_lock_is_a_lost_wakeup() {
    let failure = check(Config::default(), || {
        let latch = Arc::new(Latch::new());
        let l2 = Arc::clone(&latch);
        let signaler = thread::spawn(move || l2.signal_racy());
        latch.wait_racy();
        signaler.join().unwrap();
    })
    .expect_err("the outside-lock flag write must lose a wakeup");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
}
