//! Model-checks the *real* Chase–Lev deque shim
//! (`crates/shims/crossbeam-deque`) — only meaningful when the shim is
//! compiled against the snet-check façade:
//!
//! ```text
//! RUSTFLAGS="--cfg snet_check" cargo test -p snet-check --test chase_lev
//! ```
//!
//! These are the interleavings `steal_race.rs` samples by brute force;
//! here the DFS driver enumerates them. The pinned protocol facts:
//! last-element pop/steal races resolve exactly-once, concurrent
//! thieves never duplicate or drop an element, and the versioned-
//! seqlock buffer growth never lets a thief read through a retired
//! buffer.

#![cfg(snet_check)]

use crossbeam_deque::{Steal, Worker};
use snet_check::sync::atomic::{AtomicUsize, Ordering};
use snet_check::sync::Arc;
use snet_check::{model, thread, Config, Report};

/// `check` that panics (printing the schedule) on failure — like
/// [`model`] but with a custom [`Config`].
fn check_ok(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Report {
    snet_check::check(cfg, f).unwrap_or_else(|f| panic!("{f}"))
}

/// Bounded thief: tries to steal up to `attempts` times, returning the
/// number of elements it got. Bounded (rather than steal-until-empty)
/// so the model's schedule space stays finite without relying on the
/// op cap.
fn thief(stealer: crossbeam_deque::Stealer<usize>, attempts: usize, got: Arc<AtomicUsize>) {
    for _ in 0..attempts {
        match stealer.steal() {
            Steal::Success(_) => {
                got.fetch_add(1, Ordering::SeqCst);
            }
            Steal::Empty => return,
            Steal::Retry => {}
        }
    }
}

/// The classic window: one element, the owner pops LIFO while a thief
/// steals. Exactly one of them must get it, on every schedule. The
/// 2-thread space is small, so the preemption bound is lifted entirely:
/// this is the *complete* SC interleaving space of the race.
#[test]
fn last_element_owner_vs_thief_exactly_once() {
    let cfg = Config {
        preemption_bound: None,
        ..Config::default()
    };
    let report = check_ok(cfg, || {
        let worker = Worker::new_lifo();
        worker.push(7usize);
        let stealer = worker.stealer();
        let stolen = Arc::new(AtomicUsize::new(0));
        let stolen2 = Arc::clone(&stolen);
        let t = thread::spawn(move || thief(stealer, 3, stolen2));
        let popped = usize::from(worker.pop().is_some());
        t.join().unwrap();
        let total = popped + stolen.load(Ordering::SeqCst);
        assert_eq!(total, 1, "last element must go to exactly one side");
    });
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// Two concurrent thieves racing the owner's pop over two elements:
/// every element leaves exactly once, none duplicated, none lost.
#[test]
fn two_thieves_no_duplication_no_loss() {
    let report = model(|| {
        let worker = Worker::new_lifo();
        worker.push(1usize);
        worker.push(2usize);
        let stolen = Arc::new(AtomicUsize::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let s = worker.stealer();
                let stolen = Arc::clone(&stolen);
                thread::spawn(move || thief(s, 2, stolen))
            })
            .collect();
        let mut popped = 0;
        for _ in 0..2 {
            if worker.pop().is_some() {
                popped += 1;
            }
        }
        for t in ts {
            t.join().unwrap();
        }
        let total = popped + stolen.load(Ordering::SeqCst);
        assert_eq!(total, 2, "each element must leave exactly once");
    });
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// The seqlock buffer-growth window: the owner pushes past `MIN_CAP`
/// (16), forcing `grow` to swap buffers while a thief steals through
/// the swap. The version check must make the thief retry rather than
/// read a retired buffer; no element may be lost or duplicated.
///
/// The owner pre-fills to capacity *before* the thief starts (those
/// pushes are not contended) so the modeled window is exactly the
/// grow-vs-steal race, keeping the schedule space tractable.
#[test]
fn buffer_growth_vs_steal() {
    const FILL: usize = 16; // == MIN_CAP: the next push grows
    let cfg = Config {
        preemption_bound: Some(5),
        ..Config::default()
    };
    let report = check_ok(cfg, || {
        let worker = Worker::new_lifo();
        for i in 0..FILL {
            worker.push(i);
        }
        let stealer = worker.stealer();
        let stolen = Arc::new(AtomicUsize::new(0));
        let stolen2 = Arc::clone(&stolen);
        let t = thread::spawn(move || thief(stealer, 2, stolen2));
        worker.push(FILL); // triggers grow() concurrently with the thief
        t.join().unwrap();
        // Drain everything still in the deque from the owner side.
        let mut remaining = 0;
        while worker.pop().is_some() {
            remaining += 1;
        }
        let total = remaining + stolen.load(Ordering::SeqCst);
        assert_eq!(
            total,
            FILL + 1,
            "growth must preserve every element exactly once"
        );
    });
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// `steal_batch_and_pop` (the locality-aware steal the sched workers
/// use) racing the owner: the batch CAS loop must hand over each
/// element at most once even when the owner pops concurrently.
#[test]
fn steal_batch_and_pop_vs_owner() {
    let report = model(|| {
        let victim = Worker::new_lifo();
        victim.push(10usize);
        victim.push(11usize);
        let stealer = victim.stealer();
        let got = Arc::new(AtomicUsize::new(0));
        let got2 = Arc::clone(&got);
        let t = thread::spawn(move || {
            let dest = Worker::new_lifo();
            if stealer.steal_batch_and_pop(&dest).success().is_some() {
                got2.fetch_add(1, Ordering::SeqCst);
            }
            while dest.pop().is_some() {
                got2.fetch_add(1, Ordering::SeqCst);
            }
        });
        let mut popped = 0;
        while victim.pop().is_some() {
            popped += 1;
        }
        t.join().unwrap();
        let total = popped + got.load(Ordering::SeqCst);
        assert_eq!(total, 2, "batch steal must not duplicate or lose");
    });
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// Raising the preemption bound on the single-element race still finds
/// nothing — a deeper sweep of the same window, run with a trimmed
/// schedule budget.
#[test]
fn last_element_race_deep_sweep() {
    let cfg = Config {
        preemption_bound: Some(5),
        max_schedules: 150_000,
        ..Config::default()
    };
    let report = snet_check::check(cfg, || {
        let worker = Worker::new_lifo();
        worker.push(7usize);
        let stealer = worker.stealer();
        let stolen = Arc::new(AtomicUsize::new(0));
        let stolen2 = Arc::clone(&stolen);
        let t = thread::spawn(move || thief(stealer, 3, stolen2));
        let popped = usize::from(worker.pop().is_some());
        t.join().unwrap();
        assert_eq!(popped + stolen.load(Ordering::SeqCst), 1);
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert!(report.schedules >= 1000, "{report:?}");
}
