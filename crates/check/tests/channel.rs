//! Model-checks the *real* crossbeam-channel shim
//! (`crates/shims/crossbeam-channel`) — only meaningful when the shim
//! is compiled against the snet-check façade:
//!
//! ```text
//! RUSTFLAGS="--cfg snet_check" cargo test -p snet-check --test channel
//! ```
//!
//! The shim's load-bearing subtlety is waiter-gated notification:
//! senders/receivers skip the condvar notify when the `recv_waiting` /
//! `send_waiting` counters say nobody is parked. A miscounted gate is
//! a lost wakeup — exactly the PR-4 `send_iter` bug, where an
//! exhausted-iterator sender parked on a full queue and swallowed the
//! receiver's one-slot wake token. These models enumerate the
//! interleavings of the real implementation; the hand-modeled buggy
//! protocol (for "the checker catches it") lives in
//! `eaten_wakeup.rs`, which runs in every build.
//!
//! Timed entry points (`send_timeout`/`recv_timeout`) branch on real
//! `Instant::now` deadlines and cannot be modeled — models use the
//! untimed operations only.

#![cfg(snet_check)]

use crossbeam_channel::bounded;
use snet_check::sync::atomic::{AtomicUsize, Ordering};
use snet_check::sync::Arc;
use snet_check::{check, thread, Config, Report};

fn check_ok(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Report {
    check(cfg, f).unwrap_or_else(|f| panic!("{f}"))
}

/// cap=1 with a blocking sender and receiver: every message arrives,
/// no schedule loses a wakeup (a lost wakeup here is a deadlock — the
/// untimed waits have no backstop). Unbounded preemptions: this is the
/// complete SC space of the 2-thread protocol.
#[test]
fn bounded_one_send_recv_all_delivered() {
    let cfg = Config {
        preemption_bound: None,
        ..Config::default()
    };
    let report = check_ok(cfg, || {
        let (tx, rx) = bounded::<usize>(1);
        let t = thread::spawn(move || {
            for i in 0..3 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv().unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, vec![0, 1, 2], "FIFO, nothing lost");
        assert!(rx.try_recv().is_err());
    });
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// The PR-4 regression surface: `send_iter` over a *full* cap=1 queue,
/// including an empty iterator from a second sender. The empty-iterator
/// sender must return without parking (and without eating the
/// receiver's wake); the checker explores every ordering of the two
/// senders against the receiver's drains.
#[test]
fn send_iter_empty_iterator_never_eats_wakeup() {
    let report = check_ok(Config::default(), || {
        let (tx, rx) = bounded::<usize>(1);
        tx.send(99).unwrap(); // queue now full
        let tx2 = tx.clone();
        let t_empty = thread::spawn(move || {
            // Pre-fix, this parked on the full queue waiting for space
            // it would never use, then swallowed the receiver's
            // one-slot `writable` token: deadlock.
            tx2.send_iter(std::iter::empty()).unwrap();
        });
        let t_send = thread::spawn(move || {
            tx.send_iter([1usize, 2].into_iter()).unwrap();
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv().unwrap());
        }
        t_empty.join().unwrap();
        t_send.join().unwrap();
        assert_eq!(got, vec![99, 1, 2], "per-sender FIFO, nothing lost");
    });
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// Two competing senders, one receiver, cap=1: the waiter-gated
/// `writable` notify must wake *a* parked sender whenever a slot
/// frees, under every interleaving of the gate counters.
#[test]
fn two_senders_contend_for_one_slot() {
    let report = check_ok(Config::default(), || {
        let (tx, rx) = bounded::<usize>(1);
        let txs: Vec<_> = (0..2)
            .map(|i| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        for _ in 0..2 {
            got.push(rx.recv().unwrap());
        }
        for t in txs {
            t.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1], "both sends must land");
        assert!(rx.recv().is_err(), "all senders gone -> disconnected");
    });
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}

/// Disconnect while parked: a receiver blocked on an empty channel is
/// woken by the last sender dropping; a sender blocked on a full
/// channel is woken by the last receiver dropping. No schedule leaves
/// either parked forever.
#[test]
fn disconnect_wakes_parked_peers() {
    let cfg = Config {
        preemption_bound: None,
        ..Config::default()
    };
    let report = check_ok(cfg, || {
        let drained = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = bounded::<usize>(1);
        let drained2 = Arc::clone(&drained);
        let t = thread::spawn(move || {
            // Receive until disconnect; count what arrived.
            while rx.recv().is_ok() {
                drained2.fetch_add(1, Ordering::SeqCst);
            }
        });
        tx.send(5).unwrap();
        tx.send(6).unwrap(); // may park on the full slot mid-drain
        drop(tx); // last sender leaves; parked receiver must wake
        t.join().unwrap();
        assert_eq!(drained.load(Ordering::SeqCst), 2);
    });
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}
