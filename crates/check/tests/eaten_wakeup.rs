//! The PR-4 eaten-wakeup bug, reintroduced on purpose.
//!
//! PR 4's `send_iter` originally waited for queue space *before*
//! checking whether the iterator had a next element. On a full cap=1
//! queue, a sender holding an exhausted iterator parked alongside a
//! real sender; the receiver's drain issued exactly one waiter-gated
//! `writable` notify, the empty sender could consume it, discover it
//! had nothing to push, and return — leaving the real sender parked
//! forever. Stress tests missed it (it hung `pipeline_integration`
//! only at cap=1 under rare timing); the model checker finds it in
//! milliseconds.
//!
//! These models reimplement that protocol against the snet-check
//! façade, so they run in **every** build (`cargo test -p snet-check`,
//! no special RUSTFLAGS): `buggy` pins that the checker *catches* the
//! bug, `fixed` pins that the shipped check-before-wait order is sound.
//! The real shim's `send_iter` is additionally model-checked end to
//! end in `channel.rs` (under `--cfg snet_check`).

use snet_check::sync::{Arc, Condvar, Mutex};
use snet_check::{check, thread, Config};

/// The shared channel state the protocol manipulates: a cap=1 queue
/// with waiter-gated notify counters, exactly as in the shim.
struct Chan {
    state: Mutex<State>,
    readable: Condvar,
    writable: Condvar,
}

struct State {
    queued: usize,
    cap: usize,
    recv_waiting: usize,
    send_waiting: usize,
}

impl Chan {
    fn new(prefill: usize) -> Chan {
        Chan {
            state: Mutex::new(State {
                queued: prefill,
                cap: 1,
                recv_waiting: 0,
                send_waiting: 0,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        }
    }

    /// Pop one message, parking while empty; wake one parked sender
    /// after freeing the slot (gated on `send_waiting`, one token per
    /// slot — the protocol under test).
    fn recv(&self) {
        let mut st = self.state.lock().unwrap();
        while st.queued == 0 {
            st.recv_waiting += 1;
            st = self.readable.wait(st).unwrap();
            st.recv_waiting -= 1;
        }
        st.queued -= 1;
        let wake = st.send_waiting > 0;
        drop(st);
        if wake {
            self.writable.notify_one();
        }
    }

    /// The **buggy** pre-PR-4 `send_iter`: wait for space, *then* ask
    /// the iterator for the next element. An exhausted iterator parks
    /// on a full queue and can eat a real sender's wake token.
    fn send_iter_buggy(&self, mut iter: impl Iterator<Item = usize>) {
        let mut st = self.state.lock().unwrap();
        loop {
            while st.queued >= st.cap {
                st.send_waiting += 1;
                st = self.writable.wait(st).unwrap();
                st.send_waiting -= 1;
            }
            match iter.next() {
                Some(_) => {
                    st.queued += 1;
                    let wake = st.recv_waiting > 0;
                    drop(st);
                    if wake {
                        self.readable.notify_one();
                    }
                    st = self.state.lock().unwrap();
                }
                None => return,
            }
        }
    }

    /// The **fixed** order (what the shim ships): pull the next element
    /// first and only wait for space with a message in hand, so an
    /// exhausted iterator returns without ever parking.
    fn send_iter_fixed(&self, iter: impl Iterator<Item = usize>) {
        let mut st = self.state.lock().unwrap();
        for _v in iter {
            while st.queued >= st.cap {
                st.send_waiting += 1;
                st = self.writable.wait(st).unwrap();
                st.send_waiting -= 1;
            }
            st.queued += 1;
            let wake = st.recv_waiting > 0;
            drop(st);
            if wake {
                self.readable.notify_one();
            }
            st = self.state.lock().unwrap();
        }
    }
}

/// The triggering topology: full queue, one empty-iterator sender, one
/// real sender, one receiver draining everything.
fn scenario(buggy: bool) {
    let chan = Arc::new(Chan::new(1)); // prefilled: the slot is full
    let c_empty = Arc::clone(&chan);
    let t_empty = thread::spawn(move || {
        if buggy {
            c_empty.send_iter_buggy(std::iter::empty());
        } else {
            c_empty.send_iter_fixed(std::iter::empty());
        }
    });
    let c_send = Arc::clone(&chan);
    let t_send = thread::spawn(move || {
        if buggy {
            c_send.send_iter_buggy([1, 2].into_iter());
        } else {
            c_send.send_iter_fixed([1, 2].into_iter());
        }
    });
    for _ in 0..3 {
        chan.recv();
    }
    t_empty.join().unwrap();
    t_send.join().unwrap();
}

/// The checker must find the eaten wakeup: some schedule deadlocks
/// with the real sender (or the receiver) parked forever.
#[test]
fn checker_catches_the_eaten_wakeup() {
    let failure = check(Config::default(), || scenario(true))
        .expect_err("the pre-PR-4 protocol must deadlock under some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
    // The failing schedule replays deterministically to the same hang.
    let schedule = failure.schedule.clone();
    let replayed = std::panic::catch_unwind(|| snet_check::replay(&schedule, || scenario(true)));
    assert!(replayed.is_err(), "replay must reproduce the deadlock");
}

/// The shipped order survives every schedule the buggy one dies under.
#[test]
fn fixed_protocol_is_sound() {
    let report = check(Config::default(), || scenario(false)).unwrap_or_else(|f| panic!("{f}"));
    assert!(report.complete, "search should exhaust: {report:?}");
    assert!(
        report.schedules >= 1000,
        "expected >= 1000 schedules, got {report:?}"
    );
}
