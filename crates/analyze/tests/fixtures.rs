//! Known-bad fixtures, one per diagnostic code.
//!
//! Each fixture is a minimal network with exactly one defect; the test
//! asserts the analyzer reports *that* code (and the expected
//! severity), pinning the code assignments as a stable contract. These
//! complement the soundness property suite in `snet-runtime` (which
//! proves the analyzer never flags behaviour the interpreter permits):
//! here we prove it does flag behaviour the paper's type system
//! forbids.

use snet_analyze::{analyze, AnalyzeConfig};
use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, Work};
use snet_core::filter::OutputTemplate;
use snet_core::{
    DiagCode, DiagSeverity, FilterSpec, NetSpec, Pattern, RType, Record, SyncSpec, TagExpr, Variant,
};

fn consume_a() -> NetSpec {
    NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("consume_a", &["a"], &[&["out"]]),
        |_| Ok(BoxOutput::one(Record::new(), Work::ZERO)),
    ))
}

fn entry(fields: &[&str], tags: &[&str]) -> RType {
    RType::single(Variant::parse_labels(fields, tags))
}

/// Run the analyzer and return its single expected diagnostic.
fn sole_diagnostic(net: &NetSpec, input: &RType) -> snet_core::Diagnostic {
    let analysis = analyze(net, input, &AnalyzeConfig::default());
    assert_eq!(
        analysis.diagnostics.len(),
        1,
        "expected exactly one diagnostic, got {:?}",
        analysis.diagnostics
    );
    analysis.diagnostics.into_iter().next().unwrap()
}

#[test]
fn sna001_unroutable_at_parallel() {
    // Both branches demand {a}; the entry record only carries {b}.
    // (The starved branches additionally earn SNA002 warnings.)
    let net = NetSpec::parallel(vec![consume_a(), consume_a()]);
    let analysis = analyze(&net, &entry(&["b"], &[]), &AnalyzeConfig::default());
    let errors: Vec<_> = analysis.errors().collect();
    assert_eq!(errors.len(), 1, "{:?}", analysis.diagnostics);
    assert_eq!(errors[0].code, DiagCode::UnroutableAtParallel);
    assert_eq!(errors[0].path, "net");
}

#[test]
fn sna002_dead_branch() {
    // Branch 0 accepts {a} (which the entry provides); branch 1 demands
    // {zzz}, which nothing upstream can ever produce.
    let dead = NetSpec::Box(BoxDef::from_fn(
        BoxSig::parse("wants_zzz", &["zzz"], &[&["out"]]),
        |_| Ok(BoxOutput::one(Record::new(), Work::ZERO)),
    ));
    let net = NetSpec::parallel(vec![consume_a(), dead]);
    let d = sole_diagnostic(&net, &entry(&["a"], &[]));
    assert_eq!(d.code, DiagCode::DeadBranch);
    assert_eq!(d.severity, DiagSeverity::Warning);
    assert_eq!(d.path, "net/par[1]");
}

#[test]
fn sna003_sync_never_fires() {
    // The {a} pattern can match the entry; the {never} pattern cannot,
    // so the cell's stored {a} records are stranded forever.
    let net = NetSpec::Sync(SyncSpec::new(vec![
        Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
        Pattern::from_variant(Variant::parse_labels(&["never"], &[])),
    ]));
    let d = sole_diagnostic(&net, &entry(&["a"], &[]));
    assert_eq!(d.code, DiagCode::SyncNeverFires);
    assert_eq!(d.severity, DiagSeverity::Error);
    assert_eq!(d.path, "net/sync");
}

#[test]
fn sna004_split_missing_tag() {
    // The entry type is exact and lacks <k>: every record is guaranteed
    // to hit the split without its index tag.
    let net = NetSpec::split(NetSpec::identity(), "k");
    let d = sole_diagnostic(&net, &entry(&["a"], &[]));
    assert_eq!(d.code, DiagCode::SplitMissingTag);
    assert_eq!(d.severity, DiagSeverity::Error);
    assert_eq!(d.path, "net/split<k>");
}

#[test]
fn sna005_unbound_label() {
    // The filter matches {a} unconditionally but its template copies
    // field `b`, which the exact input type does not carry.
    let net = NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
        vec![OutputTemplate::empty()
            .keep_field("a")
            .rename_field("c", "b")],
    ));
    let d = sole_diagnostic(&net, &entry(&["a"], &[]));
    assert_eq!(d.code, DiagCode::UnboundLabel);
    assert_eq!(d.severity, DiagSeverity::Error);
    assert_eq!(d.path, "net/filter");
}

#[test]
fn sna005_unbound_tag_in_expression() {
    // Same defect via a tag expression: <m> = <missing> + 1 where the
    // input type has no <missing>.
    let net = NetSpec::Filter(FilterSpec::new(
        Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
        vec![OutputTemplate::empty().keep_field("a").set_tag(
            "m",
            TagExpr::bin(
                snet_core::BinOp::Add,
                TagExpr::tag("missing"),
                TagExpr::Const(1),
            ),
        )],
    ));
    let d = sole_diagnostic(&net, &entry(&["a"], &[]));
    assert_eq!(d.code, DiagCode::UnboundLabel);
    assert_eq!(d.severity, DiagSeverity::Error);
}

#[test]
fn sna006_placement_out_of_range() {
    let net = NetSpec::at(NetSpec::identity(), 7);
    let cfg = AnalyzeConfig {
        nodes: Some(4),
        ..AnalyzeConfig::default()
    };
    let analysis = analyze(&net, &entry(&["a"], &[]), &cfg);
    let d = &analysis.diagnostics[0];
    assert_eq!(d.code, DiagCode::PlacementOutOfRange);
    assert_eq!(d.severity, DiagSeverity::Error);
    assert_eq!(d.path, "net/@7");
}
