//! # snet-analyze — static network type inference and flow diagnostics
//!
//! An abstract-interpretation pass over [`NetSpec`] that infers the
//! multivariant record types flowing through every subnet and emits
//! structured diagnostics with stable codes *before* a network runs.
//! The runtime engines consult it as a pre-flight check
//! (`EngineConfig::analyze`), `snet-lint` pretty-prints its reports,
//! and its exact-match proofs let fused chains skip per-record type
//! checks (`BoxDef::exact_input`).
//!
//! ## The abstract domain
//!
//! A concrete record is a set of field/tag labels (§III of the paper:
//! types are label sets, subtyping is inverse set inclusion). The
//! analyzer tracks a bounded set of [`Shape`]s per stream edge. Each
//! shape is a [`Variant`] of labels plus two qualifiers:
//!
//! * `exact` — the labels are the *complete* label set of the record
//!   (a closed shape). Open shapes (`exact = false`) are lower bounds:
//!   the record carries at least these labels, possibly more. Absence
//!   of a label is only provable on exact shapes.
//! * `definite` — a record of this shape *will* occur on the edge for
//!   some input of the entry type, not merely *may*. Definiteness is
//!   lost at every value-dependent branch: guarded patterns, best-match
//!   ties, synchrocell joins, and user boxes (a box may emit any subset
//!   of its declared output variants, including nothing).
//!
//! Transfer functions mirror the small-step semantics in
//! `snet_core::semantics` exactly, including flow inheritance (the
//! unconsumed remainder attaches to every output) and the engines'
//! permissive `MismatchPolicy::Forward` passthrough. `Star` bodies are
//! iterated to a fixpoint; when a shape set exceeds
//! [`AnalyzeConfig::max_shapes`] it is widened to a single open shape
//! (the intersection of the members), which soundly disables
//! absence-based diagnostics downstream instead of guessing.
//!
//! ## Diagnostic codes and the paper's §III typing rules
//!
//! | code   | rule violated | fired when |
//! |--------|---------------|------------|
//! | SNA001 | parallel routing: "any incoming record is directed towards the subnetwork whose input type better matches" — requires *some* branch to match | an exact, definite shape matches no branch's input pattern (labels are insufficient regardless of guard outcomes) |
//! | SNA002 | same rule, dual direction: a branch only receives records its input type attracts | no reachable shape can possibly match a branch's input patterns |
//! | SNA003 | synchrocell typing: the cell fires when one record per pattern has arrived | some pattern can never be matched by any reachable shape while another can — stored records are stranded forever |
//! | SNA004 | parallel replication `A ! <tag>`: "every incoming record must carry the index tag" | an exact shape reaching a split lacks the tag (error when definite, warning when only possible) |
//! | SNA005 | filter typing: output templates copy fields and evaluate tag expressions over the *input* record | a template references a field, or unconditionally evaluates a tag, that an exact definite shape provably lacks |
//! | SNA006 | Distributed S-Net placement `A @ node`: node numbers index the configured machine set | the static node index is ≥ the configured node count |
//!
//! ## Soundness
//!
//! The analyzer never flags a record the engines would route: a shape
//! is reported unroutable (SNA001) or a split input tag-less (SNA004
//! error) only when it is **exact** (no hidden labels can save it) and
//! **definite** (a chain of deterministic, guard-free steps from the
//! entry type produces it). Guards make matches merely *possible*; a
//! possible shape is propagated for reachability (so SNA002/SNA003
//! never under-approximate) but never flagged as a guaranteed failure.
//! The `analyze_soundness` property suite in `snet-runtime` pins this
//! against the reference interpreter on random topologies.

use snet_core::boxdef::BoxDef;
use snet_core::diag::{DiagCode, Diagnostic};
use snet_core::expr::{BinOp, TagExpr};
use snet_core::{
    ChainStage, FilterSpec, Label, NetSpec, OutItem, Pattern, RType, SyncSpec, Variant,
};
use std::collections::BTreeMap;

/// Analyzer knobs.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Number of compute nodes placement (`@ node`) may target;
    /// `None` disables SNA006 range checks (the local engines ignore
    /// placement entirely).
    pub nodes: Option<u32>,
    /// Widening threshold: a shape set larger than this collapses to a
    /// single open shape. Bounds fixpoint iteration on `Star` bodies.
    pub max_shapes: usize,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            nodes: None,
            max_shapes: 64,
        }
    }
}

/// One abstract record shape: a label set plus closedness/definiteness
/// qualifiers (see the crate docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shape {
    /// The labels; a complete set when `exact`, else a lower bound.
    pub labels: Variant,
    /// Whether `labels` is the record's complete label set.
    pub exact: bool,
    /// Whether a record of this shape is guaranteed to occur (reached
    /// from the entry type through deterministic, guard-free steps).
    pub definite: bool,
}

impl Shape {
    fn closed(labels: Variant) -> Shape {
        Shape {
            labels,
            exact: true,
            definite: true,
        }
    }

    fn open(labels: Variant) -> Shape {
        Shape {
            labels,
            exact: false,
            definite: false,
        }
    }

    fn with_definite(&self, definite: bool) -> Shape {
        Shape {
            labels: self.labels.clone(),
            exact: self.exact,
            definite,
        }
    }

    /// The labels provably present (lower bound holds for both open and
    /// exact shapes).
    fn guarantees(&self, needed: &Variant) -> bool {
        self.labels.is_subtype_of(needed)
    }

    /// Could a record of this shape carry all of `needed`? Exact shapes
    /// answer precisely; open shapes may hide any label.
    fn possibly_has(&self, needed: &Variant) -> bool {
        !self.exact || self.guarantees(needed)
    }
}

/// A pattern match that cannot fail: labels guaranteed and no guard.
fn pat_guaranteed(s: &Shape, p: &Pattern) -> bool {
    p.guard.is_none() && s.guarantees(&p.variant)
}

/// A pattern match that cannot be ruled out by labels alone.
fn pat_possible(s: &Shape, p: &Pattern) -> bool {
    s.possibly_has(&p.variant)
}

/// A bounded set of shapes — the abstract value on one stream edge.
#[derive(Clone, Debug, Default)]
pub struct ShapeSet {
    shapes: Vec<Shape>,
    /// Sticky widening marker: once the cap is hit the set stays a
    /// single open shape, absorbing later adds by label intersection
    /// (regrowing would let stragglers escape the widening).
    widened: bool,
}

impl ShapeSet {
    /// Entry set for a *closed* entry type: every variant is the exact,
    /// complete label set of some input records.
    pub fn closed(entry: &RType) -> ShapeSet {
        ShapeSet {
            shapes: entry
                .variants()
                .iter()
                .map(|v| Shape::closed(v.clone()))
                .collect(),
            widened: false,
        }
    }

    /// Entry set for a completely unknown input stream: one open empty
    /// shape. Only structural diagnostics (SNA006) can fire from it.
    pub fn open_any() -> ShapeSet {
        ShapeSet {
            shapes: vec![Shape::open(Variant::empty())],
            widened: false,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// The label sets as a multivariant type (qualifiers dropped).
    pub fn to_rtype(&self) -> RType {
        let mut t = RType::default();
        for s in &self.shapes {
            if !t.variants().contains(&s.labels) {
                t.push(s.labels.clone());
            }
        }
        t
    }

    /// Adds a shape, merging with an identical-labels entry (definite
    /// wins over possible) and widening past `max`.
    fn add(&mut self, s: Shape, max: usize) -> bool {
        if self.widened {
            let cur = &mut self.shapes[0];
            cur.labels = cur.labels.intersection(&s.labels);
            return false;
        }
        for e in &mut self.shapes {
            if e.labels == s.labels && e.exact == s.exact {
                e.definite |= s.definite;
                return false;
            }
        }
        self.shapes.push(s);
        if self.shapes.len() > max {
            self.collapse();
            self.widened = true;
            return true;
        }
        false
    }

    /// Widens to one open shape: the intersection of all members (the
    /// labels every shape guarantees).
    fn collapse(&mut self) {
        let mut iter = self.shapes.iter();
        let first = iter
            .next()
            .expect("collapse of a non-empty set")
            .labels
            .clone();
        let common = iter.fold(first, |acc, s| acc.intersection(&s.labels));
        self.shapes = vec![Shape::open(common)];
    }

    fn extend_from(&mut self, other: ShapeSet, max: usize) -> bool {
        let mut widened = false;
        for s in other.shapes {
            widened |= self.add(s, max);
        }
        widened
    }

    /// A stable fingerprint for fixpoint detection.
    fn fingerprint(&self) -> Vec<(Variant, bool, bool)> {
        let mut v: Vec<_> = self
            .shapes
            .iter()
            .map(|s| (s.labels.clone(), s.exact, s.definite))
            .collect();
        v.sort();
        v
    }
}

/// Inferred input/output types of one subnet.
#[derive(Clone, Debug)]
pub struct SubnetType {
    /// Slash-separated path through the topology (same syntax as
    /// [`Diagnostic::path`]).
    pub path: String,
    /// Type of records arriving at the subnet.
    pub input: RType,
    /// Type of records the subnet emits.
    pub output: RType,
}

/// The result of analyzing a network.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Structured diagnostics, in discovery order, deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// Inferred per-subnet types (root, named subnets, combinators and
    /// primitive components), in path order.
    pub types: Vec<SubnetType>,
    /// The network's inferred output type.
    pub output: RType,
    /// Whether any shape set was widened (diagnostics downstream of the
    /// widening point are best-effort only).
    pub saturated: bool,
}

impl Analysis {
    /// Error-severity diagnostics (these fail engine pre-flight).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == snet_core::diag::DiagSeverity::Error)
    }

    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }
}

/// Analyzes `net` against a *closed* entry type: each variant of
/// `entry` is taken to be the complete label set of some class of input
/// records, and no input outside `entry` is considered. This is the
/// full-precision mode used by `snet-lint` and by
/// `Net::with_entry_type` — absence proofs (SNA001/003/004/005) are
/// available.
pub fn analyze(net: &NetSpec, entry: &RType, cfg: &AnalyzeConfig) -> Analysis {
    let mut clone = net.clone();
    run(&mut clone, ShapeSet::closed(entry), cfg, false)
}

/// Analyzes `net` with a completely unknown input stream (engine
/// pre-flight mode). Sound for *any* input the caller may feed, which
/// restricts the report to structural diagnostics — placement range
/// checks (SNA006) fire; shape-dependent codes cannot.
pub fn analyze_open(net: &NetSpec, cfg: &AnalyzeConfig) -> Analysis {
    let mut clone = net.clone();
    run(&mut clone, ShapeSet::open_any(), cfg, false)
}

/// Like [`analyze`], but additionally annotates every box (standalone
/// or fused-chain stage) whose incoming shapes are all proven to
/// exact-match its input variant: [`BoxDef::exact_input`] is set, so
/// `box_step` skips the per-record `accepts`/arity check and the flow
/// split entirely. Only sound when all records fed to the network are
/// of the (closed) `entry` type. Returns the analysis and the number of
/// boxes annotated.
pub fn analyze_and_annotate(
    net: &mut NetSpec,
    entry: &RType,
    cfg: &AnalyzeConfig,
) -> (Analysis, usize) {
    // Stale annotations from a previous pass (possibly under a different
    // entry type) must not survive on boxes this run never reaches.
    for_each_box(net, &mut |def| def.exact_input = false);
    let analysis = run(net, ShapeSet::closed(entry), cfg, true);
    let mut annotated = 0;
    for_each_box(net, &mut |def| {
        if def.exact_input {
            annotated += 1;
        }
    });
    (analysis, annotated)
}

fn run(net: &mut NetSpec, input: ShapeSet, cfg: &AnalyzeConfig, annotate: bool) -> Analysis {
    let mut ctx = Ctx::new(cfg, annotate);
    let input = ctx.bound(input);
    let out = ctx.flow(net, input.clone(), "net");
    ctx.finish(&input, out, "net")
}

/// Visits every box in the topology, including fused-chain stages.
fn for_each_box(net: &mut NetSpec, f: &mut impl FnMut(&mut BoxDef)) {
    match net {
        NetSpec::Box(def) => f(def),
        NetSpec::Filter(_) | NetSpec::Sync(_) => {}
        NetSpec::Serial(a, b) => {
            for_each_box(a, f);
            for_each_box(b, f);
        }
        NetSpec::Parallel { branches, .. } => {
            for b in branches {
                for_each_box(b, f);
            }
        }
        NetSpec::Star { body, .. }
        | NetSpec::Split { body, .. }
        | NetSpec::At { body, .. }
        | NetSpec::Named { body, .. } => for_each_box(body, f),
        NetSpec::FusedChain { stages } => {
            for s in stages {
                if let ChainStage::Box(def) = s {
                    f(def);
                }
            }
        }
    }
}

/// Iteration cap for `Star` fixpoints; past it the star's output is
/// widened to the fully unknown shape.
const MAX_STAR_ROUNDS: usize = 64;

/// Cap on synchrocell join combinations before widening.
const MAX_SYNC_COMBOS: usize = 64;

struct Ctx<'a> {
    cfg: &'a AnalyzeConfig,
    diags: Vec<Diagnostic>,
    types: BTreeMap<String, (RType, RType)>,
    saturated: bool,
    annotate: bool,
    /// Boxes already visited by the annotation pass, keyed by their
    /// stable address within the (in-place) topology — a `Star` body is
    /// re-flowed every fixpoint round, and a revisit with new shapes
    /// must be able to *retract* an earlier annotation.
    visited: std::collections::HashSet<usize>,
}

impl<'a> Ctx<'a> {
    fn new(cfg: &'a AnalyzeConfig, annotate: bool) -> Ctx<'a> {
        Ctx {
            cfg,
            diags: Vec::new(),
            types: BTreeMap::new(),
            saturated: false,
            annotate,
            visited: std::collections::HashSet::new(),
        }
    }

    /// Re-adds every shape under the widening cap (entry sets are built
    /// unbounded).
    fn bound(&mut self, set: ShapeSet) -> ShapeSet {
        let mut out = ShapeSet::default();
        for s in set.shapes {
            self.add(&mut out, s);
        }
        out
    }

    fn finish(mut self, input: &ShapeSet, output: ShapeSet, root: &str) -> Analysis {
        self.record(root, input, &output);
        Analysis {
            diagnostics: self.diags,
            types: self
                .types
                .into_iter()
                .map(|(path, (input, output))| SubnetType {
                    path,
                    input,
                    output,
                })
                .collect(),
            output: output.to_rtype(),
            saturated: self.saturated,
        }
    }

    fn push(&mut self, d: Diagnostic) {
        if !self.diags.contains(&d) {
            self.diags.push(d);
        }
    }

    fn record(&mut self, path: &str, input: &ShapeSet, output: &ShapeSet) {
        let entry = self
            .types
            .entry(path.to_owned())
            .or_insert_with(|| (RType::default(), RType::default()));
        entry.0 = entry.0.join(&input.to_rtype());
        entry.1 = entry.1.join(&output.to_rtype());
    }

    fn add(&mut self, set: &mut ShapeSet, s: Shape) {
        if set.add(s, self.cfg.max_shapes) {
            self.saturated = true;
        }
    }

    /// The transfer function: shapes out of `net` given shapes into it.
    fn flow(&mut self, net: &mut NetSpec, input: ShapeSet, path: &str) -> ShapeSet {
        let out = match net {
            NetSpec::Box(def) => {
                let path = format!("{path}/{}", def.sig.name);
                let out = self.box_flow(def, &input);
                self.record(&path, &input, &out);
                out
            }
            NetSpec::Filter(spec) => {
                let path = format!("{path}/filter");
                let out = self.filter_flow(spec, &input, &path);
                self.record(&path, &input, &out);
                out
            }
            NetSpec::Sync(spec) => {
                let path = format!("{path}/sync");
                let out = self.sync_flow(spec, &input, &path);
                self.record(&path, &input, &out);
                out
            }
            NetSpec::Serial(a, b) => {
                let mid = self.flow(a, input, path);
                self.flow(b, mid, path)
            }
            NetSpec::Parallel { branches, .. } => self.parallel_flow(branches, &input, path),
            NetSpec::Star { body, exit, .. } => {
                let path = format!("{path}/star");
                let out = self.star_flow(body, exit, &input, &path);
                self.record(&path, &input, &out);
                out
            }
            NetSpec::Split { body, tag, .. } => {
                let path = format!("{path}/split<{tag}>");
                let out = self.split_flow(body, *tag, &input, &path);
                self.record(&path, &input, &out);
                out
            }
            NetSpec::At { body, node } => {
                if let Some(n) = self.cfg.nodes {
                    if *node >= n {
                        self.push(Diagnostic::error(
                            DiagCode::PlacementOutOfRange,
                            format!("{path}/@{node}"),
                            format!(
                                "placement target @{node} is out of range: {n} node(s) configured"
                            ),
                        ));
                    }
                }
                self.flow(body, input, path)
            }
            NetSpec::Named { name, body } => {
                let path = format!("{path}/{name}");
                let out = self.flow(body, input.clone(), &path);
                self.record(&path, &input, &out);
                out
            }
            NetSpec::FusedChain { stages } => {
                let mut cur = input;
                for (i, stage) in stages.iter_mut().enumerate() {
                    let spath = format!("{path}/chain[{i}]");
                    cur = match stage {
                        ChainStage::Box(def) => self.box_flow(def, &cur),
                        ChainStage::Filter(spec) => self.filter_flow(spec, &cur, &spath),
                    };
                }
                cur
            }
        };
        out
    }

    /// Sets [`BoxDef::exact_input`] when every shape that can reach the
    /// box is exact and coincides with its input variant — the proof
    /// that the per-record `accepts` + arity check always passes.
    fn maybe_annotate(&mut self, def: &mut BoxDef, input: &ShapeSet) {
        if !self.annotate {
            return;
        }
        let iv = def.input_variant();
        let proof = !input.is_empty() && input.shapes.iter().all(|s| s.exact && s.labels == *iv);
        let key = def as *const BoxDef as usize;
        if self.visited.insert(key) {
            def.exact_input = proof;
        } else {
            // Revisit (e.g. another star round widened the shapes):
            // the proof must hold for every visit or not at all.
            def.exact_input &= proof;
        }
    }

    fn box_flow(&mut self, def: &mut BoxDef, input: &ShapeSet) -> ShapeSet {
        self.maybe_annotate(def, input);
        let iv = def.input_variant().clone();
        let outputs = def.sig.output_type();
        let mut out = ShapeSet::default();
        for s in input.shapes.clone() {
            if s.guarantees(&iv) {
                // Guaranteed match: each declared output variant plus the
                // flow-inherited remainder. A box may emit any subset of
                // its declared variants (or nothing), so outputs are
                // never definite.
                let rest = s.labels.difference(&iv);
                for ov in outputs.variants() {
                    self.add(
                        &mut out,
                        Shape {
                            labels: ov.union(&rest),
                            exact: s.exact,
                            definite: false,
                        },
                    );
                }
            } else if s.exact {
                // Provable mismatch: the permissive engines pass the
                // record through unchanged (MismatchPolicy::Forward).
                self.add(&mut out, s);
            } else {
                // Open shape, match unknown: both outcomes.
                let rest = s.labels.difference(&iv);
                for ov in outputs.variants() {
                    self.add(&mut out, Shape::open(ov.union(&rest)));
                }
                self.add(&mut out, s.with_definite(false));
            }
        }
        out
    }

    fn filter_flow(&mut self, spec: &FilterSpec, input: &ShapeSet, path: &str) -> ShapeSet {
        let p = &spec.pattern;
        let mut out = ShapeSet::default();
        for s in &input.shapes {
            let guaranteed = pat_guaranteed(s, p);
            let possible = pat_possible(s, p);
            if possible {
                if guaranteed && s.exact && s.definite {
                    self.check_templates(spec, s, path);
                }
                let rest = s.labels.difference(&p.variant);
                for t in &spec.outputs {
                    // Filters emit every template deterministically, so
                    // definiteness survives a guaranteed match.
                    self.add(
                        &mut out,
                        Shape {
                            labels: t.variant().union(&rest),
                            exact: s.exact,
                            definite: s.definite && guaranteed,
                        },
                    );
                }
            }
            if !guaranteed {
                self.add(&mut out, s.with_definite(s.definite && !possible));
            }
        }
        out
    }

    /// SNA005: a template references a label the (exact, definite,
    /// guaranteed-matching) input shape provably lacks — `apply` would
    /// raise `MissingField`/`MissingTag` on every such record.
    fn check_templates(&mut self, spec: &FilterSpec, s: &Shape, path: &str) {
        for t in &spec.outputs {
            for item in &t.items {
                match item {
                    OutItem::Field { src, .. } => {
                        if !s.labels.has_field(*src) {
                            self.push(Diagnostic::error(
                                DiagCode::UnboundLabel,
                                path.to_owned(),
                                format!(
                                    "output template copies field {src}, but the input type {} does not carry it",
                                    s.labels
                                ),
                            ));
                        }
                    }
                    OutItem::Tag { expr, .. } => {
                        let mut must = Vec::new();
                        must_tags(expr, &mut must);
                        for tag in must {
                            if !s.labels.has_tag(tag) {
                                self.push(Diagnostic::error(
                                    DiagCode::UnboundLabel,
                                    path.to_owned(),
                                    format!(
                                        "tag expression {expr} reads tag <{tag}>, but the input type {} does not carry it",
                                        s.labels
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    fn sync_flow(&mut self, spec: &SyncSpec, input: &ShapeSet, path: &str) -> ShapeSet {
        let mut out = ShapeSet::default();
        // Per-pattern possible matchers.
        let matchers: Vec<Vec<&Shape>> = spec
            .patterns
            .iter()
            .map(|p| input.shapes.iter().filter(|s| pat_possible(s, p)).collect())
            .collect();

        // SNA003: a pattern no reachable shape can complete, while some
        // other pattern can — whatever the completable patterns store is
        // held forever, and the cell never fires.
        let any_completable = matchers.iter().any(|m| !m.is_empty());
        for (i, m) in matchers.iter().enumerate() {
            if m.is_empty() && any_completable && spec.patterns.len() > 1 {
                self.push(Diagnostic::error(
                    DiagCode::SyncNeverFires,
                    path.to_owned(),
                    format!(
                        "synchrocell pattern {} can never be matched by the inferred upstream type — the cell can never fire and records matching its other patterns are stranded",
                        spec.patterns[i]
                    ),
                ));
            }
        }

        // Passthrough: records matching no pattern pass unchanged, and
        // after the cell fires it is the identity. A shape that may be
        // stored loses definiteness (the record may be consumed).
        for s in &input.shapes {
            let may_store = spec.patterns.iter().any(|p| pat_possible(s, p));
            self.add(&mut out, s.with_definite(s.definite && !may_store));
        }

        // Fired merges: one stored record per pattern, label-set union.
        if matchers.iter().all(|m| !m.is_empty()) {
            let combos: usize = matchers.iter().map(|m| m.len()).product();
            if combos > MAX_SYNC_COMBOS {
                let merged = spec
                    .patterns
                    .iter()
                    .fold(Variant::empty(), |acc, p| acc.union(&p.variant));
                self.add(&mut out, Shape::open(merged));
                self.saturated = true;
            } else {
                let mut picks = vec![0usize; matchers.len()];
                loop {
                    let mut labels = Variant::empty();
                    let mut exact = true;
                    for (i, m) in matchers.iter().enumerate() {
                        let s = m[picks[i]];
                        labels = labels.union(&s.labels);
                        exact &= s.exact;
                    }
                    self.add(
                        &mut out,
                        Shape {
                            labels,
                            exact,
                            definite: false,
                        },
                    );
                    // Odometer increment over the matcher sets.
                    let mut i = 0;
                    loop {
                        if i == picks.len() {
                            break;
                        }
                        picks[i] += 1;
                        if picks[i] < matchers[i].len() {
                            break;
                        }
                        picks[i] = 0;
                        i += 1;
                    }
                    if i == picks.len() {
                        break;
                    }
                }
            }
        }
        out
    }

    fn parallel_flow(
        &mut self,
        branches: &mut [NetSpec],
        input: &ShapeSet,
        path: &str,
    ) -> ShapeSet {
        let patterns: Vec<Vec<Pattern>> = branches.iter().map(|b| b.input_patterns()).collect();
        let mut routed: Vec<ShapeSet> = (0..branches.len()).map(|_| ShapeSet::default()).collect();
        let mut out = ShapeSet::default();
        for s in &input.shapes {
            let possible: Vec<usize> = patterns
                .iter()
                .enumerate()
                .filter(|(_, ps)| ps.iter().any(|p| pat_possible(s, p)))
                .map(|(i, _)| i)
                .collect();
            let guaranteed_any = patterns
                .iter()
                .any(|ps| ps.iter().any(|p| pat_guaranteed(s, p)));
            if possible.is_empty() {
                // `s.exact` is implied: an open shape possibly matches
                // everything. Guaranteed no-match: the dispatcher passes
                // the record through under MismatchPolicy::Forward and
                // raises SNA001's TypeMismatch under Error.
                if s.definite {
                    self.push(Diagnostic::error(
                        DiagCode::UnroutableAtParallel,
                        path.to_owned(),
                        format!(
                            "records of type {} reach this parallel combinator but no branch accepts them",
                            s.labels
                        ),
                    ));
                }
                self.add(&mut out, s.clone());
                continue;
            }
            // Routing is definite only when a single branch can match
            // and its match cannot fail.
            let single =
                possible.len() == 1 && patterns[possible[0]].iter().any(|p| pat_guaranteed(s, p));
            for &i in &possible {
                let shape = s.with_definite(s.definite && single);
                self.add(&mut routed[i], shape);
            }
            if !guaranteed_any {
                // All candidate matches are guarded: the record may
                // match nothing at runtime and pass through.
                self.add(&mut out, s.with_definite(false));
            }
        }
        for (i, branch) in branches.iter_mut().enumerate() {
            let bpath = format!("{path}/par[{i}]");
            if routed[i].is_empty() {
                self.push(Diagnostic::warning(
                    DiagCode::DeadBranch,
                    bpath,
                    format!(
                        "branch {i} ({branch}) can never receive a record: no reachable type matches its input patterns"
                    ),
                ));
                continue;
            }
            let branch_out = self.flow(branch, routed[i].clone(), &bpath);
            let max = self.cfg.max_shapes;
            if out.extend_from(branch_out, max) {
                self.saturated = true;
            }
        }
        out
    }

    fn star_flow(
        &mut self,
        body: &mut NetSpec,
        exit: &Pattern,
        input: &ShapeSet,
        path: &str,
    ) -> ShapeSet {
        let mut inside = input.clone();
        let mut out = ShapeSet::default();
        for _round in 0..MAX_STAR_ROUNDS {
            let mut to_body = ShapeSet::default();
            for s in inside.shapes.clone() {
                let g = pat_guaranteed(&s, exit);
                let p = pat_possible(&s, exit);
                if p {
                    self.add(&mut out, s.with_definite(s.definite && g));
                }
                if !g {
                    self.add(&mut to_body, s.with_definite(s.definite && !p));
                }
            }
            if to_body.is_empty() {
                return out;
            }
            let body_out = self.flow(body, to_body, path);
            let before = inside.fingerprint();
            let max = self.cfg.max_shapes;
            if inside.extend_from(body_out, max) {
                self.saturated = true;
            }
            if inside.fingerprint() == before {
                return out;
            }
        }
        // Fixpoint did not settle within the round budget: widen the
        // star's output to the fully unknown shape.
        self.saturated = true;
        self.add(&mut out, Shape::open(Variant::empty()));
        out
    }

    fn split_flow(
        &mut self,
        body: &mut NetSpec,
        tag: Label,
        input: &ShapeSet,
        path: &str,
    ) -> ShapeSet {
        let mut tagv = Variant::empty();
        tagv.add_tag(tag);
        let mut to_body = ShapeSet::default();
        for s in &input.shapes {
            if s.guarantees(&tagv) {
                self.add(&mut to_body, s.clone());
            } else if s.exact {
                // Guaranteed missing tag: the dispatcher rejects the
                // record (error or dead letter) — it never reaches the
                // body.
                let d = if s.definite {
                    Diagnostic::error(
                        DiagCode::SplitMissingTag,
                        path.to_owned(),
                        format!(
                            "records of type {} reach this split but are not guaranteed to carry the index tag <{tag}>",
                            s.labels
                        ),
                    )
                } else {
                    Diagnostic::warning(
                        DiagCode::SplitMissingTag,
                        path.to_owned(),
                        format!(
                            "records of type {} may reach this split without the index tag <{tag}>",
                            s.labels
                        ),
                    )
                };
                self.push(d);
            } else {
                // Open shape: records that do reach the body certainly
                // carry the tag — refine the lower bound with it.
                self.add(
                    &mut to_body,
                    Shape {
                        labels: s.labels.union(&tagv),
                        exact: s.exact,
                        definite: false,
                    },
                );
            }
        }
        if to_body.is_empty() {
            return ShapeSet::default();
        }
        self.flow(body, to_body, path)
    }
}

/// Tags an expression evaluates *unconditionally* — missing any of them
/// makes `eval` fail on every record. The right operands of the
/// short-circuiting `&&`/`||` and the arms of `?:` may be skipped, so
/// only the always-evaluated positions count (mirrors
/// `TagExpr::eval`).
fn must_tags(e: &TagExpr, out: &mut Vec<Label>) {
    match e {
        TagExpr::Const(_) => {}
        TagExpr::Tag(l) => {
            if !out.contains(l) {
                out.push(*l);
            }
        }
        TagExpr::Unary(_, a) => must_tags(a, out),
        TagExpr::Bin(op, a, b) => {
            must_tags(a, out);
            if !matches!(op, BinOp::And | BinOp::Or) {
                must_tags(b, out);
            }
        }
        TagExpr::Cond(c, _, _) => must_tags(c, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::boxdef::{BoxOutput, BoxSig, Work};
    use snet_core::{Record, SyncSpec};

    fn dummy_box(name: &str, input: &[&str], outputs: &[&[&str]]) -> NetSpec {
        NetSpec::Box(BoxDef::from_fn(BoxSig::parse(name, input, outputs), |_r| {
            Ok(BoxOutput::one(Record::new(), Work::ZERO))
        }))
    }

    fn entry(fields: &[&str], tags: &[&str]) -> RType {
        RType::single(Variant::parse_labels(fields, tags))
    }

    fn codes(a: &Analysis) -> Vec<DiagCode> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_pipeline_infers_output_type() {
        let net = NetSpec::serial(
            dummy_box("a", &["x"], &[&["y"]]),
            dummy_box("b", &["y"], &[&["z", "<n>"]]),
        );
        let a = analyze(&net, &entry(&["x"], &[]), &AnalyzeConfig::default());
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(
            a.output,
            RType::single(Variant::parse_labels(&["z"], &["n"]))
        );
    }

    #[test]
    fn flow_inheritance_carries_extras() {
        // Entry {x, extra}: box `a` consumes {x}, so {extra} rides along.
        let net = dummy_box("a", &["x"], &[&["y"]]);
        let a = analyze(
            &net,
            &entry(&["x", "extra"], &[]),
            &AnalyzeConfig::default(),
        );
        assert_eq!(
            a.output,
            RType::single(Variant::parse_labels(&["extra", "y"], &[]))
        );
    }

    #[test]
    fn unroutable_parallel_is_flagged() {
        let net = NetSpec::parallel(vec![
            dummy_box("a", &["a"], &[&["y"]]),
            dummy_box("b", &["b"], &[&["y"]]),
        ]);
        let a = analyze(&net, &entry(&["c"], &[]), &AnalyzeConfig::default());
        assert!(codes(&a).contains(&DiagCode::UnroutableAtParallel));
    }

    #[test]
    fn routable_parallel_is_clean() {
        let net = NetSpec::parallel(vec![dummy_box("a", &["a"], &[&["y"]]), NetSpec::identity()]);
        let a = analyze(&net, &entry(&["c"], &[]), &AnalyzeConfig::default());
        assert!(!codes(&a).contains(&DiagCode::UnroutableAtParallel));
    }

    #[test]
    fn dead_branch_is_flagged() {
        let net = NetSpec::parallel(vec![
            dummy_box("a", &["a"], &[&["y"]]),
            dummy_box("b", &["never"], &[&["y"]]),
        ]);
        let a = analyze(&net, &entry(&["a"], &[]), &AnalyzeConfig::default());
        assert!(codes(&a).contains(&DiagCode::DeadBranch));
    }

    #[test]
    fn sync_that_cannot_complete_is_flagged() {
        let net = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["pic"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["chunk"], &[])),
        ]));
        let a = analyze(&net, &entry(&["pic"], &[]), &AnalyzeConfig::default());
        assert_eq!(codes(&a), vec![DiagCode::SyncNeverFires]);
    }

    #[test]
    fn completable_sync_is_clean_and_merges() {
        let net = NetSpec::Sync(SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["pic"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["chunk"], &[])),
        ]));
        let t = RType::new([
            Variant::parse_labels(&["pic"], &[]),
            Variant::parse_labels(&["chunk"], &[]),
        ]);
        let a = analyze(&net, &t, &AnalyzeConfig::default());
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        // The merged {pic, chunk} shape is part of the output type.
        assert!(a
            .output
            .variants()
            .contains(&Variant::parse_labels(&["chunk", "pic"], &[])));
    }

    #[test]
    fn split_without_tag_is_flagged() {
        let net = NetSpec::split(dummy_box("a", &["x"], &[&["y"]]), "node");
        let a = analyze(&net, &entry(&["x"], &[]), &AnalyzeConfig::default());
        assert_eq!(codes(&a), vec![DiagCode::SplitMissingTag]);
        let a = analyze(
            &net,
            &RType::single(Variant::parse_labels(&["x"], &["node"])),
            &AnalyzeConfig::default(),
        );
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn filter_unbound_label_is_flagged() {
        // [{a} -> {a, b}] where b is never present.
        let spec = FilterSpec::new(
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            vec![snet_core::OutputTemplate::empty()
                .keep_field("a")
                .keep_field("b")],
        );
        let net = NetSpec::Filter(spec);
        let a = analyze(&net, &entry(&["a"], &[]), &AnalyzeConfig::default());
        assert_eq!(codes(&a), vec![DiagCode::UnboundLabel]);
    }

    #[test]
    fn short_circuit_guard_tags_are_not_flagged() {
        // {<m = (0 && <missing>)>} never evaluates <missing>.
        let expr = TagExpr::bin(BinOp::And, TagExpr::Const(0), TagExpr::tag("missing"));
        let spec = FilterSpec::new(
            Pattern::any(),
            vec![snet_core::OutputTemplate::empty().set_tag("m", expr)],
        );
        let a = analyze(
            &NetSpec::Filter(spec),
            &entry(&[], &["n"]),
            &AnalyzeConfig::default(),
        );
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn placement_out_of_range_is_flagged() {
        let net = NetSpec::at(dummy_box("a", &["x"], &[&["y"]]), 5);
        let cfg = AnalyzeConfig {
            nodes: Some(2),
            ..AnalyzeConfig::default()
        };
        let a = analyze(&net, &entry(&["x"], &[]), &cfg);
        assert_eq!(codes(&a), vec![DiagCode::PlacementOutOfRange]);
        // Also fires with a completely unknown input (pre-flight mode).
        let a = analyze_open(&net, &cfg);
        assert_eq!(codes(&a), vec![DiagCode::PlacementOutOfRange]);
        // In range, or no bound configured: clean.
        let a = analyze_open(&net, &AnalyzeConfig::default());
        assert!(a.diagnostics.is_empty());
    }

    #[test]
    fn open_entry_suppresses_shape_diagnostics() {
        // Every shape-dependent hazard from the tests above, analyzed
        // with an unknown entry: nothing may fire (any record could
        // carry the missing labels).
        let net = NetSpec::pipeline([
            NetSpec::parallel(vec![
                dummy_box("a", &["a"], &[&["y"]]),
                dummy_box("b", &["b"], &[&["y"]]),
            ]),
            NetSpec::split(dummy_box("c", &["y"], &[&["z"]]), "node"),
        ]);
        let a = analyze_open(&net, &AnalyzeConfig::default());
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn star_fixpoint_terminates_and_exits() {
        // ({<n>} -> dec) * {<n>, <done>}: the body keeps the shape
        // stable; the exit is possible (guard-free label check).
        let body = NetSpec::Filter(FilterSpec::new(
            Pattern::from_variant(Variant::parse_labels(&[], &["n"])),
            vec![snet_core::OutputTemplate::empty().keep_tag("n")],
        ));
        let exit = Pattern::guarded(
            Variant::empty(),
            TagExpr::bin(BinOp::Le, TagExpr::tag("n"), TagExpr::Const(0)),
        );
        let net = NetSpec::star(body, exit);
        let a = analyze(&net, &entry(&[], &["n"]), &AnalyzeConfig::default());
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert!(a
            .output
            .variants()
            .contains(&Variant::parse_labels(&[], &["n"])));
    }

    #[test]
    fn guarded_shapes_are_never_flagged_unroutable() {
        // A guarded filter output feeds a parallel that cannot route it.
        // The {q} shape only occurs if the guard passes — flagging it
        // would be a possible false alarm, so SNA001 must stay silent.
        let guarded = FilterSpec::new(
            Pattern::guarded(
                Variant::empty(),
                TagExpr::bin(BinOp::Lt, TagExpr::tag("n"), TagExpr::Const(0)),
            ),
            vec![snet_core::OutputTemplate::empty().keep_field("q")],
        );
        let net = NetSpec::serial(
            NetSpec::Filter(guarded),
            NetSpec::parallel(vec![dummy_box("a", &["a"], &[&["y"]])]),
        );
        let a = analyze(
            &net,
            &RType::single(Variant::parse_labels(&["a", "q"], &["n"])),
            &AnalyzeConfig::default(),
        );
        assert!(
            !codes(&a).contains(&DiagCode::UnroutableAtParallel),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn subnet_types_are_recorded() {
        let net = NetSpec::named(
            "stage",
            NetSpec::serial(
                dummy_box("a", &["x"], &[&["y"]]),
                dummy_box("b", &["y"], &[&["z"]]),
            ),
        );
        let a = analyze(&net, &entry(&["x"], &[]), &AnalyzeConfig::default());
        let stage = a
            .types
            .iter()
            .find(|t| t.path == "net/stage")
            .expect("named subnet recorded");
        assert_eq!(
            stage.input,
            RType::single(Variant::parse_labels(&["x"], &[]))
        );
        assert_eq!(
            stage.output,
            RType::single(Variant::parse_labels(&["z"], &[]))
        );
        assert!(a.types.iter().any(|t| t.path == "net/stage/a"));
    }

    #[test]
    fn annotation_requires_exact_match_proof() {
        use snet_core::fuse;
        // a: {x} -> {y}; b: {y} -> {z}. With entry exactly {x}, every
        // record reaching b is exactly {y}: both stages annotatable.
        let mut plan = fuse(&NetSpec::serial(
            dummy_box("a", &["x"], &[&["y"]]),
            dummy_box("b", &["y"], &[&["z"]]),
        ));
        let (a, n) =
            analyze_and_annotate(&mut plan, &entry(&["x"], &[]), &AnalyzeConfig::default());
        assert!(a.diagnostics.is_empty());
        assert_eq!(n, 2);
        let NetSpec::FusedChain { stages } = &plan else {
            panic!("expected a fused chain, got {plan}")
        };
        for s in stages {
            let ChainStage::Box(def) = s else { panic!() };
            assert!(def.exact_input);
        }
        // Entry {x, extra}: inheritance makes b's input {y, extra} — a
        // superset, not an exact match. Nothing may be annotated.
        let mut plan = fuse(&NetSpec::serial(
            dummy_box("a", &["x"], &[&["y"]]),
            dummy_box("b", &["y"], &[&["z"]]),
        ));
        let (_, n) = analyze_and_annotate(
            &mut plan,
            &entry(&["x", "extra"], &[]),
            &AnalyzeConfig::default(),
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn widening_collapses_to_open_and_silences() {
        // 70 distinct entry variants overflow max_shapes=8: the set
        // widens to one open shape and downstream absence diagnostics
        // (here: split-missing-tag) must stay silent.
        let mut t = RType::default();
        for i in 0..70 {
            t.push(Variant::parse_labels(&[&format!("f{i}")], &[]));
        }
        let net = NetSpec::split(dummy_box("a", &["x"], &[&["y"]]), "node");
        let cfg = AnalyzeConfig {
            max_shapes: 8,
            ..AnalyzeConfig::default()
        };
        let a = analyze(&net, &t, &cfg);
        assert!(a.saturated);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn must_tags_respects_short_circuit() {
        let e = TagExpr::bin(
            BinOp::Add,
            TagExpr::tag("a"),
            TagExpr::bin(BinOp::And, TagExpr::tag("b"), TagExpr::tag("skipped")),
        );
        let mut out = Vec::new();
        must_tags(&e, &mut out);
        assert_eq!(out, vec![Label::new("a"), Label::new("b")]);
    }
}
