//! The paper's coordination networks: the merger (Fig 3), the static
//! fork-join net (Fig 2), its 2-CPU variant (§V), and the dynamically
//! scheduled solver segment (Fig 4).
//!
//! This module is the "concurrency engineering" half of the paper's
//! methodology: every decision about distribution, synchronization and
//! scheduling lives here, while the boxes of [`crate::boxes`] remain
//! oblivious sequential functions.

use crate::boxes::{self, ImageSlot};
use snet_core::filter::OutputTemplate;
use snet_core::{BinOp, FilterSpec, NetSpec, Pattern, SyncSpec, TagExpr, Variant};
use std::path::PathBuf;

fn pat(fields: &[&str], tags: &[&str]) -> Pattern {
    Pattern::from_variant(Variant::parse_labels(fields, tags))
}

/// The merger network of Fig 3:
///
/// ```text
/// ( ( init .. [ {} -> {<cnt=1>} ] ) | [] )
/// .. ( [| {pic}, {chunk} |]
///      .. ( ( merge .. [ {<cnt>} -> {<cnt+=1>} ] ) | [] )
///    ) * {<tasks> == <cnt>}
/// ```
///
/// The `<fst>`-flagged chunk seeds the accumulator through `init`; all
/// other chunks bypass initialisation, join the accumulator one at a
/// time in the synchrocell of each star unfolding, and the accumulated
/// picture leaves once the counter reaches `<tasks>`.
pub fn merger_net() -> NetSpec {
    let init_path = NetSpec::serial(
        NetSpec::Box(boxes::init_box()),
        NetSpec::Filter(FilterSpec::new(
            Pattern::any(),
            vec![OutputTemplate::empty().set_tag("cnt", TagExpr::Const(1))],
        )),
    );
    let head = NetSpec::parallel(vec![init_path, NetSpec::identity()]);

    let cell = NetSpec::Sync(SyncSpec::new(vec![
        pat(&["pic"], &[]),
        pat(&["chunk"], &[]),
    ]));
    let merge_path = NetSpec::serial(
        NetSpec::Box(boxes::merge_box()),
        NetSpec::Filter(FilterSpec::new(
            pat(&[], &["cnt"]),
            vec![OutputTemplate::empty().set_tag(
                "cnt",
                TagExpr::bin(BinOp::Add, TagExpr::tag("cnt"), TagExpr::Const(1)),
            )],
        )),
    );
    let body = NetSpec::serial(
        cell,
        NetSpec::parallel(vec![merge_path, NetSpec::identity()]),
    );
    let exit = Pattern::guarded(
        Variant::empty(),
        TagExpr::bin(BinOp::Eq, TagExpr::tag("tasks"), TagExpr::tag("cnt")),
    );
    NetSpec::named("merger", NetSpec::serial(head, NetSpec::star(body, exit)))
}

/// The token-release filter of Fig 4, split into two variants.
///
/// The paper writes a single `[ {chunk,<node>} -> {chunk}; {<node>} ]`;
/// under flow inheritance that would copy the `<fst>` flag of the first
/// section onto the released node token, and the token would smuggle
/// `<fst>` into the *next* section it joins — initialising the merger's
/// accumulator twice. We route `<fst>`-carrying results through a
/// variant that pins `<fst>` to the chunk (best-match routing picks it
/// automatically); plain results use the paper's filter unchanged.
fn token_release_filter() -> NetSpec {
    let with_fst = NetSpec::Filter(FilterSpec::new(
        pat(&["chunk"], &["node", "fst"]),
        vec![
            OutputTemplate::empty().keep_field("chunk").keep_tag("fst"),
            OutputTemplate::empty().keep_tag("node"),
        ],
    ));
    let plain = NetSpec::Filter(FilterSpec::new(
        pat(&["chunk"], &["node"]),
        vec![
            OutputTemplate::empty().keep_field("chunk"),
            OutputTemplate::empty().keep_tag("node"),
        ],
    ));
    NetSpec::parallel(vec![with_fst, plain])
}

/// The statically scheduled solver of Fig 2: `solver!@<node>`, one
/// replica per node, sections pre-assigned by the splitter.
pub fn static_solver() -> NetSpec {
    NetSpec::split_placed(NetSpec::Box(boxes::solver_box()), "node")
}

/// The 2-CPU static variant of §V: `(solver!<cpu>)!@<node>` — "by
/// adding one more index split combinator to the solver of Fig 2 …
/// the desired effect was achieved".
pub fn static_solver_2cpu() -> NetSpec {
    NetSpec::split_placed(
        NetSpec::split(NetSpec::Box(boxes::solver_box()), "cpu"),
        "node",
    )
}

/// The dynamically scheduled solver segment of Fig 4:
///
/// ```text
/// ( ( ( solve .. [ {chunk,<node>} -> {chunk}; {<node>} ] )!@<node>
///   | []
///   )
///   .. ( [] | [| {sect}, {<node>} |] )
/// ) * {chunk}
/// ```
///
/// Sections carrying a `<node>` token solve immediately on that node;
/// the release filter splits each result into an image chunk and a
/// freed token; tokenless sections wait in a synchrocell until a token
/// arrives, then loop into the next star unfolding with the token
/// attached. Chunks exit the star.
pub fn dynamic_solver() -> NetSpec {
    let solve_and_release =
        NetSpec::serial(NetSpec::Box(boxes::solver_box()), token_release_filter());
    let placed = NetSpec::split_placed(solve_and_release, "node");
    let first = NetSpec::parallel(vec![placed, NetSpec::identity()]);
    let join = NetSpec::parallel(vec![
        NetSpec::identity(),
        NetSpec::Sync(SyncSpec::new(vec![
            pat(&["sect"], &[]),
            pat(&[], &["node"]),
        ])),
    ]);
    let body = NetSpec::serial(first, join);
    NetSpec::star(body, pat(&["chunk"], &[]))
}

/// Which solver segment a network uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetVariant {
    /// Fig 2: `solver!@<node>`.
    Static,
    /// §V: `(solver!<cpu>)!@<node>`, two solver instances per node.
    Static2Cpu,
    /// Fig 4: token-based dynamic scheduling.
    Dynamic,
}

/// The complete ray-tracing network of Fig 2 with the chosen solver
/// segment: `splitter .. <solver> .. merger .. genImg`.
pub fn raytracing_net(variant: NetVariant, slot: ImageSlot, out: Option<PathBuf>) -> NetSpec {
    let solver = match variant {
        NetVariant::Static => static_solver(),
        NetVariant::Static2Cpu => static_solver_2cpu(),
        NetVariant::Dynamic => dynamic_solver(),
    };
    NetSpec::named(
        match variant {
            NetVariant::Static => "raytracing_stat",
            NetVariant::Static2Cpu => "raytracing_stat_2cpu",
            NetVariant::Dynamic => "raytracing_dyn",
        },
        NetSpec::pipeline([
            NetSpec::Box(boxes::splitter_box()),
            solver,
            merger_net(),
            NetSpec::Box(boxes::gen_img_box(slot, out)),
        ]),
    )
}

/// The Fig 2 network expressed in the S-Net *language* (compiled
/// against the box registry); used by the language-integration tests to
/// show that textual and programmatic construction agree.
pub const RAYTRACING_STAT_SOURCE: &str = r#"
net raytracing_stat
{
    box splitter( (scene, <nodes>, <tasks>, <tokens>, <sched>, <cpus>)
        -> (scene, sect, <node>, <cpu>, <tasks>, <fst>)
         | (scene, sect, <node>, <cpu>, <tasks>)
         | (scene, sect, <tasks>) );
    box solver ( (scene, sect) -> (chunk) );
    net merger ( (chunk, <fst>) -> (pic),
                 (chunk) -> (pic) );
    box genImg ( (pic) -> () );
} connect
    splitter .. solver!@<node> .. merger .. genImg
"#;

/// Builds a registry binding the paper's box names for
/// [`RAYTRACING_STAT_SOURCE`].
pub fn registry(slot: ImageSlot, out: Option<PathBuf>) -> snet_lang::BoxRegistry {
    let mut reg = snet_lang::BoxRegistry::new();
    reg.register_arc("splitter", boxes::splitter_box().func);
    reg.register_arc("solver", boxes::solver_box().func);
    reg.register_arc("init", boxes::init_box().func);
    reg.register_arc("merge", boxes::merge_box().func);
    reg.register_arc("genImg", boxes::gen_img_box(slot, out).func);
    reg.register_net("merger", merger_net());
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::image_slot;

    fn body_string(net: &NetSpec) -> String {
        match net {
            NetSpec::Named { body, .. } => body.to_string(),
            other => other.to_string(),
        }
    }

    #[test]
    fn networks_have_the_expected_shape() {
        let slot = image_slot();
        let stat = raytracing_net(NetVariant::Static, slot.clone(), None);
        let s = body_string(&stat);
        assert!(s.contains("splitter"), "{s}");
        assert!(s.contains("(solver)!@<node>"), "{s}");
        assert!(s.contains("genImg"), "{s}");
        let two = body_string(&raytracing_net(NetVariant::Static2Cpu, slot.clone(), None));
        assert!(two.contains("((solver)!<cpu>)!@<node>"), "{two}");
        let dyn_ = body_string(&raytracing_net(NetVariant::Dynamic, slot, None));
        assert!(dyn_.contains("[| {sect}, {<node>} |]"), "{dyn_}");
        assert!(dyn_.contains("*{chunk}"), "{dyn_}");
    }

    #[test]
    fn paper_networks_pass_the_static_checker() {
        let slot = image_slot();
        for variant in [
            NetVariant::Static,
            NetVariant::Static2Cpu,
            NetVariant::Dynamic,
        ] {
            let net = raytracing_net(variant, slot.clone(), None);
            let diags = snet_lang::check(&net);
            let errors: Vec<_> = diags
                .iter()
                .filter(|d| d.severity == snet_lang::Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{variant:?}: {errors:?}");
        }
    }

    #[test]
    fn inferred_types_of_the_static_net() {
        // The compiler "infers a type signature for every network"
        // (§III); the static net consumes the splitter's input shape.
        let slot = image_slot();
        let net = raytracing_net(NetVariant::Static, slot, None);
        let (input, _) = snet_lang::check::infer(&net);
        let v = &input.variants()[0];
        assert!(v.has_field(snet_core::Label::new("scene")));
        assert!(v.has_tag(snet_core::Label::new("tasks")));
    }

    #[test]
    fn merger_attracts_pics_and_chunks() {
        let m = merger_net();
        let patterns = m.input_patterns();
        // init path ({chunk,<fst>}), identity, and the star's patterns.
        assert!(patterns.iter().any(|p| {
            p.variant.has_field(snet_core::Label::new("chunk"))
                && p.variant.has_tag(snet_core::Label::new("fst"))
        }));
    }

    #[test]
    fn textual_and_programmatic_static_nets_agree_in_shape() {
        let slot = image_slot();
        let compiled =
            snet_lang::compile(RAYTRACING_STAT_SOURCE, &registry(slot.clone(), None)).unwrap();
        let built = raytracing_net(NetVariant::Static, slot, None);
        // Identical combinator structure (box identities differ as they
        // are separate closures).
        assert_eq!(body_string(&compiled), body_string(&built));
    }

    #[test]
    fn token_release_routes_fst_to_the_chunk() {
        use snet_core::semantics::{best_branch, filter_step, MismatchPolicy};
        use snet_core::{Record, Value};
        let NetSpec::Parallel { branches, .. } = token_release_filter() else {
            panic!("expected a parallel filter pair");
        };
        let patterns: Vec<_> = branches.iter().map(|b| b.input_patterns()).collect();
        // A fst-carrying result picks the fst-aware variant.
        let rec = Record::new()
            .with_field("chunk", Value::Int(7))
            .with_tag("node", 3)
            .with_tag("fst", 1)
            .with_tag("tasks", 8);
        let i = best_branch(&patterns, &rec).unwrap();
        assert_eq!(i, 0, "fst result must take the fst-aware filter");
        let NetSpec::Filter(f) = &branches[i] else {
            panic!()
        };
        let out = filter_step(f, rec, MismatchPolicy::Error).unwrap();
        assert_eq!(out.records.len(), 2);
        let chunk_rec = &out.records[0];
        let token_rec = &out.records[1];
        assert!(chunk_rec.has_tag("fst") && !chunk_rec.has_tag("node"));
        assert!(
            token_rec.has_tag("node") && !token_rec.has_tag("fst"),
            "the token must not smuggle <fst>: {token_rec:?}"
        );
        // A plain result picks the paper's filter.
        let rec = Record::new()
            .with_field("chunk", Value::Int(7))
            .with_tag("node", 3)
            .with_tag("tasks", 8);
        assert_eq!(best_branch(&patterns, &rec).unwrap(), 1);
    }
}
