//! Opaque field payloads for the ray-tracing records.
//!
//! Fields are "entirely opaque to S-Net" (§III): the coordination layer
//! only moves them and asks for their wire size. These wrappers carry
//! the tracer's data types through records, reporting realistic
//! serialized sizes to the network model.

use snet_core::value::AnyData;
use snet_core::Value;
use snet_raytracer::{Bvh, Chunk, Image, Scene, Section};
use std::any::Any;
use std::sync::Arc;

/// Application-level memcpy cost (abstract ops per byte). Used by both
/// the S-Net boxes (chunk/image assembly) and the MPI baseline's root
/// gather, so the two substrates charge identical application work.
pub const MEMCPY_OPS_PER_BYTE: f64 = 0.05;

/// Ops for copying `bytes` of application data.
pub fn copy_ops(bytes: usize) -> u64 {
    (bytes as f64 * MEMCPY_OPS_PER_BYTE) as u64
}

/// The `scene` field: geometry plus its prebuilt BVH.
///
/// The BVH is built once at the root (Algorithm 1, line 3) and shipped
/// with the scene, exactly once per record transfer — its nodes are
/// counted in the wire size.
#[derive(Debug)]
pub struct SceneData {
    /// The scene (shared, never copied in-process).
    pub scene: Arc<Scene>,
    /// Acceleration structure over `scene.shapes`.
    pub bvh: Arc<Bvh>,
    /// Output image width.
    pub width: u32,
    /// Output image height.
    pub height: u32,
}

impl AnyData for SceneData {
    fn approx_bytes(&self) -> usize {
        self.scene.wire_bytes() + self.bvh.node_count() * 56
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The `sect` field: one horizontal strip assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectData(pub Section);

impl AnyData for SectData {
    fn approx_bytes(&self) -> usize {
        8
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The `chunk` field: rendered pixels of one section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkData {
    /// The rendered strip.
    pub chunk: Chunk,
    /// Full image height (the merger needs it to size the accumulator).
    pub img_height: u32,
}

impl AnyData for ChunkData {
    fn approx_bytes(&self) -> usize {
        self.chunk.wire_bytes()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The `pic` field: the accumulating (or final) picture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PicData(pub Image);

impl AnyData for PicData {
    fn approx_bytes(&self) -> usize {
        self.0.wire_bytes()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Convenience: wraps a value implementing [`AnyData`] into a field.
pub fn field<T: AnyData>(v: T) -> Value {
    Value::data(v)
}

/// Downcasts a record field, panicking with a readable message on a
/// type confusion (always a wiring bug).
pub fn expect<'a, T: 'static>(value: &'a Value, what: &str) -> &'a T {
    value
        .downcast_ref::<T>()
        .unwrap_or_else(|| panic!("field `{what}` carries the wrong payload type"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_raytracer::{Scene, ScenePreset};

    #[test]
    fn wire_sizes_are_plausible() {
        let scene = Arc::new(Scene::preset(ScenePreset::Balanced, 50, 1));
        let (bvh, _) = scene.build_bvh();
        let sd = SceneData {
            scene: Arc::clone(&scene),
            bvh: Arc::new(bvh),
            width: 100,
            height: 100,
        };
        assert!(sd.approx_bytes() > 50 * 48, "scene bytes too small");
        let c = ChunkData {
            chunk: Chunk {
                y0: 0,
                width: 100,
                pixels: vec![[0, 0, 0]; 1000],
            },
            img_height: 100,
        };
        assert_eq!(c.approx_bytes(), 3016);
        assert_eq!(SectData(Section::new(0, 10)).approx_bytes(), 8);
    }

    #[test]
    fn field_round_trip() {
        let v = field(SectData(Section::new(3, 9)));
        let s: &SectData = expect(&v, "sect");
        assert_eq!(s.0, Section::new(3, 9));
        assert_eq!(v.approx_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "wrong payload type")]
    fn expect_panics_on_type_confusion() {
        let v = field(SectData(Section::new(0, 1)));
        let _: &PicData = expect(&v, "pic");
    }

    #[test]
    fn copy_ops_scale() {
        assert_eq!(copy_ops(0), 0);
        assert_eq!(copy_ops(1000), 50);
    }
}
