//! Experiment drivers: run the paper's network variants on the
//! simulated cluster (or the local threaded engine) and report the
//! numbers the evaluation section plots.

use crate::boxes::image_slot;
use crate::data::{field, SceneData};
use crate::nets::{raytracing_net, NetVariant};
use crate::schedule::Schedule;
use snet_core::{Record, SnetError, Value};
use snet_dist::{run_on_cluster, OverheadModel, StatsSnapshot};
use snet_raytracer::{Bvh, Counters, Image, Scene, ScenePreset};
use snet_runtime::{Net, SchedNet};
use snet_simnet::ClusterSpec;
use std::sync::Arc;

/// The rendering workload shared by every variant of an experiment.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Scene family (the imbalance knob).
    pub preset: ScenePreset,
    /// Number of procedural spheres.
    pub spheres: usize,
    /// Scene seed.
    pub seed: u64,
    /// Image width.
    pub width: u32,
    /// Image height.
    pub height: u32,
}

impl Workload {
    /// A laptop-fast workload for tests and examples.
    pub fn small() -> Workload {
        Workload {
            preset: ScenePreset::Clustered,
            spheres: 40,
            seed: 2010,
            width: 96,
            height: 96,
        }
    }

    /// The default benchmark workload (resolution-scaled stand-in for
    /// the paper's 3000×3000 scene; pass `--full` to the figure
    /// binaries for the original size).
    pub fn benchmark(width: u32, height: u32, preset: ScenePreset) -> Workload {
        Workload {
            preset,
            spheres: 180,
            seed: 2010,
            width,
            height,
        }
    }

    /// Builds the scene and its BVH once (shared by reference renders
    /// and record construction).
    pub fn scene(&self) -> (Arc<Scene>, Arc<Bvh>) {
        let scene = Arc::new(Scene::preset(self.preset, self.spheres, self.seed));
        let (bvh, _) = scene.build_bvh();
        (scene, Arc::new(bvh))
    }

    /// The `scene` field value for the initial record.
    pub fn scene_value(&self) -> Value {
        let (scene, bvh) = self.scene();
        field(SceneData {
            scene,
            bvh,
            width: self.width,
            height: self.height,
        })
    }

    /// The sequential reference render (Algorithm 1) every parallel
    /// variant must reproduce byte-for-byte.
    pub fn reference_image(&self) -> Image {
        let (scene, _) = self.scene();
        let mut c = Counters::default();
        snet_raytracer::render_full(&scene, self.width, self.height, &mut c)
    }
}

/// Coordination parameters of one S-Net run.
#[derive(Clone, Copy, Debug)]
pub struct SnetConfig {
    /// Which solver segment to use.
    pub variant: NetVariant,
    /// Cluster nodes.
    pub nodes: usize,
    /// Sections the splitter creates.
    pub tasks: u32,
    /// Node tokens initially issued (== `tasks` makes the dynamic net
    /// behave statically; ignored by the static variants, which always
    /// tag every section).
    pub tokens: u32,
    /// Section sizing.
    pub schedule: Schedule,
}

impl SnetConfig {
    /// Fig 6's "S-Net Static": one section per node.
    pub fn fig6_static(nodes: usize) -> SnetConfig {
        SnetConfig {
            variant: NetVariant::Static,
            nodes,
            tasks: nodes as u32,
            tokens: nodes as u32,
            schedule: Schedule::Block,
        }
    }

    /// Fig 6's "S-Net Static 2 CPU": two sections per node, one per CPU.
    pub fn fig6_static_2cpu(nodes: usize) -> SnetConfig {
        SnetConfig {
            variant: NetVariant::Static2Cpu,
            nodes,
            tasks: 2 * nodes as u32,
            tokens: 2 * nodes as u32,
            schedule: Schedule::Block,
        }
    }

    /// Fig 6's "S-Net Best Dynamic": `nodes · 8` tasks, `tasks / 2`
    /// tokens, block scheduling (§V).
    pub fn fig6_dynamic(nodes: usize) -> SnetConfig {
        let tasks = 8 * nodes as u32;
        SnetConfig {
            variant: NetVariant::Dynamic,
            nodes,
            tasks,
            tokens: tasks / 2,
            schedule: Schedule::Block,
        }
    }

    fn cpus(&self) -> i64 {
        match self.variant {
            NetVariant::Static2Cpu => 2,
            _ => 1,
        }
    }

    fn effective_tokens(&self) -> u32 {
        match self.variant {
            NetVariant::Dynamic => self.tokens.min(self.tasks),
            // Static splitters tag every section.
            _ => self.tasks,
        }
    }
}

/// Result of one S-Net run.
#[derive(Debug)]
pub struct SnetOutcome {
    /// Virtual runtime in seconds (the y axis of Figs 5 and 6).
    pub makespan_secs: f64,
    /// The rendered picture.
    pub image: Image,
    /// Runtime counters.
    pub stats: StatsSnapshot,
    /// Discrete events processed.
    pub events: u64,
    /// Simulated processes instantiated.
    pub processes: usize,
    /// Per-node CPU busy seconds (idle time = imbalance made visible).
    pub cpu_busy_secs: Vec<f64>,
}

/// The initial record: the whole application is triggered by one
/// record carrying the scene and the coordination tags.
pub fn input_record(wl: &Workload, cfg: &SnetConfig) -> Record {
    Record::new()
        .with_field("scene", wl.scene_value())
        .with_tag("nodes", cfg.nodes as i64)
        .with_tag("tasks", cfg.tasks as i64)
        .with_tag("tokens", cfg.effective_tokens() as i64)
        .with_tag("sched", cfg.schedule.to_tag())
        .with_tag("cpus", cfg.cpus())
}

/// Runs an S-Net variant on the simulated cluster and reports the
/// virtual makespan.
pub fn run_snet_cluster(
    wl: &Workload,
    cfg: &SnetConfig,
    cluster: ClusterSpec,
    overhead: OverheadModel,
) -> Result<SnetOutcome, SnetError> {
    assert!(
        cluster.nodes >= cfg.nodes,
        "config names {} nodes but the cluster has {}",
        cfg.nodes,
        cluster.nodes
    );
    let slot = image_slot();
    let net = raytracing_net(cfg.variant, Arc::clone(&slot), None);
    let result = run_on_cluster(&net, vec![input_record(wl, cfg)], cluster, overhead)?;
    let image = slot
        .lock()
        .take()
        .ok_or_else(|| SnetError::Engine("genImg never produced the picture".into()))?;
    Ok(SnetOutcome {
        makespan_secs: result.makespan.as_secs_f64(),
        image,
        stats: result.stats,
        events: result.events,
        processes: result.processes,
        cpu_busy_secs: result.cpu_busy_secs,
    })
}

/// Runs an S-Net variant on the local multithreaded engine (real
/// parallelism, wall-clock time) — the non-distributed execution mode.
pub fn run_snet_local(wl: &Workload, cfg: &SnetConfig) -> Result<Image, SnetError> {
    let slot = image_slot();
    let net = Net::new(raytracing_net(cfg.variant, Arc::clone(&slot), None));
    let outputs = net.run_batch(vec![input_record(wl, cfg)])?;
    debug_assert!(outputs.is_empty(), "genImg terminates the stream");
    let image = slot
        .lock()
        .take()
        .ok_or_else(|| SnetError::Engine("genImg never produced the picture".into()))?;
    Ok(image)
}

/// Runs an S-Net variant on the local work-stealing scheduled engine —
/// same network, fixed worker pool instead of a thread per component.
pub fn run_snet_local_sched(wl: &Workload, cfg: &SnetConfig) -> Result<Image, SnetError> {
    let slot = image_slot();
    let net = SchedNet::new(raytracing_net(cfg.variant, Arc::clone(&slot), None));
    let outputs = net.run_batch(vec![input_record(wl, cfg)])?;
    debug_assert!(outputs.is_empty(), "genImg terminates the stream");
    let image = slot
        .lock()
        .take()
        .ok_or_else(|| SnetError::Engine("genImg never produced the picture".into()))?;
    Ok(image)
}

/// Like [`run_snet_local_sched`], but under an explicit
/// [`snet_runtime::EngineConfig`] — failure policy, deadline — and
/// reporting any diverted records alongside the picture. The error is
/// boxed so experiment drivers that mix engine failures with IO and
/// parse errors can `?` them all through one signature (the
/// anyhow-style shape; [`SnetError`] implements `std::error::Error`,
/// so the conversion is free).
pub fn run_snet_local_sched_robust(
    wl: &Workload,
    cfg: &SnetConfig,
    engine: snet_runtime::EngineConfig,
) -> Result<(Image, Vec<snet_runtime::DeadLetter>), Box<dyn std::error::Error>> {
    let slot = image_slot();
    let net = SchedNet::with_config(raytracing_net(cfg.variant, Arc::clone(&slot), None), engine);
    let report = net.run_batch_report(vec![input_record(wl, cfg)])?;
    debug_assert!(report.outputs.is_empty(), "genImg terminates the stream");
    let image = slot
        .lock()
        .take()
        .ok_or_else(|| SnetError::Engine("genImg never produced the picture".into()))?;
    Ok((image, report.dead_letters))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed(nodes: usize) -> ClusterSpec {
        // The paper's testbed shape, sped up so tests render quickly.
        ClusterSpec {
            cpu_ops_per_sec: 200.0e6,
            ..ClusterSpec::paper_testbed(nodes)
        }
    }

    #[test]
    fn static_cluster_run_reproduces_the_reference_image() {
        let wl = Workload::small();
        let reference = wl.reference_image();
        let out = run_snet_cluster(
            &wl,
            &SnetConfig::fig6_static(4),
            testbed(4),
            OverheadModel::default(),
        )
        .unwrap();
        assert_eq!(out.image, reference, "distributed render must be exact");
        assert!(out.makespan_secs > 0.0);
        assert_eq!(out.stats.split_replicas, 4);
    }

    #[test]
    fn static_2cpu_uses_two_solver_instances_per_node() {
        let wl = Workload::small();
        let reference = wl.reference_image();
        let out = run_snet_cluster(
            &wl,
            &SnetConfig::fig6_static_2cpu(2),
            testbed(2),
            OverheadModel::default(),
        )
        .unwrap();
        assert_eq!(out.image, reference);
        // Outer split: 2 node replicas; inner splits: 2 cpu replicas each.
        assert_eq!(out.stats.split_replicas, 6);
    }

    #[test]
    fn dynamic_cluster_run_reproduces_the_reference_image() {
        let wl = Workload::small();
        let reference = wl.reference_image();
        let out = run_snet_cluster(
            &wl,
            &SnetConfig {
                variant: NetVariant::Dynamic,
                nodes: 3,
                tasks: 9,
                tokens: 3,
                schedule: Schedule::Block,
            },
            testbed(3),
            OverheadModel::default(),
        )
        .unwrap();
        assert_eq!(
            out.image, reference,
            "dynamic scheduling must not corrupt the picture"
        );
        assert!(
            out.stats.sync_fires >= 6,
            "tokenless sections must join tokens"
        );
    }

    #[test]
    fn dynamic_with_factoring_schedule() {
        let wl = Workload::small();
        let reference = wl.reference_image();
        let out = run_snet_cluster(
            &wl,
            &SnetConfig {
                variant: NetVariant::Dynamic,
                nodes: 2,
                tasks: 8,
                tokens: 4,
                schedule: Schedule::paper_factoring(),
            },
            testbed(2),
            OverheadModel::default(),
        )
        .unwrap();
        assert_eq!(out.image, reference);
    }

    #[test]
    fn local_threaded_run_matches_reference() {
        let wl = Workload::small();
        let reference = wl.reference_image();
        let img = run_snet_local(&wl, &SnetConfig::fig6_static(2)).unwrap();
        assert_eq!(img, reference);
    }

    #[test]
    fn local_sched_run_matches_reference() {
        let wl = Workload::small();
        let reference = wl.reference_image();
        let img = run_snet_local_sched(&wl, &SnetConfig::fig6_static(2)).unwrap();
        assert_eq!(img, reference);
    }

    #[test]
    fn robust_runner_composes_boxed_errors() {
        // Healthy run under DeadLetter: same picture, no diversions.
        let wl = Workload::small();
        let reference = wl.reference_image();
        let (img, dead) = run_snet_local_sched_robust(
            &wl,
            &SnetConfig::fig6_static(2),
            snet_runtime::EngineConfig {
                policy: snet_runtime::FailurePolicy::DeadLetter,
                ..snet_runtime::EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(img, reference);
        assert!(dead.is_empty());

        // An expired deadline flows through `?` as a boxed error with
        // the engine's message intact.
        let err = run_snet_local_sched_robust(
            &wl,
            &SnetConfig::fig6_static(2),
            snet_runtime::EngineConfig {
                deadline: Some(std::time::Duration::ZERO),
                ..snet_runtime::EngineConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("deadline"), "got: {err}");
    }

    #[test]
    fn local_dynamic_run_matches_reference() {
        let wl = Workload::small();
        let reference = wl.reference_image();
        let img = run_snet_local(
            &wl,
            &SnetConfig {
                variant: NetVariant::Dynamic,
                nodes: 2,
                tasks: 6,
                tokens: 2,
                schedule: Schedule::Block,
            },
        )
        .unwrap();
        assert_eq!(img, reference);
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let wl = Workload::small();
        let cfg = SnetConfig::fig6_dynamic(2);
        let a = run_snet_cluster(&wl, &cfg, testbed(2), OverheadModel::default()).unwrap();
        let b = run_snet_cluster(&wl, &cfg, testbed(2), OverheadModel::default()).unwrap();
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.image, b.image);
    }

    #[test]
    fn tokens_equal_tasks_degenerates_to_static_shape() {
        // §V: "Performance is generally at its worst when the number of
        // tasks equals the number of tokens. In this case all sections
        // are immediately mapped to the nodes and the benefits of
        // dynamic scheduling are lost."
        let wl = Workload::small();
        let all_tokens = run_snet_cluster(
            &wl,
            &SnetConfig {
                variant: NetVariant::Dynamic,
                nodes: 2,
                tasks: 8,
                tokens: 8,
                schedule: Schedule::Block,
            },
            testbed(2),
            OverheadModel::default(),
        )
        .unwrap();
        // Every section was pre-assigned: no section ever waits in the
        // join synchrocell.
        assert_eq!(all_tokens.stats.sync_fires, 7, "only merger joins remain");
    }
}
