//! `snet-lint` — static analysis over the paper's application networks.
//!
//! Runs the `snet-analyze` abstract interpreter over every app topology
//! (each with a curated entry type describing the records the pipeline
//! actually feeds it) and pretty-prints the structured diagnostics.
//!
//! Exit status: non-zero when any error-severity diagnostic fires, or
//! when a network that is expected to be diagnostic-free produces *any*
//! finding. Warnings on the full pipelines are expected and documented
//! per case (`--deny-warnings` escalates them anyway).

use snet_analyze::{analyze, Analysis, AnalyzeConfig};
use snet_apps::boxes::image_slot;
use snet_apps::nets;
use snet_core::{DiagSeverity, NetSpec, RType, Variant};

struct Case {
    name: &'static str,
    net: NetSpec,
    entry: RType,
    /// Whether warning-severity findings are expected for this case.
    /// The full pipelines route through the splitter, whose *declared*
    /// output includes a token-less `(scene, sect, <tasks>)` variant;
    /// that variant reaching `solver!@<node>` is a true possible
    /// mismatch (SNA004 warning), avoided at runtime only because the
    /// static schedules hand every section a token.
    allow_warnings: bool,
}

fn v(fields: &[&str], tags: &[&str]) -> Variant {
    Variant::parse_labels(fields, tags)
}

fn cases() -> Vec<Case> {
    let slot = image_slot();
    // What the solver segment emits into the merger: an image chunk,
    // the task count, and `<fst>` on the first section only.
    let merger_entry = RType::new([v(&["chunk"], &["fst", "tasks"]), v(&["chunk"], &["tasks"])]);
    // What the splitter emits when every section gets a node token
    // (the static schedules).
    let tokened = RType::new([
        v(&["scene", "sect"], &["node", "cpu", "tasks", "fst"]),
        v(&["scene", "sect"], &["node", "cpu", "tasks"]),
    ]);
    // The splitter's full declared output (dynamic scheduling: sections
    // may start without a token).
    let split_out = RType::new([
        v(&["scene", "sect"], &["node", "cpu", "tasks", "fst"]),
        v(&["scene", "sect"], &["node", "cpu", "tasks"]),
        v(&["scene", "sect"], &["tasks"]),
    ]);
    // The whole pipeline's input: one scene record with the run knobs.
    let pipeline_entry = RType::single(v(
        &["scene"],
        &["nodes", "tasks", "tokens", "sched", "cpus"],
    ));
    vec![
        Case {
            name: "merger",
            net: nets::merger_net(),
            entry: merger_entry,
            allow_warnings: false,
        },
        Case {
            name: "static_solver",
            net: nets::static_solver(),
            entry: tokened.clone(),
            allow_warnings: false,
        },
        Case {
            name: "static_solver_2cpu",
            net: nets::static_solver_2cpu(),
            entry: tokened,
            allow_warnings: false,
        },
        Case {
            name: "dynamic_solver",
            net: nets::dynamic_solver(),
            entry: split_out,
            allow_warnings: true,
        },
        Case {
            name: "raytracing_stat",
            net: nets::raytracing_net(nets::NetVariant::Static, slot.clone(), None),
            entry: pipeline_entry.clone(),
            allow_warnings: true,
        },
        Case {
            name: "raytracing_stat_2cpu",
            net: nets::raytracing_net(nets::NetVariant::Static2Cpu, slot.clone(), None),
            entry: pipeline_entry.clone(),
            allow_warnings: true,
        },
        Case {
            name: "raytracing_dyn",
            net: nets::raytracing_net(nets::NetVariant::Dynamic, slot, None),
            entry: pipeline_entry,
            allow_warnings: true,
        },
    ]
}

fn report(name: &str, entry: &RType, a: &Analysis) {
    println!("== {name}");
    println!("   entry type:  {entry}");
    println!("   output type: {}", a.output);
    if a.saturated {
        println!("   note: shape set widened; absence diagnostics are best-effort");
    }
    if a.diagnostics.is_empty() {
        println!("   clean: no diagnostics");
    } else {
        for d in &a.diagnostics {
            println!("   {d}");
        }
    }
}

fn main() {
    let deny_warnings = std::env::args().any(|a| a == "--deny-warnings");
    let cfg = AnalyzeConfig::default();
    let mut failed = false;
    for case in cases() {
        let a = analyze(&case.net, &case.entry, &cfg);
        report(case.name, &case.entry, &a);
        let errors = a.errors().count();
        let warnings = a
            .diagnostics
            .iter()
            .filter(|d| d.severity == DiagSeverity::Warning)
            .count();
        if errors > 0 {
            eprintln!("snet-lint: {}: {} error(s)", case.name, errors);
            failed = true;
        }
        if warnings > 0 && (deny_warnings || !case.allow_warnings) {
            eprintln!(
                "snet-lint: {}: {} unexpected warning(s)",
                case.name, warnings
            );
            failed = true;
        }
        println!();
    }
    std::process::exit(if failed { 1 } else { 0 });
}
