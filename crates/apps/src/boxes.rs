//! The application boxes of §IV: `splitter`, `solver`, `init`, `merge`
//! and `genImg`.
//!
//! These are the "algorithm engineering" half of the paper's separation
//! of concerns: plain functions from value parameters to output
//! records, with no knowledge of concurrency, placement or scheduling.
//! All coordination — who runs where, what synchronizes with what — is
//! expressed in the networks of [`crate::nets`].

use crate::data::{copy_ops, expect, field, ChunkData, PicData, SceneData, SectData};
use crate::schedule::Schedule;
use parking_lot::Mutex;
use snet_core::boxdef::{BoxDef, BoxOutput, BoxSig, RecordVec, Work};
use snet_core::{Record, SnetError};
use snet_raytracer::{render_section, Counters, Image};
use std::path::PathBuf;
use std::sync::Arc;

/// Where `genImg` deposits the final picture (and where the experiment
/// driver collects it).
pub type ImageSlot = Arc<Mutex<Option<Image>>>;

/// Creates an empty image slot.
pub fn image_slot() -> ImageSlot {
    Arc::new(Mutex::new(None))
}

/// `box splitter ((scene, <nodes>, <tasks>, <tokens>, <sched>, <cpus>)
///               -> (scene, sect, <node>, <cpu>, <tasks>, <fst>)
///                | (scene, sect, <node>, <cpu>, <tasks>)
///                | (scene, sect, <tasks>))`
///
/// Divides the image plane into `<tasks>` sections sized by the
/// schedule encoded in `<sched>`. The first `<tokens>` sections carry a
/// `<node>` tag (round-robin over `<nodes>` nodes) — these are the
/// initial node tokens of §IV.B; the rest are emitted without a node
/// flag and wait for tokens. With `<cpus>` > 1 a `<cpu>` tag
/// distinguishes per-CPU solver instances (the `(solver!<cpu>)!@<node>`
/// variant of §V). Section 0 is flagged `<fst>` for the merger's
/// initializer. The box also charges the BVH construction work
/// (Algorithm 1, line 3) — the baseline charges the same at its root.
pub fn splitter_box() -> BoxDef {
    BoxDef::from_fn(
        BoxSig::parse(
            "splitter",
            &[
                "scene", "<nodes>", "<tasks>", "<tokens>", "<sched>", "<cpus>",
            ],
            &[
                &["scene", "sect", "<node>", "<cpu>", "<tasks>", "<fst>"],
                &["scene", "sect", "<node>", "<cpu>", "<tasks>"],
                &["scene", "sect", "<tasks>"],
            ],
        ),
        |input: &Record| {
            let scene_val = input
                .field("scene")
                .expect("splitter needs a scene")
                .clone();
            let sd: &SceneData = expect(&scene_val, "scene");
            let nodes = input.tag("nodes").unwrap_or(1).max(1);
            let tasks = input.tag("tasks").unwrap_or(1).max(1) as u32;
            let tokens = input.tag("tokens").unwrap_or(tasks as i64).max(0);
            let sched = Schedule::from_tag(input.tag("sched").unwrap_or(0));
            let cpus = input.tag("cpus").unwrap_or(1).max(1);

            let sections = sched.sections(sd.height, tasks);
            let mut records = RecordVec::with_capacity(sections.len());
            for (i, sect) in sections.into_iter().enumerate() {
                let mut rec = Record::new()
                    .with_field("scene", scene_val.clone())
                    .with_field("sect", field(SectData(sect)))
                    .with_tag("tasks", tasks as i64);
                if (i as i64) < tokens {
                    rec.set_tag("node", i as i64 % nodes);
                    if cpus > 1 {
                        rec.set_tag("cpu", (i as i64 / nodes) % cpus);
                    }
                }
                if i == 0 {
                    rec.set_tag("fst", 1);
                }
                records.push(rec);
            }
            // BVH construction (shipped with the scene) plus per-section
            // bookkeeping.
            let bvh_ops = sd.scene.shapes.len() as u64 * sd.bvh.depth().max(1) as u64 * 40;
            Ok(BoxOutput::many_into(
                records,
                Work::ops(bvh_ops + 200 * tasks as u64),
            ))
        },
    )
}

/// `box solver ((scene, sect) -> (chunk))` — renders one section
/// (Algorithm 2 per pixel). The reported work is the tracer's exact
/// deterministic operation count for that section.
pub fn solver_box() -> BoxDef {
    BoxDef::from_fn(
        BoxSig::parse("solver", &["scene", "sect"], &[&["chunk"]]),
        |input: &Record| {
            let scene_val = input.field("scene").expect("solver needs a scene");
            let sd: &SceneData = expect(scene_val, "scene");
            let sect_val = input.field("sect").expect("solver needs a section");
            let sect: &SectData = expect(sect_val, "sect");
            let mut counters = Counters::default();
            let chunk = render_section(
                &sd.scene,
                &sd.bvh,
                sd.width,
                sd.height,
                sect.0,
                &mut counters,
            );
            let out = Record::new().with_field(
                "chunk",
                field(ChunkData {
                    chunk,
                    img_height: sd.height,
                }),
            );
            Ok(BoxOutput::one(out, Work::ops(counters.ops())))
        },
    )
}

/// `box init ((chunk, <fst>) -> (pic))` — seeds the accumulator picture
/// from the flagged first chunk (§IV.A).
pub fn init_box() -> BoxDef {
    BoxDef::from_fn(
        BoxSig::parse("init", &["chunk", "<fst>"], &[&["pic"]]),
        |input: &Record| {
            let chunk_val = input.field("chunk").expect("init needs a chunk");
            let cd: &ChunkData = expect(chunk_val, "chunk");
            let mut img = Image::new(cd.chunk.width, cd.img_height);
            img.blit(&cd.chunk);
            let work = copy_ops(cd.chunk.wire_bytes());
            Ok(BoxOutput::one(
                Record::new().with_field("pic", field(PicData(img))),
                Work::ops(work),
            ))
        },
    )
}

/// `box merge ((chunk, pic) -> (pic))` — inserts one chunk into the
/// accumulator. The charged work models the in-place insertion the C
/// implementation performs (one memcpy of the chunk); the Rust
/// implementation clones the accumulator to stay a pure function, but
/// that purely in-process copy is not part of the modelled cost.
pub fn merge_box() -> BoxDef {
    BoxDef::from_fn(
        BoxSig::parse("merge", &["chunk", "pic"], &[&["pic"]]),
        |input: &Record| {
            let chunk_val = input.field("chunk").expect("merge needs a chunk");
            let cd: &ChunkData = expect(chunk_val, "chunk");
            let pic_val = input.field("pic").expect("merge needs a pic");
            let pd: &PicData = expect(pic_val, "pic");
            let mut img = pd.0.clone();
            img.blit(&cd.chunk);
            let work = copy_ops(cd.chunk.wire_bytes());
            Ok(BoxOutput::one(
                Record::new().with_field("pic", field(PicData(img))),
                Work::ops(work),
            ))
        },
    )
}

/// `box genImg ((pic) -> ())` — writes the completed picture "to a
/// file" (§IV.A): into the experiment's [`ImageSlot`], and optionally
/// to a real PPM file.
pub fn gen_img_box(slot: ImageSlot, path: Option<PathBuf>) -> BoxDef {
    BoxDef::from_fn(
        BoxSig::parse("genImg", &["pic"], &[&[]]),
        move |input: &Record| {
            let pic_val = input.field("pic").expect("genImg needs a pic");
            let pd: &PicData = expect(pic_val, "pic");
            if let Some(p) = &path {
                pd.0.write_ppm(p)
                    .map_err(|e| SnetError::Engine(format!("genImg write failed: {e}")))?;
            }
            let work = copy_ops(pd.0.wire_bytes());
            *slot.lock() = Some(pd.0.clone());
            Ok(BoxOutput::none(Work::ops(work)))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_core::Value;
    use snet_raytracer::{Scene, ScenePreset, Section};

    fn scene_value(w: u32, h: u32) -> Value {
        let scene = Arc::new(Scene::preset(ScenePreset::Balanced, 12, 5));
        let (bvh, _) = scene.build_bvh();
        field(SceneData {
            scene,
            bvh: Arc::new(bvh),
            width: w,
            height: h,
        })
    }

    fn splitter_input(nodes: i64, tasks: i64, tokens: i64, cpus: i64) -> Record {
        Record::new()
            .with_field("scene", scene_value(64, 64))
            .with_tag("nodes", nodes)
            .with_tag("tasks", tasks)
            .with_tag("tokens", tokens)
            .with_tag("sched", Schedule::Block.to_tag())
            .with_tag("cpus", cpus)
    }

    #[test]
    fn splitter_static_assigns_every_section_a_node() {
        let out = splitter_box()
            .func
            .call(&splitter_input(4, 8, 8, 1))
            .unwrap();
        assert_eq!(out.records.len(), 8);
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.tag("node"), Some(i as i64 % 4));
            assert_eq!(r.tag("tasks"), Some(8));
            assert!(r.has_field("scene") && r.has_field("sect"));
            assert_eq!(r.has_tag("fst"), i == 0);
            assert!(!r.has_tag("cpu"), "single-CPU run must not tag cpus");
        }
        assert!(out.work.ops > 0, "splitter charges BVH construction");
    }

    #[test]
    fn splitter_dynamic_leaves_late_sections_untagged() {
        let out = splitter_box()
            .func
            .call(&splitter_input(4, 12, 5, 1))
            .unwrap();
        let tagged: Vec<bool> = out.records.iter().map(|r| r.has_tag("node")).collect();
        assert_eq!(tagged.iter().filter(|&&b| b).count(), 5);
        assert!(
            tagged[..5].iter().all(|&b| b),
            "leading sections carry tokens"
        );
        assert!(tagged[5..].iter().all(|&b| !b));
    }

    #[test]
    fn splitter_two_cpu_tags_second_wave() {
        let out = splitter_box()
            .func
            .call(&splitter_input(4, 8, 8, 2))
            .unwrap();
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.tag("cpu"), Some((i as i64 / 4) % 2));
        }
    }

    #[test]
    fn splitter_sections_tile_the_image() {
        let out = splitter_box()
            .func
            .call(&splitter_input(2, 5, 5, 1))
            .unwrap();
        let mut rows = 0;
        for r in &out.records {
            let sect: &SectData = expect(r.field("sect").unwrap(), "sect");
            rows += sect.0.rows();
        }
        assert_eq!(rows, 64);
    }

    #[test]
    fn solver_renders_the_section() {
        let input = Record::new()
            .with_field("scene", scene_value(32, 32))
            .with_field("sect", field(SectData(Section::new(8, 16))));
        let out = solver_box().func.call(&input).unwrap();
        assert_eq!(out.records.len(), 1);
        let cd: &ChunkData = expect(out.records[0].field("chunk").unwrap(), "chunk");
        assert_eq!(cd.chunk.y0, 8);
        assert_eq!(cd.chunk.rows(), 8);
        assert_eq!(cd.img_height, 32);
        assert!(out.work.ops > 0, "render work must be charged");
    }

    #[test]
    fn init_and_merge_assemble_the_picture() {
        // Render two halves directly, then drive init + merge by hand.
        let scene_val = scene_value(32, 32);
        let solve = |y0: u32, y1: u32| {
            let input = Record::new()
                .with_field("scene", scene_val.clone())
                .with_field("sect", field(SectData(Section::new(y0, y1))));
            solver_box().func.call(&input).unwrap().records.remove(0)
        };
        let top = solve(0, 16);
        let bottom = solve(16, 32);

        let init_in = top.clone().with_tag("fst", 1);
        let pic0 = init_box().func.call(&init_in).unwrap().records.remove(0);
        let merge_in = Record::new()
            .with_field("chunk", bottom.field("chunk").unwrap().clone())
            .with_field("pic", pic0.field("pic").unwrap().clone());
        let merged = merge_box().func.call(&merge_in).unwrap().records.remove(0);
        let pd: &PicData = expect(merged.field("pic").unwrap(), "pic");

        // Compare against the sequential reference.
        let sd: &SceneData = expect(&scene_val, "scene");
        let mut c = Counters::default();
        let reference = snet_raytracer::render_full(&sd.scene, 32, 32, &mut c);
        assert_eq!(
            pd.0, reference,
            "merged picture must equal the direct render"
        );
    }

    #[test]
    fn gen_img_fills_the_slot() {
        let slot = image_slot();
        let img = Image::new(4, 4);
        let input = Record::new().with_field("pic", field(PicData(img.clone())));
        let out = gen_img_box(Arc::clone(&slot), None)
            .func
            .call(&input)
            .unwrap();
        assert!(out.records.is_empty(), "genImg emits nothing");
        assert_eq!(slot.lock().as_ref(), Some(&img));
    }

    #[test]
    fn gen_img_writes_ppm_when_asked() {
        let dir = std::env::temp_dir().join("rsnet-genimg-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("final.ppm");
        let slot = image_slot();
        let input = Record::new().with_field("pic", field(PicData(Image::new(2, 2))));
        gen_img_box(slot, Some(path.clone()))
            .func
            .call(&input)
            .unwrap();
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }
}
