//! Section-size scheduling: block and simple factoring.
//!
//! §V: "we have experimented with several scheduling algorithms and
//! found that block scheduling and a simple variant of factoring \[13\]
//! produces the best results. In the latter case, the scheduler divides
//! the problem into several batches of sections, where in each batch
//! the sections are of the same size. The section size decreases from
//! batch to batch by a certain factor. For example, suppose a scene of
//! 3000×3000 pixels is split along the y axis by dividing it into 48
//! sections. One possible scheduling is to split the scene into two
//! batches with the first batch containing 24 sections of size 93 and
//! the second batch the remaining 24 sections of size 32."

use snet_raytracer::Section;

/// How the splitter sizes its sections.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// Equal-sized sections.
    Block,
    /// Batches of equal-count sections whose size decreases by `factor`
    /// from batch to batch.
    Factoring {
        /// Number of batches (the paper's example uses 2).
        batches: u32,
        /// Size ratio between consecutive batches (> 1).
        factor: f64,
    },
}

impl Schedule {
    /// The paper's factoring example: two batches, sizes 93/32 ≈ 2.906.
    pub fn paper_factoring() -> Schedule {
        Schedule::Factoring {
            batches: 2,
            factor: 93.0 / 32.0,
        }
    }

    /// Encodes the schedule as an integer tag value (tags are the only
    /// values the coordination layer computes with, §I): `0` is block,
    /// any positive value is two-batch factoring with
    /// `factor = value / 1000`.
    pub fn to_tag(&self) -> i64 {
        match *self {
            Schedule::Block => 0,
            Schedule::Factoring { factor, .. } => (factor * 1000.0).round() as i64,
        }
    }

    /// Decodes [`Schedule::to_tag`].
    pub fn from_tag(tag: i64) -> Schedule {
        if tag <= 0 {
            Schedule::Block
        } else {
            Schedule::Factoring {
                batches: 2,
                factor: tag as f64 / 1000.0,
            }
        }
    }

    /// Splits `height` rows into `tasks` sections.
    pub fn sections(&self, height: u32, tasks: u32) -> Vec<Section> {
        assert!(
            tasks > 0 && height >= tasks,
            "need at least one row per task"
        );
        match *self {
            Schedule::Block => snet_raytracer::split_rows(height, tasks),
            Schedule::Factoring { batches, factor } => {
                factoring_sections(height, tasks, batches, factor)
            }
        }
    }
}

/// Factoring: distribute `tasks` sections over `batches` batches of
/// (nearly) equal count; batch `j` sections are `factor`× smaller than
/// batch `j-1` sections. Sizes are rounded to whole rows; the rounding
/// remainder is folded into the last sections row by row.
fn factoring_sections(height: u32, tasks: u32, batches: u32, factor: f64) -> Vec<Section> {
    let batches = batches.clamp(1, tasks);
    assert!(factor >= 1.0, "factoring factor must be >= 1");
    // Section count per batch (remainder to the leading batches).
    let base = tasks / batches;
    let extra = tasks % batches;
    let counts: Vec<u32> = (0..batches).map(|j| base + u32::from(j < extra)).collect();
    // Solve s0 from: sum_j counts[j] * s0 / factor^j = height.
    let denom: f64 = counts
        .iter()
        .enumerate()
        .map(|(j, &c)| c as f64 / factor.powi(j as i32))
        .sum();
    let s0 = height as f64 / denom;
    // Ideal real-valued sizes; floor them but keep every section >= 1.
    let mut sizes: Vec<u32> = Vec::with_capacity(tasks as usize);
    for (j, &c) in counts.iter().enumerate() {
        let ideal = (s0 / factor.powi(j as i32)).floor().max(1.0) as u32;
        sizes.extend(std::iter::repeat_n(ideal, c as usize));
    }
    // Distribute the remainder one row at a time (biggest sections
    // first, preserving the decreasing shape).
    let mut assigned: u32 = sizes.iter().sum();
    let n = sizes.len();
    let mut i = 0;
    while assigned < height {
        sizes[i % n] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > height {
        let pos = sizes
            .iter()
            .rposition(|&s| s > 1)
            .expect("height >= tasks guarantees shrinkable sections");
        sizes[pos] -= 1;
        assigned -= 1;
    }
    // Materialize contiguous sections.
    let mut out = Vec::with_capacity(tasks as usize);
    let mut y = 0;
    for s in sizes {
        out.push(Section::new(y, y + s));
        y += s;
    }
    debug_assert_eq!(y, height);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_even() {
        let s = Schedule::Block.sections(3000, 48);
        assert_eq!(s.len(), 48);
        assert!(s.iter().all(|x| x.rows() == 62 || x.rows() == 63));
        assert_eq!(s.iter().map(|x| x.rows()).sum::<u32>(), 3000);
    }

    #[test]
    fn paper_factoring_example_reproduced() {
        // "two batches with the first batch containing 24 sections of
        // size 93 and the second batch the remaining 24 sections of
        // size 32."
        let s = Schedule::paper_factoring().sections(3000, 48);
        assert_eq!(s.len(), 48);
        let sizes: Vec<u32> = s.iter().map(|x| x.rows()).collect();
        assert!(sizes[..24].iter().all(|&r| r == 93), "{:?}", &sizes[..24]);
        assert!(sizes[24..].iter().all(|&r| r == 32), "{:?}", &sizes[24..]);
    }

    #[test]
    fn factoring_tiles_exactly_for_awkward_heights() {
        for (h, t) in [(601u32, 7u32), (599, 48), (100, 9), (3000, 72)] {
            let s = Schedule::paper_factoring().sections(h, t);
            assert_eq!(s.len(), t as usize);
            assert_eq!(s[0].y0, 0);
            assert_eq!(s.last().unwrap().y1, h);
            for w in s.windows(2) {
                assert_eq!(w[0].y1, w[1].y0);
            }
        }
    }

    #[test]
    fn factoring_sections_decrease() {
        let s = Schedule::Factoring {
            batches: 3,
            factor: 2.0,
        }
        .sections(1000, 30);
        let sizes: Vec<u32> = s.iter().map(|x| x.rows()).collect();
        // First batch strictly larger than last batch.
        assert!(sizes[0] > sizes[29], "{sizes:?}");
        assert_eq!(sizes.iter().sum::<u32>(), 1000);
    }

    #[test]
    fn tag_round_trip() {
        assert_eq!(
            Schedule::from_tag(Schedule::Block.to_tag()),
            Schedule::Block
        );
        let f = Schedule::paper_factoring();
        let decoded = Schedule::from_tag(f.to_tag());
        match decoded {
            Schedule::Factoring { factor, batches } => {
                assert_eq!(batches, 2);
                assert!((factor - 93.0 / 32.0).abs() < 1e-3);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn one_row_per_task_edge() {
        let s = Schedule::Block.sections(8, 8);
        assert!(s.iter().all(|x| x.rows() == 1));
        let f = Schedule::paper_factoring().sections(8, 8);
        assert_eq!(f.iter().map(|x| x.rows()).sum::<u32>(), 8);
        assert!(f.iter().all(|x| x.rows() >= 1));
    }
}
