//! The C/MPI baseline: "the implementation we use in this paper
//! distributes an image evenly across all cluster nodes and processes
//! these independently. The root process collects all sub-results and
//! assembles the completed scene" (§II).
//!
//! Runs on the same simulated cluster and charges exactly the same
//! application work (BVH build, per-section render counters, memcpy
//! assembly) as the S-Net variants — but none of the S-Net runtime's
//! per-record overhead, because it is hand-written message passing.

use crate::data::copy_ops;
use crate::experiment::Workload;
use parking_lot::Mutex;
use snet_core::SnetError;
use snet_raytracer::{render_section, split_rows, Bvh, Chunk, Counters, Image, Scene};
use snet_simnet::{Cluster, ClusterSpec, MpiComm, Simulation};
use std::sync::Arc;

/// Messages exchanged by the baseline.
#[derive(Clone, Debug)]
enum Payload {
    /// Root broadcasts the scene plus its prebuilt BVH.
    Scene(Arc<Scene>, Arc<Bvh>),
    /// Workers return their rendered strip.
    Chunk(Chunk),
}

/// Result of one baseline run.
#[derive(Debug)]
pub struct MpiOutcome {
    /// Virtual runtime in seconds.
    pub makespan_secs: f64,
    /// The assembled picture.
    pub image: Image,
    /// Number of MPI ranks used.
    pub ranks: usize,
}

/// Runs the baseline with `ranks_per_node` MPI processes per node
/// (Fig 6 uses 1 and 2: "the experiments were re-run with two processes
/// per node by starting 2n MPI jobs on n nodes").
pub fn run_mpi_raytrace(
    wl: &Workload,
    nodes: usize,
    ranks_per_node: usize,
    cluster_spec: ClusterSpec,
) -> Result<MpiOutcome, SnetError> {
    assert!(nodes > 0 && ranks_per_node > 0);
    assert!(cluster_spec.nodes >= nodes);
    let ranks = nodes * ranks_per_node;
    assert!(
        wl.height as usize >= ranks,
        "image must have at least one row per rank"
    );

    let sim = Simulation::new();
    let cluster = Cluster::new(sim.handle(), cluster_spec);
    // Rank r lives on node r % nodes: ranks n..2n are the second
    // process on each node.
    let node_of_rank: Vec<usize> = (0..ranks).map(|r| r % nodes).collect();
    let comm: MpiComm<Payload> = MpiComm::new(sim.handle(), &cluster, node_of_rank);

    let result: Arc<Mutex<Option<Image>>> = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    let wl = wl.clone();
    let cluster2 = cluster.clone();
    let (width, height) = (wl.width, wl.height);

    comm.spawn_ranks(sim.handle(), move |ctx, mpi| {
        let rank = mpi.rank();
        let node = mpi.node();
        let sections = split_rows(height, mpi.size() as u32);
        let my_section = sections[rank];

        // Scene distribution: the root builds the scene and its BVH
        // (Algorithm 1, line 3) and broadcasts both.
        let (scene, bvh) = if rank == 0 {
            let (scene, bvh) = wl.scene();
            let bvh_ops = scene.shapes.len() as u64 * bvh.depth().max(1) as u64 * 40;
            cluster2.compute(ctx, node, bvh_ops);
            let bytes = scene.wire_bytes() + bvh.node_count() * 56;
            match mpi.bcast(ctx, 0, bytes, Some(Payload::Scene(scene, bvh))) {
                Payload::Scene(s, b) => (s, b),
                Payload::Chunk(_) => unreachable!("root broadcast a scene"),
            }
        } else {
            match mpi.bcast(ctx, 0, 0, None) {
                Payload::Scene(s, b) => (s, b),
                Payload::Chunk(_) => unreachable!("broadcast carries the scene"),
            }
        };

        // Render the local strip; the work counters charge virtual time.
        let mut counters = Counters::default();
        let chunk = render_section(&scene, &bvh, width, height, my_section, &mut counters);
        cluster2.compute(ctx, node, counters.ops());

        if rank == 0 {
            // Assemble: own strip plus one gather per worker.
            let mut image = Image::new(width, height);
            cluster2.compute(ctx, node, copy_ops(chunk.wire_bytes()));
            image.blit(&chunk);
            for _ in 1..mpi.size() {
                let msg = mpi.recv_any(ctx);
                match msg.payload {
                    Payload::Chunk(c) => {
                        cluster2.compute(ctx, node, copy_ops(c.wire_bytes()));
                        image.blit(&c);
                    }
                    Payload::Scene(..) => unreachable!("workers send chunks"),
                }
            }
            // Write the completed picture (the genImg-equivalent step).
            cluster2.compute(ctx, node, copy_ops(image.wire_bytes()));
            *result2.lock() = Some(image);
        } else {
            let bytes = chunk.wire_bytes();
            mpi.send(ctx, 0, bytes, Payload::Chunk(chunk));
        }
    });

    let report = sim
        .run()
        .map_err(|e| SnetError::Engine(format!("mpi baseline failed: {e}")))?;
    let image = result
        .lock()
        .take()
        .ok_or_else(|| SnetError::Engine("mpi root produced no image".into()))?;
    Ok(MpiOutcome {
        makespan_secs: report.end_time.as_secs_f64(),
        image,
        ranks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed(nodes: usize) -> ClusterSpec {
        ClusterSpec {
            cpu_ops_per_sec: 200.0e6,
            ..ClusterSpec::paper_testbed(nodes)
        }
    }

    #[test]
    fn baseline_matches_the_sequential_reference() {
        let wl = Workload::small();
        let reference = wl.reference_image();
        for nodes in [1usize, 2, 4] {
            let out = run_mpi_raytrace(&wl, nodes, 1, testbed(nodes)).unwrap();
            assert_eq!(out.image, reference, "{nodes}-node baseline must be exact");
            assert_eq!(out.ranks, nodes);
        }
    }

    #[test]
    fn two_ranks_per_node_use_both_cpus() {
        let wl = Workload::small();
        let one = run_mpi_raytrace(&wl, 2, 1, testbed(2)).unwrap();
        let two = run_mpi_raytrace(&wl, 2, 2, testbed(2)).unwrap();
        assert_eq!(two.image, one.image);
        assert!(
            two.makespan_secs < one.makespan_secs,
            "2 proc/node ({:.3}s) must beat 1 proc/node ({:.3}s)",
            two.makespan_secs,
            one.makespan_secs
        );
    }

    #[test]
    fn more_nodes_render_faster() {
        let wl = Workload::small();
        let n1 = run_mpi_raytrace(&wl, 1, 1, testbed(1)).unwrap();
        let n4 = run_mpi_raytrace(&wl, 4, 1, testbed(4)).unwrap();
        assert!(n4.makespan_secs < n1.makespan_secs);
    }

    #[test]
    fn baseline_is_deterministic() {
        let wl = Workload::small();
        let a = run_mpi_raytrace(&wl, 3, 2, testbed(3)).unwrap();
        let b = run_mpi_raytrace(&wl, 3, 2, testbed(3)).unwrap();
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.image, b.image);
    }
}
