//! # snet-apps — the paper's ray-tracing case study
//!
//! Everything §IV and §V of the paper build on top of the S-Net
//! machinery:
//!
//! * [`boxes`] — the application boxes (`splitter`, `solver`, `init`,
//!   `merge`, `genImg`): sequential functions with no concurrency
//!   knowledge (the "algorithm engineering" concern);
//! * [`nets`] — the coordination networks: the Fig 3 merger, the Fig 2
//!   static fork-join net, its `(solver!<cpu>)!@<node>` 2-CPU variant,
//!   and the Fig 4 token-based dynamic solver (the "concurrency
//!   engineering" concern);
//! * [`schedule`] — block scheduling and the paper's simple variant of
//!   factoring (Hummel et al. \[13\]);
//! * [`experiment`] — drivers running any variant on the simulated
//!   cluster ([`run_snet_cluster`]) or the local threaded engine
//!   ([`run_snet_local`]), plus the [`Workload`] definitions;
//! * [`mpi_app`] — the hand-written C/MPI baseline on simulated MPI.
//!
//! Every run — static, 2-CPU, dynamic, MPI, local — produces an image
//! byte-identical to the sequential Algorithm 1 render; the virtual
//! makespans are what the fig5/fig6 benchmark binaries plot.

pub mod boxes;
pub mod data;
pub mod experiment;
pub mod mpi_app;
pub mod nets;
pub mod schedule;

pub use boxes::{
    gen_img_box, image_slot, init_box, merge_box, solver_box, splitter_box, ImageSlot,
};
pub use data::{ChunkData, PicData, SceneData, SectData};
pub use experiment::{
    input_record, run_snet_cluster, run_snet_local, run_snet_local_sched, SnetConfig, SnetOutcome,
    Workload,
};
pub use mpi_app::{run_mpi_raytrace, MpiOutcome};
pub use nets::{
    dynamic_solver, merger_net, raytracing_net, registry, static_solver, static_solver_2cpu,
    NetVariant, RAYTRACING_STAT_SOURCE,
};
pub use schedule::Schedule;
