//! # snet-simnet — a deterministic discrete-event cluster simulator
//!
//! This crate is the hardware substitute for the paper's testbed (§V:
//! eight dual-PIII nodes on 100 Mbit ethernet). It provides:
//!
//! * a **discrete-event kernel** ([`Simulation`], [`SimCtx`]) whose
//!   processes are real threads running real application code under a
//!   strict one-runnable-at-a-time hand-off, so virtual time is exact
//!   and every run is deterministic;
//! * **mailboxes** ([`SimQueue`]) with per-message delivery times;
//! * **FIFO resources** ([`Resource`]) modelling CPU pools and NICs;
//! * a **cluster model** ([`Cluster`], [`ClusterSpec`]) with per-node
//!   CPU pools, per-node transmit NICs, link latency and memory-copy
//!   costs;
//! * **simulated MPI** ([`MpiComm`], [`MpiRank`]) — blocking p2p plus
//!   broadcast/gather — on which both the paper's C/MPI baseline and
//!   the Distributed S-Net transport run.
//!
//! ```
//! use snet_simnet::{Simulation, SimQueue};
//! use std::time::Duration;
//!
//! let sim = Simulation::new();
//! let q: SimQueue<&str> = SimQueue::new(sim.handle(), "demo");
//! let q2 = q.clone();
//! sim.spawn("producer", move |ctx| {
//!     ctx.advance(Duration::from_secs(2));
//!     q2.send("hello");
//!     q2.close();
//! });
//! sim.spawn("consumer", move |ctx| {
//!     assert_eq!(q.recv(ctx), Some("hello"));
//!     assert_eq!(ctx.now().as_secs_f64(), 2.0);
//! });
//! let report = sim.run().unwrap();
//! assert_eq!(report.end_time.as_secs_f64(), 2.0);
//! ```

pub mod cluster;
pub mod mpi;
pub mod queue;
pub mod resource;
pub mod sim;
pub mod time;

pub use cluster::{Cluster, ClusterSpec};
pub use mpi::{MpiComm, MpiMsg, MpiRank};
pub use queue::SimQueue;
pub use resource::Resource;
pub use sim::{ProcId, SimCtx, SimError, SimHandle, SimReport, Simulation};
pub use time::{bytes_duration, ops_duration, SimTime};
