//! FIFO server resources: the contention model for CPUs and NICs.
//!
//! A [`Resource`] has `capacity` identical servers. Processes acquire a
//! server (waiting FIFO when all are busy), hold it while virtual time
//! passes, and release it. Strict FIFO hand-off: a released server goes
//! to the longest-waiting process even if another process could grab it
//! "instantaneously" — this mirrors a run queue, keeps the model fair,
//! and keeps runs deterministic.

use crate::sim::{ProcId, SimCtx, SimHandle};
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

struct ResourceState {
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<ProcId>,
    /// Processes that were handed a server on release and have not yet
    /// resumed to claim it.
    granted: HashSet<ProcId>,
}

/// A pool of identical servers with a FIFO wait queue.
#[derive(Clone)]
pub struct Resource {
    state: Arc<Mutex<ResourceState>>,
    handle: SimHandle,
    name: String,
    busy_nanos: Arc<std::sync::atomic::AtomicU64>,
}

impl Resource {
    /// Creates a pool with `capacity` servers.
    pub fn new(handle: &SimHandle, name: &str, capacity: usize) -> Resource {
        assert!(capacity > 0, "resource must have at least one server");
        Resource {
            state: Arc::new(Mutex::new(ResourceState {
                capacity,
                in_use: 0,
                waiters: VecDeque::new(),
                granted: HashSet::new(),
            })),
            handle: handle.clone(),
            name: name.to_owned(),
            busy_nanos: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Acquires one server, waiting FIFO if none is free.
    pub fn acquire(&self, ctx: &SimCtx) {
        loop {
            {
                let mut st = self.state.lock();
                if st.granted.remove(&ctx.pid()) {
                    // A releasing process transferred its server to us.
                    return;
                }
                if st.waiters.is_empty() && st.in_use < st.capacity {
                    st.in_use += 1;
                    return;
                }
                // A stale wake (e.g. a message landing in a queue we
                // waited on earlier) can re-run this loop while we are
                // already enqueued; registering twice would let a later
                // grant go to the dead duplicate and leak the server.
                if !st.waiters.contains(&ctx.pid()) {
                    st.waiters.push_back(ctx.pid());
                }
            }
            ctx.block(&format!("acquire {}", self.name));
        }
    }

    /// Releases a previously acquired server, handing it directly to
    /// the longest-waiting process if any.
    pub fn release(&self) {
        let woken: Option<ProcId> = {
            let mut st = self.state.lock();
            match st.waiters.pop_front() {
                Some(w) => {
                    st.granted.insert(w);
                    Some(w)
                }
                None => {
                    debug_assert!(st.in_use > 0, "release without acquire");
                    st.in_use = st.in_use.saturating_sub(1);
                    None
                }
            }
        };
        if let Some(w) = woken {
            let mut kernel = self.handle.kernel.lock();
            let now = kernel.now();
            kernel.schedule_wake(w, now);
        }
    }

    /// Acquires a server, holds it for `d` of virtual time, releases it.
    pub fn execute(&self, ctx: &SimCtx, d: Duration) {
        self.acquire(ctx);
        ctx.advance(d);
        self.busy_nanos.fetch_add(
            d.as_nanos().min(u64::MAX as u128) as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        self.release();
    }

    /// Total virtual time servers of this pool have been held via
    /// [`Resource::execute`] — the utilization numerator.
    pub fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(std::sync::atomic::Ordering::Relaxed))
    }

    /// Number of servers currently held.
    pub fn in_use(&self) -> usize {
        let st = self.state.lock();
        st.in_use + st.granted.len()
    }

    /// Number of processes waiting.
    pub fn queue_len(&self) -> usize {
        self.state.lock().waiters.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::time::SimTime;
    use parking_lot::Mutex as PMutex;

    #[test]
    fn uncontended_execute_takes_its_duration() {
        let sim = Simulation::new();
        let cpu = Resource::new(sim.handle(), "cpu", 1);
        sim.spawn("worker", move |ctx| {
            cpu.execute(ctx, Duration::from_secs(5));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_secs_f64(5.0));
    }

    #[test]
    fn contention_serializes_on_one_server() {
        // 4 jobs of 1 s on a single CPU → makespan 4 s.
        let sim = Simulation::new();
        let cpu = Resource::new(sim.handle(), "cpu", 1);
        for i in 0..4 {
            let cpu = cpu.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                cpu.execute(ctx, Duration::from_secs(1));
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_secs_f64(4.0));
    }

    #[test]
    fn two_servers_halve_the_makespan() {
        let sim = Simulation::new();
        let cpu = Resource::new(sim.handle(), "cpu", 2);
        for i in 0..4 {
            let cpu = cpu.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                cpu.execute(ctx, Duration::from_secs(1));
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_secs_f64(2.0));
    }

    #[test]
    fn fifo_ordering_of_waiters() {
        let sim = Simulation::new();
        let cpu = Resource::new(sim.handle(), "cpu", 1);
        let order = Arc::new(PMutex::new(Vec::new()));
        for i in 0..4 {
            let cpu = cpu.clone();
            let order = Arc::clone(&order);
            sim.spawn(&format!("w{i}"), move |ctx| {
                // Stagger arrivals so the queue order is w0, w1, w2, w3.
                ctx.advance(Duration::from_millis(i));
                cpu.acquire(ctx);
                order.lock().push(i);
                ctx.advance(Duration::from_secs(1));
                cpu.release();
            });
        }
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn release_transfers_directly_to_waiter() {
        // A process that arrives exactly when a server frees must not
        // jump ahead of an already-waiting process.
        let sim = Simulation::new();
        let cpu = Resource::new(sim.handle(), "cpu", 1);
        let order = Arc::new(PMutex::new(Vec::new()));

        let c0 = cpu.clone();
        sim.spawn("holder", move |ctx| {
            c0.acquire(ctx);
            ctx.advance(Duration::from_secs(2));
            c0.release();
        });
        let c1 = cpu.clone();
        let o1 = Arc::clone(&order);
        sim.spawn("waiter", move |ctx| {
            ctx.advance(Duration::from_secs(1));
            c1.acquire(ctx);
            o1.lock().push("waiter");
            c1.release();
        });
        let c2 = cpu.clone();
        let o2 = Arc::clone(&order);
        sim.spawn("latecomer", move |ctx| {
            ctx.advance(Duration::from_secs(2)); // arrives at the release instant
            c2.acquire(ctx);
            o2.lock().push("latecomer");
            c2.release();
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["waiter", "latecomer"]);
    }

    #[test]
    fn stale_wakes_do_not_leak_servers() {
        // Regression: a process woken by a *stale* queue event while
        // already enqueued on a resource used to register twice; the
        // duplicate entry swallowed a later grant and permanently leaked
        // the server. The victim here accumulates a pending wake (for a
        // delayed message it ends up not needing), then waits on the
        // CPU; the stale wake fires mid-wait.
        use crate::queue::SimQueue;
        let sim = Simulation::new();
        let cpu = Resource::new(sim.handle(), "cpu", 1);
        let q: SimQueue<&'static str> = SimQueue::new(sim.handle(), "q");

        let c0 = cpu.clone();
        sim.spawn("holder", move |ctx| {
            c0.acquire(ctx);
            ctx.advance(Duration::from_secs(5));
            c0.release();
        });
        let q_prod = q.clone();
        sim.spawn("producer", move |ctx| {
            q_prod.send_delayed("slow", Duration::from_secs(3));
            ctx.advance(Duration::from_secs(1));
            q_prod.send("fast");
        });
        let (c1, q1) = (cpu.clone(), q.clone());
        sim.spawn("victim", move |ctx| {
            // Waits for the slow message, schedules a wake at t=3, but
            // is released early by the fast message at t=1 — the t=3
            // wake is now stale and will fire while we sit in the CPU
            // queue.
            assert_eq!(q1.recv(ctx), Some("fast"));
            c1.acquire(ctx);
            ctx.advance(Duration::from_secs(1));
            c1.release();
        });
        let c2 = cpu.clone();
        sim.spawn("third", move |ctx| {
            ctx.advance(Duration::from_secs(2));
            c2.execute(ctx, Duration::from_secs(1));
        });
        let c3 = cpu.clone();
        sim.spawn("fourth", move |ctx| {
            ctx.advance(Duration::from_secs(8));
            c3.execute(ctx, Duration::from_secs(1));
        });
        // Without the duplicate-registration guard this deadlocks.
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_secs_f64(9.0));
    }

    #[test]
    fn gauges_report_usage() {
        let sim = Simulation::new();
        let cpu = Resource::new(sim.handle(), "cpu", 2);
        assert_eq!(cpu.capacity(), 2);
        let c = cpu.clone();
        sim.spawn("w", move |ctx| {
            c.acquire(ctx);
            assert_eq!(c.in_use(), 1);
            assert_eq!(c.queue_len(), 0);
            c.release();
            assert_eq!(c.in_use(), 0);
        });
        sim.run().unwrap();
    }
}
