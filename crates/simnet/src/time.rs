//! Virtual time.
//!
//! The simulator's clock is a 64-bit nanosecond counter — fine enough to
//! resolve single memory copies, wide enough for ~584 years of virtual
//! time. Durations are plain [`std::time::Duration`]s.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An instant of virtual time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from raw nanoseconds.
    pub fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Builds from (possibly fractional) seconds. Negative and
    /// non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> SimTime {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime(0);
        }
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, other: SimTime) -> Duration {
        self.saturating_sub(other)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// Duration for `ops` operations at `ops_per_sec` throughput.
pub fn ops_duration(ops: u64, ops_per_sec: f64) -> Duration {
    if ops == 0 || ops_per_sec <= 0.0 {
        return Duration::ZERO;
    }
    Duration::from_secs_f64(ops as f64 / ops_per_sec)
}

/// Duration to move `bytes` at `bytes_per_sec` throughput.
pub fn bytes_duration(bytes: usize, bytes_per_sec: f64) -> Duration {
    if bytes == 0 || bytes_per_sec <= 0.0 {
        return Duration::ZERO;
    }
    Duration::from_secs_f64(bytes as f64 / bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::ZERO + Duration::from_millis(1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(t - SimTime::from_secs_f64(1.0), Duration::from_millis(500));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::ZERO - SimTime::from_secs_f64(3.0), Duration::ZERO);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn throughput_helpers() {
        assert_eq!(ops_duration(0, 1e6), Duration::ZERO);
        assert_eq!(ops_duration(1_000_000, 1e6), Duration::from_secs(1));
        assert_eq!(bytes_duration(12_500_000, 12.5e6), Duration::from_secs(1));
        assert_eq!(bytes_duration(10, 0.0), Duration::ZERO);
    }

    #[test]
    fn ordering_is_by_time() {
        assert!(SimTime::from_secs_f64(1.0) < SimTime::from_secs_f64(2.0));
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "1.250s");
    }
}
