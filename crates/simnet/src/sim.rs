//! The discrete-event kernel and its blocked-thread processes.
//!
//! Processes are real OS threads running real application code (the ray
//! tracer actually renders), but *time* is virtual: a strict hand-off
//! protocol guarantees that at any moment either the scheduler or
//! exactly one process thread is running. A process interacts with
//! virtual time only through its [`SimCtx`]: it can read the clock,
//! sleep ([`SimCtx::advance`]), spawn further processes, and block on
//! kernel objects (queues, resources) that wake it through scheduled
//! events.
//!
//! Determinism: the event queue is ordered by `(time, sequence number)`,
//! sequence numbers are handed out in scheduling order, and only one
//! thread ever runs at a time — so two runs of the same program produce
//! identical event logs, identical results and identical makespans.

use crate::time::SimTime;
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Identifies a process within one simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// Raw process index (stable within a run; used in event logs).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Errors terminating a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Every runnable event was consumed but some processes are still
    /// blocked — the simulated program deadlocked.
    Deadlock {
        /// Virtual time of the deadlock.
        at: SimTime,
        /// `name (blocked on …)` for every stuck process.
        blocked: Vec<String>,
    },
    /// A process panicked; the panic message is attached.
    ProcessPanic {
        /// Process name.
        name: String,
        /// Panic payload rendered to a string.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                write!(f, "simulation deadlocked at {at}: {}", blocked.join("; "))
            }
            SimError::ProcessPanic { name, message } => {
                write!(f, "process `{name}` panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time of the last processed event (the makespan).
    pub end_time: SimTime,
    /// Number of events processed.
    pub events: u64,
    /// Number of processes that ran.
    pub processes: usize,
    /// `(time, process)` log of every scheduling decision — identical
    /// across runs of the same program (the determinism witness).
    pub event_log: Vec<(SimTime, ProcId)>,
}

#[derive(PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    proc: ProcId,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

enum YieldKind {
    Blocked,
    Done,
    Panicked(String),
}

struct ProcEntry {
    name: String,
    go_tx: Sender<()>,
    done: bool,
    /// Human-readable description of what the process is blocked on
    /// (for deadlock reports).
    blocked_on: Option<String>,
}

pub(crate) struct Kernel {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    procs: Vec<ProcEntry>,
    threads: Vec<JoinHandle<()>>,
    event_log: Vec<(SimTime, ProcId)>,
    events_processed: u64,
}

impl Kernel {
    pub(crate) fn schedule_wake(&mut self, proc: ProcId, at: SimTime) {
        let at = at.max(self.now);
        self.seq += 1;
        self.events.push(Reverse(Event {
            at,
            seq: self.seq,
            proc,
        }));
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    fn register(&mut self, name: String, go_tx: Sender<()>) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        self.procs.push(ProcEntry {
            name,
            go_tx,
            done: false,
            blocked_on: None,
        });
        id
    }
}

/// Cloneable handle to a simulation's kernel; the factory for kernel
/// objects ([`crate::SimQueue`], [`crate::Resource`], …).
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) kernel: Arc<Mutex<Kernel>>,
    yield_tx: Sender<(ProcId, YieldKind)>,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.lock().now()
    }

    /// Spawns a process that becomes runnable at the current virtual
    /// time (after all already-scheduled events at that time).
    pub fn spawn<F>(&self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        let (go_tx, go_rx) = bounded(1);
        let pid = {
            let mut k = self.kernel.lock();
            let pid = k.register(name.to_owned(), go_tx);
            let at = k.now();
            k.schedule_wake(pid, at);
            pid
        };
        let ctx = SimCtx {
            pid,
            handle: self.clone(),
            go_rx,
        };
        let yield_tx = self.yield_tx.clone();
        let thread_name = format!("sim-{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                // First activation: wait to be scheduled.
                if ctx.go_rx.recv().is_err() {
                    return; // simulation torn down before we ever ran
                }
                let pid = ctx.pid;
                let tx = yield_tx;
                let result = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                let kind = match result {
                    Ok(()) => YieldKind::Done,
                    Err(payload) => {
                        if payload.downcast_ref::<SimAborted>().is_some() {
                            // Teardown-induced unwind; not a user panic.
                            return;
                        }
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        YieldKind::Panicked(msg)
                    }
                };
                let _ = tx.send((pid, kind));
            })
            .expect("spawn sim process thread");
        self.kernel.lock().threads.push(handle);
        pid
    }
}

/// Panic payload used to unwind process threads when the simulation is
/// torn down early (deadlock or another process's panic).
struct SimAborted;

/// The process-side API: everything a simulated process may do with
/// virtual time.
pub struct SimCtx {
    pid: ProcId,
    handle: SimHandle,
    go_rx: Receiver<()>,
}

impl SimCtx {
    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }

    /// A cloneable handle for creating kernel objects or spawning.
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// Spawns a child process runnable at the current time.
    pub fn spawn<F>(&self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        self.handle.spawn(name, f)
    }

    /// Lets virtual time pass for this process.
    pub fn advance(&self, d: Duration) {
        if d.is_zero() {
            return;
        }
        {
            let mut k = self.handle.kernel.lock();
            let at = k.now() + d;
            k.schedule_wake(self.pid, at);
        }
        self.block("advance");
    }

    /// Yields without letting time pass (reschedules this process after
    /// every event already queued at the current instant).
    pub fn yield_now(&self) {
        {
            let mut k = self.handle.kernel.lock();
            let at = k.now();
            k.schedule_wake(self.pid, at);
        }
        self.block("yield");
    }

    /// Blocks until another process wakes us via a scheduled event.
    ///
    /// Kernel objects call this after registering the process in their
    /// waiter lists. The caller must not hold any lock. The `reason`
    /// shows up in deadlock reports.
    pub(crate) fn block(&self, reason: &str) {
        {
            let mut k = self.handle.kernel.lock();
            k.procs[self.pid.0 as usize].blocked_on = Some(reason.to_owned());
        }
        self.handle
            .yield_tx
            .send((self.pid, YieldKind::Blocked))
            .expect("scheduler alive");
        if self.go_rx.recv().is_err() {
            // The scheduler dropped our go channel: teardown. Unwind the
            // process thread; `spawn` recognises the payload.
            std::panic::panic_any(SimAborted);
        }
        self.handle.kernel.lock().procs[self.pid.0 as usize].blocked_on = None;
    }
}

/// A simulation: create it, spawn root processes, run to completion.
pub struct Simulation {
    handle: SimHandle,
    yield_rx: Receiver<(ProcId, YieldKind)>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Simulation {
        let (yield_tx, yield_rx) = unbounded();
        let kernel = Arc::new(Mutex::new(Kernel {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            procs: Vec::new(),
            threads: Vec::new(),
            event_log: Vec::new(),
            events_processed: 0,
        }));
        Simulation {
            handle: SimHandle { kernel, yield_tx },
            yield_rx,
        }
    }

    /// Handle for spawning root processes and creating kernel objects.
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// Spawns a root process (runnable at time zero).
    pub fn spawn<F>(&self, name: &str, f: F) -> ProcId
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        self.handle.spawn(name, f)
    }

    /// Runs events until none remain, then reports.
    ///
    /// Returns an error if any process panicked or if processes remain
    /// blocked once the event queue is exhausted (deadlock).
    pub fn run(self) -> Result<SimReport, SimError> {
        let kernel = Arc::clone(&self.handle.kernel);
        let mut failure: Option<SimError> = None;
        loop {
            let next = {
                let mut k = kernel.lock();
                match k.events.pop() {
                    Some(Reverse(ev)) => {
                        k.now = ev.at;
                        if k.procs[ev.proc.0 as usize].done {
                            continue; // stale wake
                        }
                        k.events_processed += 1;
                        k.event_log.push((ev.at, ev.proc));
                        Some(ev.proc)
                    }
                    None => None,
                }
            };
            let Some(pid) = next else { break };
            let go_tx = kernel.lock().procs[pid.0 as usize].go_tx.clone();
            if go_tx.send(()).is_err() {
                // Process thread died without yielding — only possible
                // after a panic we are about to surface.
                continue;
            }
            match self.yield_rx.recv() {
                Ok((ypid, YieldKind::Blocked)) => {
                    debug_assert_eq!(ypid, pid, "only the scheduled process may yield");
                }
                Ok((ypid, YieldKind::Done)) => {
                    kernel.lock().procs[ypid.0 as usize].done = true;
                }
                Ok((ypid, YieldKind::Panicked(message))) => {
                    let name = {
                        let mut k = kernel.lock();
                        k.procs[ypid.0 as usize].done = true;
                        k.procs[ypid.0 as usize].name.clone()
                    };
                    failure = Some(SimError::ProcessPanic { name, message });
                    break;
                }
                Err(_) => break,
            }
        }

        // Collect the report and any deadlock before tearing down.
        let (report, stuck) = {
            let k = kernel.lock();
            let stuck: Vec<String> = k
                .procs
                .iter()
                .filter(|p| !p.done)
                .map(|p| {
                    format!(
                        "{} (blocked on {})",
                        p.name,
                        p.blocked_on.as_deref().unwrap_or("start")
                    )
                })
                .collect();
            (
                SimReport {
                    end_time: k.now,
                    events: k.events_processed,
                    processes: k.procs.len(),
                    event_log: k.event_log.clone(),
                },
                stuck,
            )
        };

        // Tear down: dropping every go sender unwinds blocked process
        // threads (they observe a disconnected channel and abort).
        let threads = {
            let mut k = kernel.lock();
            for p in &mut k.procs {
                let (dead_tx, _) = bounded(1);
                p.go_tx = dead_tx; // drop the real sender
            }
            std::mem::take(&mut k.threads)
        };
        for t in threads {
            let _ = t.join();
        }

        if let Some(e) = failure {
            return Err(e);
        }
        if !stuck.is_empty() {
            return Err(SimError::Deadlock {
                at: report.end_time,
                blocked: stuck,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn empty_simulation_finishes_at_zero() {
        let report = Simulation::new().run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.events, 0);
    }

    #[test]
    fn advance_moves_the_clock() {
        let sim = Simulation::new();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        sim.spawn("sleeper", move |ctx| {
            ctx.advance(Duration::from_secs(3));
            seen2.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_secs_f64(3.0));
        assert_eq!(seen.load(Ordering::SeqCst), 3_000_000_000);
    }

    #[test]
    fn processes_interleave_by_time_not_spawn_order() {
        let sim = Simulation::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (name, delay_ms) in [("late", 20u64), ("early", 10u64)] {
            let log = Arc::clone(&log);
            sim.spawn(name, move |ctx| {
                ctx.advance(Duration::from_millis(delay_ms));
                log.lock().push(name);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["early", "late"]);
    }

    #[test]
    fn equal_times_run_in_schedule_order() {
        let sim = Simulation::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let log = Arc::clone(&log);
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.advance(Duration::from_millis(7));
                log.lock().push(i);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn spawned_children_run_at_parent_time() {
        let sim = Simulation::new();
        let t_child = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t_child);
        sim.spawn("parent", move |ctx| {
            ctx.advance(Duration::from_secs(1));
            let t2 = Arc::clone(&t2);
            ctx.spawn("child", move |cctx| {
                t2.store(cctx.now().as_nanos(), Ordering::SeqCst);
            });
        });
        sim.run().unwrap();
        assert_eq!(t_child.load(Ordering::SeqCst), 1_000_000_000);
    }

    #[test]
    fn panics_are_reported_with_process_name() {
        let sim = Simulation::new();
        sim.spawn("exploder", |_ctx| panic!("kaboom {}", 42));
        match sim.run() {
            Err(SimError::ProcessPanic { name, message }) => {
                assert_eq!(name, "exploder");
                assert!(message.contains("kaboom 42"));
            }
            other => panic!("expected panic report, got {other:?}"),
        }
    }

    #[test]
    fn event_log_is_deterministic() {
        fn run_once() -> Vec<(SimTime, ProcId)> {
            let sim = Simulation::new();
            for i in 0..6u64 {
                sim.spawn(&format!("p{i}"), move |ctx| {
                    for _ in 0..4 {
                        ctx.advance(Duration::from_millis(3 + i));
                    }
                });
            }
            sim.run().unwrap().event_log
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn yield_now_reorders_within_an_instant() {
        let sim = Simulation::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        sim.spawn("a", move |ctx| {
            ctx.yield_now();
            l1.lock().push("a-after-yield");
        });
        let l2 = Arc::clone(&log);
        sim.spawn("b", move |_ctx| {
            l2.lock().push("b");
        });
        sim.run().unwrap();
        assert_eq!(*log.lock(), vec!["b", "a-after-yield"]);
    }
}
