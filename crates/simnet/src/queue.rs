//! Simulated mailboxes: message queues with per-message readiness times.
//!
//! A [`SimQueue`] is the communication primitive between simulated
//! processes. Senders never block; each message carries a *ready time*
//! (now + delivery delay) before which receivers cannot observe it —
//! this is how network latency reaches the receiving process.
//! Receivers block until a ready message exists (or the queue is closed
//! and drained).

use crate::sim::{ProcId, SimCtx, SimHandle};
use crate::time::SimTime;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

struct Item<T> {
    ready: SimTime,
    seq: u64,
    value: T,
}

impl<T> PartialEq for Item<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.ready, self.seq) == (other.ready, other.seq)
    }
}
impl<T> Eq for Item<T> {}
impl<T> PartialOrd for Item<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Item<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready, self.seq).cmp(&(other.ready, other.seq))
    }
}

struct QueueState<T> {
    items: BinaryHeap<Reverse<Item<T>>>,
    seq: u64,
    closed: bool,
    waiters: VecDeque<ProcId>,
}

/// A multi-producer, multi-consumer simulated mailbox.
///
/// Cloning shares the queue. Messages become visible at their ready
/// time; ties deliver in send order.
pub struct SimQueue<T> {
    state: Arc<Mutex<QueueState<T>>>,
    handle: SimHandle,
    name: String,
}

impl<T> Clone for SimQueue<T> {
    fn clone(&self) -> Self {
        SimQueue {
            state: Arc::clone(&self.state),
            handle: self.handle.clone(),
            name: self.name.clone(),
        }
    }
}

impl<T: Send + 'static> SimQueue<T> {
    /// Creates an empty queue bound to a simulation.
    pub fn new(handle: &SimHandle, name: &str) -> SimQueue<T> {
        SimQueue {
            state: Arc::new(Mutex::new(QueueState {
                items: BinaryHeap::new(),
                seq: 0,
                closed: false,
                waiters: VecDeque::new(),
            })),
            handle: handle.clone(),
            name: name.to_owned(),
        }
    }

    /// Sends a message that is immediately visible.
    pub fn send(&self, value: T) {
        self.send_delayed(value, Duration::ZERO);
    }

    /// Sends a message that becomes visible after `delay` (network
    /// latency, memcpy completion, …). Never blocks the sender.
    pub fn send_delayed(&self, value: T, delay: Duration) {
        let now = self.handle.now();
        let ready = now + delay;
        let waiters: Vec<ProcId> = {
            let mut st = self.state.lock();
            st.seq += 1;
            let seq = st.seq;
            st.items.push(Reverse(Item { ready, seq, value }));
            st.waiters.drain(..).collect()
        };
        let mut kernel = self.handle.kernel.lock();
        for w in waiters {
            kernel.schedule_wake(w, ready);
        }
    }

    /// Marks the queue closed; receivers drain the remaining messages
    /// and then observe `None`.
    pub fn close(&self) {
        let waiters: Vec<ProcId> = {
            let mut st = self.state.lock();
            st.closed = true;
            st.waiters.drain(..).collect()
        };
        let mut kernel = self.handle.kernel.lock();
        let now = kernel.now();
        for w in waiters {
            kernel.schedule_wake(w, now);
        }
    }

    /// Non-blocking receive of a ready message.
    pub fn try_recv(&self) -> Option<T> {
        let now = self.handle.now();
        let mut st = self.state.lock();
        if st
            .items
            .peek()
            .is_some_and(|Reverse(item)| item.ready <= now)
        {
            return st.items.pop().map(|Reverse(item)| item.value);
        }
        None
    }

    /// Blocking receive: waits until a message is ready; `None` when the
    /// queue is closed and fully drained.
    pub fn recv(&self, ctx: &SimCtx) -> Option<T> {
        loop {
            {
                let now = self.handle.now();
                let mut st = self.state.lock();
                match st.items.peek() {
                    Some(Reverse(item)) if item.ready <= now => {
                        return st.items.pop().map(|Reverse(item)| item.value);
                    }
                    Some(Reverse(item)) => {
                        // A message exists but is still in flight: wake
                        // ourselves when it lands.
                        let ready = item.ready;
                        st.waiters.push_back(ctx.pid());
                        drop(st);
                        self.handle.kernel.lock().schedule_wake(ctx.pid(), ready);
                    }
                    None if st.closed => return None,
                    None => {
                        st.waiters.push_back(ctx.pid());
                    }
                }
            }
            ctx.block(&format!("recv {}", self.name));
        }
    }

    /// Messages currently stored (ready or not).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Is the queue currently empty (ready or not)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Has `close` been called?
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use parking_lot::Mutex as PMutex;

    #[test]
    fn fifo_within_equal_ready_times() {
        let sim = Simulation::new();
        let q: SimQueue<i32> = SimQueue::new(sim.handle(), "q");
        let seen = Arc::new(PMutex::new(Vec::new()));
        let q2 = q.clone();
        sim.spawn("producer", move |_ctx| {
            for i in 0..5 {
                q2.send(i);
            }
            q2.close();
        });
        let seen2 = Arc::clone(&seen);
        sim.spawn("consumer", move |ctx| {
            while let Some(v) = q.recv(ctx) {
                seen2.lock().push(v);
            }
        });
        sim.run().unwrap();
        assert_eq!(*seen.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn delayed_delivery_blocks_receiver_until_ready() {
        let sim = Simulation::new();
        let q: SimQueue<&'static str> = SimQueue::new(sim.handle(), "q");
        let q2 = q.clone();
        sim.spawn("producer", move |_ctx| {
            q2.send_delayed("late", Duration::from_secs(2));
            q2.close();
        });
        let arrival = Arc::new(PMutex::new(SimTime::ZERO));
        let arrival2 = Arc::clone(&arrival);
        sim.spawn("consumer", move |ctx| {
            assert_eq!(q.recv(ctx), Some("late"));
            *arrival2.lock() = ctx.now();
            assert_eq!(q.recv(ctx), None);
        });
        let report = sim.run().unwrap();
        assert_eq!(*arrival.lock(), SimTime::from_secs_f64(2.0));
        assert_eq!(report.end_time, SimTime::from_secs_f64(2.0));
    }

    #[test]
    fn delays_reorder_messages_by_ready_time() {
        let sim = Simulation::new();
        let q: SimQueue<&'static str> = SimQueue::new(sim.handle(), "q");
        let q2 = q.clone();
        sim.spawn("producer", move |_ctx| {
            q2.send_delayed("slow", Duration::from_secs(5));
            q2.send_delayed("fast", Duration::from_secs(1));
            q2.close();
        });
        let seen = Arc::new(PMutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        sim.spawn("consumer", move |ctx| {
            while let Some(v) = q.recv(ctx) {
                seen2.lock().push(v);
            }
        });
        sim.run().unwrap();
        assert_eq!(*seen.lock(), vec!["fast", "slow"]);
    }

    #[test]
    fn close_unblocks_waiting_receiver() {
        let sim = Simulation::new();
        let q: SimQueue<i32> = SimQueue::new(sim.handle(), "q");
        let q2 = q.clone();
        sim.spawn("closer", move |ctx| {
            ctx.advance(Duration::from_secs(1));
            q2.close();
        });
        sim.spawn("consumer", move |ctx| {
            assert_eq!(q.recv(ctx), None);
        });
        sim.run().unwrap();
    }

    #[test]
    fn blocked_receiver_without_sender_is_a_deadlock() {
        let sim = Simulation::new();
        let q: SimQueue<i32> = SimQueue::new(sim.handle(), "orphan");
        sim.spawn("consumer", move |ctx| {
            q.recv(ctx);
        });
        match sim.run() {
            Err(crate::sim::SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 1);
                assert!(blocked[0].contains("consumer"));
                assert!(blocked[0].contains("orphan"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn try_recv_sees_only_ready_messages() {
        let sim = Simulation::new();
        let q: SimQueue<i32> = SimQueue::new(sim.handle(), "q");
        sim.spawn("p", move |ctx| {
            q.send_delayed(1, Duration::from_secs(1));
            assert_eq!(q.try_recv(), None);
            ctx.advance(Duration::from_secs(1));
            assert_eq!(q.try_recv(), Some(1));
            assert_eq!(q.try_recv(), None);
        });
        sim.run().unwrap();
    }

    #[test]
    fn multiple_consumers_share_the_stream() {
        let sim = Simulation::new();
        let q: SimQueue<u32> = SimQueue::new(sim.handle(), "q");
        let total = Arc::new(PMutex::new(0u32));
        for i in 0..3 {
            let q = q.clone();
            let total = Arc::clone(&total);
            sim.spawn(&format!("c{i}"), move |ctx| {
                while let Some(v) = q.recv(ctx) {
                    *total.lock() += v;
                }
            });
        }
        let q2 = q.clone();
        sim.spawn("producer", move |_ctx| {
            for i in 1..=10 {
                q2.send(i);
            }
            q2.close();
        });
        sim.run().unwrap();
        assert_eq!(*total.lock(), 55);
    }
}
