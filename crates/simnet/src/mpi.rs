//! Simulated MPI: rank processes with blocking point-to-point messages
//! and the collectives the paper's baseline needs.
//!
//! The prototype implementation of Distributed S-Net "is based on MPI
//! where numbers correspond to MPI task identifiers" (§III), and the
//! baseline is a C/MPI ray tracer. Both run here on the same simulated
//! transport: a rank is a simulated process pinned to a cluster node; a
//! send occupies the sender's NIC for the serialization time and lands
//! in the receiver's mailbox after the link latency.
//!
//! Message payloads are ordinary Rust values (the *simulated* wire size
//! is passed explicitly, so a payload can be an `Arc` without cheating
//! the network model).

use crate::cluster::Cluster;
use crate::queue::SimQueue;
use crate::sim::{SimCtx, SimHandle};
use std::collections::VecDeque;
use std::sync::Arc;

/// An MPI message: source rank, nominal wire size, payload.
#[derive(Debug, Clone)]
pub struct MpiMsg<M> {
    /// Sending rank.
    pub src: usize,
    /// Bytes charged on the simulated network.
    pub bytes: usize,
    /// The payload.
    pub payload: M,
}

/// A communicator: one mailbox per rank plus the rank→node map.
pub struct MpiComm<M> {
    mailboxes: Arc<Vec<SimQueue<MpiMsg<M>>>>,
    node_of_rank: Arc<Vec<usize>>,
    cluster: Cluster,
}

impl<M> Clone for MpiComm<M> {
    fn clone(&self) -> Self {
        MpiComm {
            mailboxes: Arc::clone(&self.mailboxes),
            node_of_rank: Arc::clone(&self.node_of_rank),
            cluster: self.cluster.clone(),
        }
    }
}

impl<M: Send + 'static> MpiComm<M> {
    /// Creates a communicator with `node_of_rank[r]` hosting rank `r`.
    pub fn new(handle: &SimHandle, cluster: &Cluster, node_of_rank: Vec<usize>) -> MpiComm<M> {
        assert!(!node_of_rank.is_empty(), "need at least one rank");
        for &n in &node_of_rank {
            assert!(n < cluster.len(), "rank placed on nonexistent node {n}");
        }
        let mailboxes = (0..node_of_rank.len())
            .map(|r| SimQueue::new(handle, &format!("mpi.rank{r}")))
            .collect();
        MpiComm {
            mailboxes: Arc::new(mailboxes),
            node_of_rank: Arc::new(node_of_rank),
            cluster: cluster.clone(),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.node_of_rank.len()
    }

    /// The cluster node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of_rank[rank]
    }

    /// The per-rank view used inside a rank process.
    pub fn rank_ctx(&self, rank: usize) -> MpiRank<M> {
        MpiRank {
            comm: self.clone(),
            rank,
            pending: VecDeque::new(),
        }
    }

    /// Spawns one process per rank on its node; `f` receives
    /// `(sim ctx, rank view)`.
    pub fn spawn_ranks<F>(&self, handle: &SimHandle, f: F)
    where
        F: Fn(&SimCtx, &mut MpiRank<M>) + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        for rank in 0..self.size() {
            let comm = self.clone();
            let f = Arc::clone(&f);
            handle.spawn(&format!("mpi-rank{rank}"), move |ctx| {
                let mut view = comm.rank_ctx(rank);
                f(ctx, &mut view);
            });
        }
    }
}

/// One rank's endpoint: blocking send/recv plus simple collectives.
pub struct MpiRank<M> {
    comm: MpiComm<M>,
    rank: usize,
    /// Messages received while waiting for a specific source.
    pending: VecDeque<MpiMsg<M>>,
}

impl<M: Send + 'static> MpiRank<M> {
    /// This rank's number.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The node hosting this rank.
    pub fn node(&self) -> usize {
        self.comm.node_of(self.rank)
    }

    /// Blocking send of `payload`, charging `bytes` on the network.
    ///
    /// Mirrors a buffered `MPI_Send`: the sender blocks for wire
    /// serialization (shared NIC) and the message lands after the link
    /// latency. Intra-node ranks pay the memory-copy cost instead.
    pub fn send(&self, ctx: &SimCtx, dst: usize, bytes: usize, payload: M) {
        let from = self.comm.node_of(self.rank);
        let to = self.comm.node_of(dst);
        let delay = self.comm.cluster.transfer(ctx, from, to, bytes);
        self.comm.mailboxes[dst].send_delayed(
            MpiMsg {
                src: self.rank,
                bytes,
                payload,
            },
            delay,
        );
    }

    /// Blocking receive from any source.
    pub fn recv_any(&mut self, ctx: &SimCtx) -> MpiMsg<M> {
        if let Some(m) = self.pending.pop_front() {
            return m;
        }
        self.comm.mailboxes[self.rank]
            .recv(ctx)
            .expect("mpi mailboxes are never closed")
    }

    /// Blocking receive from a specific source (later messages from
    /// other sources are buffered, preserving per-source order).
    pub fn recv_from(&mut self, ctx: &SimCtx, src: usize) -> MpiMsg<M> {
        if let Some(pos) = self.pending.iter().position(|m| m.src == src) {
            return self.pending.remove(pos).expect("position just found");
        }
        loop {
            let m = self.comm.mailboxes[self.rank]
                .recv(ctx)
                .expect("mpi mailboxes are never closed");
            if m.src == src {
                return m;
            }
            self.pending.push_back(m);
        }
    }
}

impl<M: Clone + Send + 'static> MpiRank<M> {
    /// Broadcast from `root`: root sends one copy to every other rank;
    /// the others block until it arrives. Returns the payload.
    pub fn bcast(&mut self, ctx: &SimCtx, root: usize, bytes: usize, payload: Option<M>) -> M {
        if self.rank == root {
            let value = payload.expect("root must supply the broadcast payload");
            for dst in 0..self.size() {
                if dst != root {
                    self.send(ctx, dst, bytes, value.clone());
                }
            }
            value
        } else {
            self.recv_from(ctx, root).payload
        }
    }

    /// Gather to `root`: every non-root rank sends `(bytes, payload)`;
    /// root returns all payloads indexed by rank (its own included).
    pub fn gather(
        &mut self,
        ctx: &SimCtx,
        root: usize,
        bytes: usize,
        payload: M,
    ) -> Option<Vec<M>> {
        if self.rank == root {
            let mut slots: Vec<Option<M>> = (0..self.size()).map(|_| None).collect();
            slots[root] = Some(payload);
            for _ in 0..self.size() - 1 {
                let m = self.recv_any(ctx);
                slots[m.src] = Some(m.payload);
            }
            Some(
                slots
                    .into_iter()
                    .map(|s| s.expect("all ranks sent"))
                    .collect(),
            )
        } else {
            self.send(ctx, root, bytes, payload);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::sim::Simulation;
    use crate::time::SimTime;
    use parking_lot::Mutex;
    use std::time::Duration;

    fn spec(nodes: usize) -> ClusterSpec {
        ClusterSpec {
            nodes,
            cpus_per_node: 1,
            cpu_ops_per_sec: 1e6,
            link_bandwidth: 1e6,
            link_latency: Duration::from_millis(10),
            mem_bandwidth: f64::INFINITY,
            quantum: Duration::from_millis(10),
        }
    }

    #[test]
    fn ping_pong_timing() {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), spec(2));
        let comm: MpiComm<u64> = MpiComm::new(sim.handle(), &cluster, vec![0, 1]);
        comm.spawn_ranks(sim.handle(), |ctx, mpi| {
            if mpi.rank() == 0 {
                mpi.send(ctx, 1, 1_000_000, 42);
                let reply = mpi.recv_from(ctx, 1);
                assert_eq!(reply.payload, 43);
            } else {
                let m = mpi.recv_from(ctx, 0);
                mpi.send(ctx, 0, 1_000_000, m.payload + 1);
            }
        });
        let report = sim.run().unwrap();
        // Each direction: 1 s wire + 10 ms latency.
        assert_eq!(report.end_time, SimTime::from_secs_f64(2.020));
    }

    #[test]
    fn intra_node_ranks_skip_the_nic() {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), spec(1));
        let comm: MpiComm<u64> = MpiComm::new(sim.handle(), &cluster, vec![0, 0]);
        comm.spawn_ranks(sim.handle(), |ctx, mpi| {
            if mpi.rank() == 0 {
                mpi.send(ctx, 1, 1_000_000, 1);
            } else {
                mpi.recv_from(ctx, 0);
            }
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::ZERO); // infinite mem bandwidth
    }

    #[test]
    fn recv_from_buffers_other_sources() {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), spec(3));
        let comm: MpiComm<&'static str> = MpiComm::new(sim.handle(), &cluster, vec![0, 1, 2]);
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let seen2 = std::sync::Arc::clone(&seen);
        comm.spawn_ranks(sim.handle(), move |ctx, mpi| match mpi.rank() {
            0 => {
                // Rank 2's message arrives first (rank 1 delays), but we
                // insist on rank 1 first.
                let a = mpi.recv_from(ctx, 1);
                let b = mpi.recv_from(ctx, 2);
                seen2.lock().push(a.payload);
                seen2.lock().push(b.payload);
            }
            1 => {
                ctx.advance(Duration::from_secs(1));
                mpi.send(ctx, 0, 8, "from-1");
            }
            2 => mpi.send(ctx, 0, 8, "from-2"),
            _ => unreachable!(),
        });
        sim.run().unwrap();
        assert_eq!(*seen.lock(), vec!["from-1", "from-2"]);
    }

    #[test]
    fn bcast_and_gather_round_trip() {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), spec(4));
        let comm: MpiComm<u64> = MpiComm::new(sim.handle(), &cluster, vec![0, 1, 2, 3]);
        let gathered = std::sync::Arc::new(Mutex::new(Vec::new()));
        let g2 = std::sync::Arc::clone(&gathered);
        comm.spawn_ranks(sim.handle(), move |ctx, mpi| {
            let seed = mpi.bcast(ctx, 0, 8, (mpi.rank() == 0).then_some(100));
            assert_eq!(seed, 100);
            let mine = seed + mpi.rank() as u64;
            if let Some(all) = mpi.gather(ctx, 0, 8, mine) {
                *g2.lock() = all;
            }
        });
        sim.run().unwrap();
        assert_eq!(*gathered.lock(), vec![100, 101, 102, 103]);
    }

    #[test]
    fn gather_timing_shares_root_nic() {
        // 3 remote ranks each send 1 MB to root: root's *receive* side is
        // not the bottleneck in this model, but each sender's NIC is
        // distinct, so arrival is ~1 s + latency, and the root finishes
        // after the last arrival.
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), spec(4));
        let comm: MpiComm<u8> = MpiComm::new(sim.handle(), &cluster, vec![0, 1, 2, 3]);
        comm.spawn_ranks(sim.handle(), |ctx, mpi| {
            mpi.gather(ctx, 0, 1_000_000, 0u8);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_secs_f64(1.010));
    }
}
