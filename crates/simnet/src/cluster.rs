//! The simulated compute cluster.
//!
//! Stands in for the paper's testbed: "an 8-node cluster where each
//! node contains two Intel PIII 1.4GHz CPUs and 1024MB of RAM. The
//! nodes are connected by a standard 100Mbit ethernet network" (§V).
//!
//! Each node has a FIFO pool of identical CPUs (compute charges virtual
//! time per abstract operation) and a single transmit NIC (messages
//! serialize onto the wire at link bandwidth, then arrive after the
//! link latency). Intra-node communication bypasses the NIC and only
//! pays an optional memory-copy cost.

use crate::resource::Resource;
use crate::sim::{SimCtx, SimHandle};
use crate::time::{bytes_duration, ops_duration};
use std::sync::Arc;
use std::time::Duration;

/// Static description of a homogeneous cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Number of compute nodes.
    pub nodes: usize,
    /// CPUs per node (the paper's nodes are dual-CPU).
    pub cpus_per_node: usize,
    /// Abstract operations per second per CPU. The unit is whatever the
    /// application's work counters count; `snet-dist` calibrates it.
    pub cpu_ops_per_sec: f64,
    /// Link bandwidth in bytes/second (100 Mbit ≈ 12.5 MB/s).
    pub link_bandwidth: f64,
    /// One-way message latency.
    pub link_latency: Duration,
    /// Intra-node memory bandwidth for record hand-off copies
    /// (bytes/second); `f64::INFINITY` disables the local copy cost.
    pub mem_bandwidth: f64,
    /// Preemption quantum: compute requests are sliced into bursts of
    /// at most this long, re-queueing FIFO between bursts — the
    /// round-robin time-sharing a preemptive OS gives co-scheduled
    /// processes. `Duration::MAX` disables slicing (run-to-completion).
    /// Without it, microsecond-scale runtime hops would wait behind
    /// multi-second render slices, which no real scheduler does.
    pub quantum: Duration,
}

impl ClusterSpec {
    /// The paper's testbed shape: dual-CPU nodes on 100 Mbit ethernet.
    ///
    /// `cpu_ops_per_sec` is normalized so that one abstract op is one
    /// "tracer operation" (≈ a handful of FLOPs); 40 Mops/s yields
    /// single-CPU full-frame render times in the few-hundred-second
    /// range at 3000×3000, matching the paper's magnitudes.
    pub fn paper_testbed(nodes: usize) -> ClusterSpec {
        ClusterSpec {
            nodes,
            cpus_per_node: 2,
            cpu_ops_per_sec: 40.0e6,
            link_bandwidth: 12.5e6,
            link_latency: Duration::from_micros(120),
            mem_bandwidth: 400.0e6,
            quantum: Duration::from_millis(10),
        }
    }

    /// Duration of `ops` abstract operations on one CPU.
    pub fn compute_time(&self, ops: u64) -> Duration {
        ops_duration(ops, self.cpu_ops_per_sec)
    }
}

struct NodeInner {
    cpu: Resource,
    nic: Resource,
}

/// A running cluster bound to a simulation.
#[derive(Clone)]
pub struct Cluster {
    spec: ClusterSpec,
    nodes: Arc<Vec<NodeInner>>,
}

impl Cluster {
    /// Instantiates the cluster's resources in a simulation.
    pub fn new(handle: &SimHandle, spec: ClusterSpec) -> Cluster {
        assert!(spec.nodes > 0, "cluster needs at least one node");
        let nodes = (0..spec.nodes)
            .map(|i| NodeInner {
                cpu: Resource::new(handle, &format!("node{i}.cpu"), spec.cpus_per_node),
                nic: Resource::new(handle, &format!("node{i}.nic"), 1),
            })
            .collect();
        Cluster {
            spec,
            nodes: Arc::new(nodes),
        }
    }

    /// The cluster's static description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a zero-node cluster (never constructed; for clippy).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Charges `ops` abstract operations of CPU time on `node`,
    /// queueing FIFO behind other work on that node's CPUs and
    /// re-queueing every [`ClusterSpec::quantum`] (preemptive
    /// time-sharing).
    pub fn compute(&self, ctx: &SimCtx, node: usize, ops: u64) {
        if ops == 0 {
            return;
        }
        self.compute_time_on(ctx, node, self.spec.compute_time(ops));
    }

    /// Charges a fixed CPU-time duration on `node`, in quantum slices.
    pub fn compute_time_on(&self, ctx: &SimCtx, node: usize, d: Duration) {
        let mut remaining = d;
        let cpu = &self.nodes[node].cpu;
        while !remaining.is_zero() {
            let slice = remaining.min(self.spec.quantum);
            // Short bursts run to completion without a trailing requeue.
            if slice == remaining {
                cpu.execute(ctx, remaining);
                return;
            }
            cpu.execute(ctx, slice);
            remaining -= slice;
        }
    }

    /// Models sending `bytes` from `from` to `to`.
    ///
    /// Cross-node: the calling process occupies `from`'s transmit NIC
    /// for the serialization time, and the returned duration (the link
    /// latency) is the extra delivery delay the caller should apply to
    /// the message. Intra-node: the caller pays a memory-copy delay
    /// inline and the message is immediately deliverable.
    pub fn transfer(&self, ctx: &SimCtx, from: usize, to: usize, bytes: usize) -> Duration {
        if from == to {
            let copy = bytes_duration(bytes, self.spec.mem_bandwidth);
            ctx.advance(copy);
            return Duration::ZERO;
        }
        let wire = bytes_duration(bytes, self.spec.link_bandwidth);
        self.nodes[from].nic.execute(ctx, wire);
        self.spec.link_latency
    }

    /// Direct access to a node's CPU pool (for gauges in tests).
    pub fn cpu(&self, node: usize) -> &Resource {
        &self.nodes[node].cpu
    }

    /// Per-node CPU busy time so far (the utilization numerator; divide
    /// by `makespan * cpus_per_node` for a utilization fraction).
    pub fn cpu_busy(&self) -> Vec<Duration> {
        self.nodes.iter().map(|n| n.cpu.busy_time()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SimQueue;
    use crate::sim::Simulation;
    use crate::time::SimTime;

    fn small_spec() -> ClusterSpec {
        ClusterSpec {
            nodes: 2,
            cpus_per_node: 2,
            cpu_ops_per_sec: 1e6,
            link_bandwidth: 1e6,
            link_latency: Duration::from_millis(1),
            mem_bandwidth: 100e6,
            quantum: Duration::from_millis(10),
        }
    }

    #[test]
    fn compute_charges_ops_over_cpus() {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), small_spec());
        // 4 jobs of 1e6 ops on a 2-CPU node at 1e6 ops/s → 2 s.
        for i in 0..4 {
            let c = cluster.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                c.compute(ctx, 0, 1_000_000);
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_secs_f64(2.0));
    }

    #[test]
    fn cross_node_transfer_charges_wire_and_latency() {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), small_spec());
        let q: SimQueue<u64> = SimQueue::new(sim.handle(), "wire");
        let (c, q2) = (cluster.clone(), q.clone());
        sim.spawn("sender", move |ctx| {
            // 1 MB at 1 MB/s = 1 s serialization + 1 ms latency.
            let delay = c.transfer(ctx, 0, 1, 1_000_000);
            q2.send_delayed(7, delay);
            q2.close();
        });
        let arrived = std::sync::Arc::new(parking_lot::Mutex::new(SimTime::ZERO));
        let arrived2 = std::sync::Arc::clone(&arrived);
        sim.spawn("receiver", move |ctx| {
            assert_eq!(q.recv(ctx), Some(7));
            *arrived2.lock() = ctx.now();
        });
        sim.run().unwrap();
        assert_eq!(*arrived.lock(), SimTime::from_secs_f64(1.001));
    }

    #[test]
    fn nic_serializes_concurrent_senders() {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), small_spec());
        // Two 1 MB messages from node 0 share the single NIC → the wire
        // time alone is 2 s.
        for i in 0..2 {
            let c = cluster.clone();
            sim.spawn(&format!("s{i}"), move |ctx| {
                let _ = c.transfer(ctx, 0, 1, 1_000_000);
            });
        }
        let report = sim.run().unwrap();
        assert_eq!(report.end_time, SimTime::from_secs_f64(2.0));
    }

    #[test]
    fn local_transfer_pays_memcpy_only() {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), small_spec());
        let c = cluster.clone();
        sim.spawn("s", move |ctx| {
            let delay = c.transfer(ctx, 1, 1, 100_000_000);
            assert_eq!(delay, Duration::ZERO);
        });
        let report = sim.run().unwrap();
        // 100 MB at 100 MB/s memcpy = 1 s, no latency, no NIC.
        assert_eq!(report.end_time, SimTime::from_secs_f64(1.0));
    }

    #[test]
    fn paper_testbed_shape() {
        let spec = ClusterSpec::paper_testbed(8);
        assert_eq!(spec.nodes, 8);
        assert_eq!(spec.cpus_per_node, 2);
        assert!(spec.link_bandwidth > 12e6 && spec.link_bandwidth < 13e6);
    }
}
