//! Property test: the simulator is deterministic.
//!
//! Random mixes of computing, messaging, and resource-contending
//! processes must produce identical event logs, end times and side
//! effects across repeated runs. This is the property that makes every
//! benchmark figure in the workspace reproducible.

use parking_lot::Mutex;
use proptest::prelude::*;
use snet_simnet::{Cluster, ClusterSpec, MpiComm, Resource, SimQueue, SimTime, Simulation};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Job {
    node: usize,
    ops: u64,
    send_to: Option<usize>,
    bytes: usize,
}

fn arb_job(nodes: usize) -> impl Strategy<Value = Job> {
    (
        0..nodes,
        1u64..500_000,
        prop::option::of(0..nodes),
        1usize..200_000,
    )
        .prop_map(|(node, ops, send_to, bytes)| Job {
            node,
            ops,
            send_to,
            bytes,
        })
}

fn spec(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        nodes,
        cpus_per_node: 2,
        cpu_ops_per_sec: 1e6,
        link_bandwidth: 2e6,
        link_latency: Duration::from_micros(500),
        mem_bandwidth: 50e6,
        quantum: Duration::from_millis(10),
    }
}

type EventSig = Vec<(u64, u32)>;
type RecvLog = Vec<(usize, usize)>;

/// Runs a workload and returns `(end time, event log signature, receive log)`.
fn run_workload(nodes: usize, jobs: &[Job]) -> (SimTime, EventSig, RecvLog) {
    let sim = Simulation::new();
    let cluster = Cluster::new(sim.handle(), spec(nodes));
    let inbox: Vec<SimQueue<(usize, usize)>> = (0..nodes)
        .map(|n| SimQueue::new(sim.handle(), &format!("inbox{n}")))
        .collect();
    let recv_log = Arc::new(Mutex::new(Vec::new()));

    // One collector per node, draining its inbox.
    for (n, q) in inbox.iter().enumerate() {
        let q = q.clone();
        let log = Arc::clone(&recv_log);
        sim.spawn(&format!("collector{n}"), move |ctx| {
            while let Some(msg) = q.recv(ctx) {
                log.lock().push(msg);
            }
        });
    }

    let inbox = Arc::new(inbox);
    let mut producer_counts = vec![0usize; nodes];
    for job in jobs {
        if let Some(dst) = job.send_to {
            producer_counts[dst] += 1;
        }
    }
    let closers: Arc<Vec<Mutex<usize>>> =
        Arc::new(producer_counts.iter().map(|&c| Mutex::new(c)).collect());
    // Close inboxes with no producers immediately.
    for (n, q) in inbox.iter().enumerate() {
        if producer_counts[n] == 0 {
            q.close();
        }
    }

    for (i, job) in jobs.iter().enumerate() {
        let cluster = cluster.clone();
        let inbox = Arc::clone(&inbox);
        let closers = Arc::clone(&closers);
        let job = job.clone();
        sim.spawn(&format!("job{i}"), move |ctx| {
            cluster.compute(ctx, job.node, job.ops);
            if let Some(dst) = job.send_to {
                let delay = cluster.transfer(ctx, job.node, dst, job.bytes);
                inbox[dst].send_delayed((job.node, job.bytes), delay);
                let mut remaining = closers[dst].lock();
                *remaining -= 1;
                if *remaining == 0 {
                    inbox[dst].close();
                }
            }
        });
    }

    let report = sim.run().expect("workload must terminate");
    let sig = report
        .event_log
        .iter()
        .map(|(t, p)| (t.as_nanos(), p.index()))
        .collect();
    let log = Arc::try_unwrap(recv_log)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    (report.end_time, sig, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn identical_runs_produce_identical_histories(
        nodes in 1usize..5,
        jobs in prop::collection::vec(arb_job(4), 1..20),
    ) {
        let jobs: Vec<Job> = jobs
            .into_iter()
            .map(|mut j| {
                j.node %= nodes;
                j.send_to = j.send_to.map(|d| d % nodes);
                j
            })
            .collect();
        let a = run_workload(nodes, &jobs);
        let b = run_workload(nodes, &jobs);
        prop_assert_eq!(a.0, b.0, "end times differ");
        prop_assert_eq!(a.1, b.1, "event logs differ");
        prop_assert_eq!(a.2, b.2, "receive logs differ");
    }

    #[test]
    fn resource_conservation(
        capacity in 1usize..4,
        durations in prop::collection::vec(1u64..1000, 1..16),
    ) {
        // Total busy time is conserved: makespan * capacity >= sum of
        // durations, and makespan >= max duration.
        let sim = Simulation::new();
        let pool = Resource::new(sim.handle(), "pool", capacity);
        for (i, ms) in durations.iter().copied().enumerate() {
            let pool = pool.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                pool.execute(ctx, Duration::from_millis(ms));
            });
        }
        let report = sim.run().unwrap();
        let total: u64 = durations.iter().sum();
        let longest: u64 = durations.iter().copied().max().unwrap_or(0);
        let makespan_ms = report.end_time.as_nanos() / 1_000_000;
        prop_assert!(makespan_ms >= longest);
        prop_assert!(makespan_ms.saturating_mul(capacity as u64) >= total);
        // With FIFO work-conservation the makespan never exceeds the
        // serial sum.
        prop_assert!(makespan_ms <= total);
    }

    #[test]
    fn mpi_gather_collects_every_rank(ranks in 2usize..8) {
        let sim = Simulation::new();
        let cluster = Cluster::new(sim.handle(), spec(ranks));
        let comm: MpiComm<usize> =
            MpiComm::new(sim.handle(), &cluster, (0..ranks).collect());
        let result = Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::clone(&result);
        comm.spawn_ranks(sim.handle(), move |ctx, mpi| {
            let payload = mpi.rank() * 10;
            if let Some(all) = mpi.gather(ctx, 0, 64, payload) {
                *r2.lock() = all;
            }
        });
        sim.run().unwrap();
        let expected: Vec<usize> = (0..ranks).map(|r| r * 10).collect();
        prop_assert_eq!(result.lock().clone(), expected);
    }
}
