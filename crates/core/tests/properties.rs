//! Property tests for the S-Net type system and record semantics.
//!
//! The laws under test are the ones the paper's §III relies on:
//! structural subtyping is a partial order compatible with matching;
//! flow inheritance loses nothing and overrides correctly; filters
//! produce records conforming to their declared shape; synchrocells
//! neither duplicate nor invent labels.

use proptest::prelude::*;
use snet_core::filter::{FilterSpec, OutputTemplate};
use snet_core::{
    flow, BinOp, Label, Pattern, Record, SyncOutcome, SyncSpec, TagExpr, Value, Variant,
};

const FIELDS: [&str; 5] = ["a", "b", "c", "d", "e"];
const TAGS: [&str; 4] = ["t", "u", "v", "w"];

fn arb_variant() -> impl Strategy<Value = Variant> {
    (
        prop::collection::btree_set(0usize..FIELDS.len(), 0..4),
        prop::collection::btree_set(0usize..TAGS.len(), 0..3),
    )
        .prop_map(|(fs, ts)| {
            Variant::parse_labels(
                &fs.iter().map(|&i| FIELDS[i]).collect::<Vec<_>>(),
                &ts.iter().map(|&i| TAGS[i]).collect::<Vec<_>>(),
            )
        })
}

fn arb_record() -> impl Strategy<Value = Record> {
    (
        prop::collection::btree_map(0usize..FIELDS.len(), 0i64..100, 0..5),
        prop::collection::btree_map(0usize..TAGS.len(), -10i64..10, 0..4),
    )
        .prop_map(|(fs, ts)| {
            let mut r = Record::new();
            for (i, v) in fs {
                r.set_field(FIELDS[i], Value::Int(v));
            }
            for (i, v) in ts {
                r.set_tag(TAGS[i], v);
            }
            r
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- subtyping is a partial order --------------------------------

    #[test]
    fn subtyping_reflexive(v in arb_variant()) {
        prop_assert!(v.is_subtype_of(&v));
    }

    #[test]
    fn subtyping_antisymmetric(a in arb_variant(), b in arb_variant()) {
        if a.is_subtype_of(&b) && b.is_subtype_of(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn subtyping_transitive(a in arb_variant(), b in arb_variant(), c in arb_variant()) {
        // Build a chain by unioning, then check transitivity on it plus
        // whatever the raw triple satisfies.
        let ab = a.union(&b);
        let abc = ab.union(&c);
        prop_assert!(abc.is_subtype_of(&ab));
        prop_assert!(ab.is_subtype_of(&a));
        prop_assert!(abc.is_subtype_of(&a)); // the chained instance
        if a.is_subtype_of(&b) && b.is_subtype_of(&c) {
            prop_assert!(a.is_subtype_of(&c));
        }
    }

    // ---- matching is compatible with subtyping -----------------------

    #[test]
    fn subtype_records_match_supertype_patterns(r in arb_record(), v in arb_variant()) {
        // If the record's own variant is a subtype of v, then v accepts
        // the record — "a component expecting {a,b} can also accept
        // {a,c,b}" (§III).
        if r.variant().is_subtype_of(&v) {
            prop_assert!(v.accepts(&r));
        }
        // And conversely: acceptance is exactly the subtype relation on
        // the record's variant.
        prop_assert_eq!(v.accepts(&r), r.variant().is_subtype_of(&v));
    }

    #[test]
    fn match_score_monotone_in_specificity(r in arb_record(), v in arb_variant(), w in arb_variant()) {
        // If both match, the more specific (larger) variant never scores
        // lower — the "better match" routing rule.
        let u = v.union(&w);
        if let (Some(sv), Some(su)) = (v.match_score(&r), u.match_score(&r)) {
            prop_assert!(su >= sv, "union {su} vs part {sv}");
        }
    }

    // ---- flow inheritance --------------------------------------------

    #[test]
    fn split_partitions_exactly(r in arb_record(), v in arb_variant()) {
        let (consumed, rest) = flow::split(&r, &v);
        // No overlap, full coverage.
        prop_assert_eq!(consumed.len() + rest.len(), r.len());
        let mut merged = consumed.clone();
        merged.absorb(&rest);
        prop_assert_eq!(merged, r.clone());
        // Consumed part carries only labels of v.
        for (l, _) in consumed.fields() {
            prop_assert!(v.has_field(l));
        }
        for (l, _) in consumed.tags() {
            prop_assert!(v.has_tag(l));
        }
    }

    #[test]
    fn inheritance_preserves_uninvolved_labels(r in arb_record(), v in arb_variant(), out in arb_record()) {
        let (_, rest) = flow::split(&r, &v);
        let mut enriched = out.clone();
        flow::inherit(&mut enriched, &rest);
        // Every label of `out` survives with its own value (override).
        for (l, val) in out.fields() {
            prop_assert_eq!(enriched.field(l), Some(val));
        }
        for (l, val) in out.tags() {
            prop_assert_eq!(enriched.tag(l), Some(val));
        }
        // Every uninvolved label of `r` reaches the output.
        for (l, val) in rest.fields() {
            if !out.has_field(l) {
                prop_assert_eq!(enriched.field(l), Some(val));
            }
        }
        for (l, val) in rest.tags() {
            if !out.has_tag(l) {
                prop_assert_eq!(enriched.tag(l), Some(val));
            }
        }
        // Nothing else appears.
        prop_assert!(enriched.len() <= out.len() + rest.len());
    }

    // ---- filters ------------------------------------------------------

    #[test]
    fn filter_outputs_conform_to_declared_shape(r in arb_record(), v in arb_variant()) {
        // [ v -> {<t' = 1>} ; {} ]: outputs must carry the template
        // labels plus only inherited labels.
        let spec = FilterSpec::new(
            Pattern::from_variant(v.clone()),
            vec![
                OutputTemplate::empty().set_tag("fresh", TagExpr::Const(1)),
                OutputTemplate::empty(),
            ],
        );
        if !spec.pattern.matches(&r) {
            return Ok(());
        }
        let outs = spec.apply(&r).unwrap();
        prop_assert_eq!(outs.len(), 2);
        prop_assert_eq!(outs[0].tag("fresh"), Some(1));
        let fresh = Label::new("fresh");
        for out in &outs {
            for (l, _) in out.fields() {
                // Field labels come only from inheritance (the template
                // declares none).
                prop_assert!(r.has_field(l) && !v.has_field(l), "leaked field {l}");
            }
            for (l, _) in out.tags() {
                prop_assert!(
                    l == fresh || (r.has_tag(l) && !v.has_tag(l)),
                    "leaked tag {l}"
                );
            }
        }
    }

    #[test]
    fn guard_evaluation_never_panics(r in arb_record()) {
        // Guards over arbitrary tag combinations either evaluate or
        // report missing tags / division by zero — no panics.
        let g = TagExpr::bin(
            BinOp::Div,
            TagExpr::tag("t"),
            TagExpr::bin(BinOp::Add, TagExpr::tag("u"), TagExpr::Const(0)),
        );
        let p = Pattern::guarded(Variant::empty(), g);
        let _ = p.matches(&r); // bool either way
    }

    // ---- synchrocells ---------------------------------------------------

    #[test]
    fn sync_never_invents_or_duplicates_labels(records in prop::collection::vec(arb_record(), 1..12)) {
        let spec = SyncSpec::new(vec![
            Pattern::from_variant(Variant::parse_labels(&["a"], &[])),
            Pattern::from_variant(Variant::parse_labels(&["b"], &[])),
        ]);
        let mut st = spec.new_state();
        let mut stored_labels: Vec<Label> = Vec::new();
        for r in records {
            let labels: Vec<Label> = r
                .fields()
                .map(|(l, _)| l)
                .chain(r.tags().map(|(l, _)| l))
                .collect();
            match st.push(&spec, r) {
                SyncOutcome::Stored => stored_labels.extend(labels),
                SyncOutcome::Passed(out) => {
                    // Pass-through is exact.
                    let out_labels: Vec<Label> = out
                        .fields()
                        .map(|(l, _)| l)
                        .chain(out.tags().map(|(l, _)| l))
                        .collect();
                    prop_assert_eq!(out_labels, labels);
                }
                SyncOutcome::Fired(m) => {
                    // The merge's labels are exactly the union of the
                    // stored record's and this record's.
                    for (l, _) in m.fields() {
                        prop_assert!(
                            stored_labels.contains(&l) || labels.contains(&l),
                            "invented field {l}"
                        );
                    }
                    for (l, _) in m.tags() {
                        prop_assert!(
                            stored_labels.contains(&l) || labels.contains(&l),
                            "invented tag {l}"
                        );
                    }
                }
            }
        }
    }
}
