//! Error type shared across the workspace.

use crate::diag::{DiagCode, Diagnostic};
use crate::label::Label;
use std::fmt;

/// Errors raised by the S-Net core semantics, language front end and
/// runtime engines.
#[derive(Debug, Clone, PartialEq)]
pub enum SnetError {
    /// A tag expression referenced a tag the record does not carry.
    MissingTag(Label),
    /// A component needed a field the record does not carry.
    MissingField(Label),
    /// Integer division or modulo by zero in a tag expression.
    DivisionByZero,
    /// A record failed to match where the type system said it must.
    TypeMismatch {
        /// What the component expected.
        expected: String,
        /// What arrived.
        got: String,
    },
    /// A box function failed.
    BoxFailure {
        /// Box name.
        name: String,
        /// Human-readable cause.
        cause: String,
    },
    /// A box produced a record not covered by its declared output type
    /// (only raised in strict mode).
    OutputMismatch {
        /// Box name.
        name: String,
        /// The offending record, pretty-printed.
        record: String,
    },
    /// Parse error from the language front end.
    Parse {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// Message.
        msg: String,
    },
    /// Static network checking error.
    Check(String),
    /// The static analyzer rejected the network before it ran: each
    /// diagnostic carries a stable `SNAxxx` code (see
    /// [`crate::diag::DiagCode`]).
    Analysis(Vec<Diagnostic>),
    /// Engine-level failure (channel teardown, poisoned state, …).
    Engine(String),
    /// The run was cancelled cooperatively before completing.
    Cancelled,
    /// The run's deadline expired before completing.
    DeadlineExceeded,
}

impl SnetError {
    /// The stable diagnostic code this runtime error corresponds to, if
    /// any — the same `SNAxxx` codes the static analyzer emits, so a
    /// runtime failure and a lint report cross-reference. Routing-shaped
    /// errors map as:
    ///
    /// * no parallel branch accepted a record → [`DiagCode::UnroutableAtParallel`]
    /// * a split dispatch found no index tag → [`DiagCode::SplitMissingTag`]
    /// * a filter/tag expression hit a missing label → [`DiagCode::UnboundLabel`]
    pub fn diag_code(&self) -> Option<DiagCode> {
        match self {
            SnetError::TypeMismatch { .. } => Some(DiagCode::UnroutableAtParallel),
            SnetError::MissingTag(_) => Some(DiagCode::SplitMissingTag),
            SnetError::MissingField(_) => Some(DiagCode::UnboundLabel),
            SnetError::Analysis(diags) => diags.first().map(|d| d.code),
            _ => None,
        }
    }
}

impl fmt::Display for SnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnetError::MissingTag(l) => write!(f, "record carries no tag <{l}>"),
            SnetError::MissingField(l) => write!(f, "record carries no field {l}"),
            SnetError::DivisionByZero => write!(f, "division by zero in tag expression"),
            SnetError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            SnetError::BoxFailure { name, cause } => write!(f, "box {name} failed: {cause}"),
            SnetError::OutputMismatch { name, record } => {
                write!(
                    f,
                    "box {name} emitted a record outside its output type: {record}"
                )
            }
            SnetError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            SnetError::Check(msg) => write!(f, "network check error: {msg}"),
            SnetError::Analysis(diags) => {
                write!(f, "static analysis rejected the network:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            SnetError::Engine(msg) => write!(f, "engine error: {msg}"),
            SnetError::Cancelled => write!(f, "run cancelled"),
            SnetError::DeadlineExceeded => write!(f, "run deadline exceeded"),
        }
    }
}

impl std::error::Error for SnetError {}

/// Extracts a human-readable cause from a panic payload, handling both
/// `&str` (literal `panic!("msg")`) and `String` (formatted
/// `panic!("{}", dynamic)`) payloads. Shared by every engine's
/// catch-site so a formatted panic never degrades to
/// "non-string panic payload".
pub fn panic_cause(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SnetError::MissingTag(Label::new("cnt"));
        assert_eq!(e.to_string(), "record carries no tag <cnt>");
        let e = SnetError::Parse {
            line: 3,
            col: 7,
            msg: "expected '}'".into(),
        };
        assert!(e.to_string().contains("3:7"));
    }
}
