//! Interned record labels.
//!
//! S-Net labels name fields and tags. Every component instance compares
//! labels on every record it handles, so labels are interned once into a
//! global table and afterwards compared as plain `u32`s.

use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::OnceLock;

/// An interned label (field or tag name).
///
/// Construction goes through a global interner, so two labels with the
/// same spelling are always `==` and ordering is stable within a process
/// (interning order). Use [`Label::as_str`] to recover the spelling.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Multiply-xor string hasher (FxHash-style) for the thread-local label
/// cache. Label spellings are a handful of bytes, so hashing throughput
/// beats distribution quality; collisions only cost a probe.
#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x517c_c1b7_2722_0a95;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let word = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
        }
        let mut tail = bytes.len() as u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | b as u64;
        }
        self.0 = (self.0.rotate_left(5) ^ tail).wrapping_mul(SEED);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

thread_local! {
    /// Per-thread mirror of the global table. Boxes and filters written
    /// against string labels (`r.field("x")`) intern on every record, so
    /// the per-record path must not take the global lock or pay SipHash.
    /// The mirror can never go stale: the global table is append-only
    /// and an id, once assigned, is final.
    static LOCAL: RefCell<HashMap<&'static str, u32, BuildHasherDefault<FxHasher>>> =
        RefCell::new(HashMap::default());
}

/// Cap on the per-thread mirror. Real topologies use a few dozen
/// spellings, but a soak run interning a million *distinct* labels
/// (e.g. synthesized per-record names) must not grow every worker's
/// mirror without bound. At the cap the mirror is reset — correctness
/// is unaffected (misses fall through to the global table), the next
/// few lookups just pay the lock again.
const LOCAL_CACHE_CAP: usize = 4096;

impl Label {
    /// Interns `name` and returns its label.
    pub fn new(name: &str) -> Label {
        // Hot path: thread-local hit, no lock, no SipHash.
        if let Some(id) = LOCAL.with(|m| m.borrow().get(name).copied()) {
            return Label(id);
        }
        let label = Label::intern_global(name);
        // Key the local mirror by the interner's leaked spelling so the
        // miss path stays allocation-free too.
        let spelling = label.as_str();
        LOCAL.with(|m| {
            let mut m = m.borrow_mut();
            if m.len() >= LOCAL_CACHE_CAP {
                m.clear();
            }
            m.insert(spelling, label.0);
        });
        label
    }

    /// Entries in this thread's intern mirror (test/diagnostic hook for
    /// the cache bound).
    #[doc(hidden)]
    pub fn local_cache_len() -> usize {
        LOCAL.with(|m| m.borrow().len())
    }

    /// The global, cross-thread interning slow path.
    fn intern_global(name: &str) -> Label {
        let table = interner();
        // Fast path under the read lock only.
        if let Some(&id) = table.read().by_name.get(name) {
            return Label(id);
        }
        // The read lock was released above, so another thread may have
        // interned the same spelling in the meantime: the lookup MUST be
        // repeated under the write lock before inserting, or two ids
        // could be handed out for one spelling (and `==` on labels would
        // silently break).
        let mut w = table.write();
        if let Some(&id) = w.by_name.get(name) {
            return Label(id);
        }
        // Labels live for the whole process; leaking keeps lookups
        // allocation-free on the hot path.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = w.names.len() as u32;
        w.names.push(leaked);
        w.by_name.insert(leaked, id);
        Label(id)
    }

    /// The spelling this label was interned with.
    pub fn as_str(&self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// Raw interner index (stable within a process run).
    pub fn id(&self) -> u32 {
        self.0
    }
}

// Order labels by spelling so that printed types and BTree iteration are
// independent of interning order (which differs between test runs).
impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

/// Interns several labels at once: `labels!["a", "b"]`.
#[macro_export]
macro_rules! labels {
    ($($name:expr),* $(,)?) => {
        [$($crate::label::Label::new($name)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_label() {
        assert_eq!(Label::new("pic"), Label::new("pic"));
        assert_ne!(Label::new("pic"), Label::new("chunk"));
    }

    #[test]
    fn round_trips_spelling() {
        assert_eq!(Label::new("scene").as_str(), "scene");
        assert_eq!(Label::new("").as_str(), "");
        assert_eq!(Label::new("UTF-8 ünïcode").as_str(), "UTF-8 ünïcode");
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse lexicographic order on purpose.
        let z = Label::new("zzz-order");
        let a = Label::new("aaa-order");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Label::new("concurrent-label").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn thread_local_cache_agrees_with_global_interner() {
        // Repeated interning (the per-record hot path) must keep
        // returning the id the global table assigned — including for
        // spellings longer than one FxHasher chunk and for spellings
        // first interned by a *different* thread.
        let long = "a-label-spelling-well-past-eight-bytes";
        let first = Label::new(long);
        for _ in 0..1000 {
            assert_eq!(Label::new(long), first);
        }
        let from_other_thread = std::thread::spawn(move || Label::new(long)).join().unwrap();
        assert_eq!(from_other_thread, first);
        assert_eq!(first.as_str(), long);
    }

    #[test]
    fn local_cache_is_bounded_and_stays_correct_after_reset() {
        // Interning far more distinct spellings than the cap from one
        // thread must leave the per-thread mirror bounded...
        std::thread::spawn(|| {
            let mut firsts = Vec::new();
            for i in 0..(LOCAL_CACHE_CAP + 100) {
                firsts.push(Label::new(&format!("bound-label-{i}")));
            }
            assert!(
                Label::local_cache_len() <= LOCAL_CACHE_CAP,
                "mirror grew past the cap: {}",
                Label::local_cache_len()
            );
            // ...and evicted spellings must still resolve to the id the
            // global table assigned (the reset is invisible to callers).
            for (i, first) in firsts.iter().enumerate() {
                assert_eq!(Label::new(&format!("bound-label-{i}")), *first);
            }
        })
        .join()
        .unwrap();
    }

    #[test]
    fn racing_first_interns_agree_on_one_id() {
        // Many threads race to intern the same *fresh* spellings
        // simultaneously — the double-check under the write lock must
        // guarantee one id per spelling. (A check-then-act race here
        // would make equal spellings compare unequal forever after.)
        use std::sync::Barrier;
        const THREADS: usize = 16;
        const LABELS: usize = 32;
        let barrier = std::sync::Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    (0..LABELS)
                        .map(|i| Label::new(&format!("race-label-{i}")).id())
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        let per_thread: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &per_thread {
            assert_eq!(ids, &per_thread[0], "every thread must see the same ids");
        }
        // And the spellings round-trip.
        for i in 0..LABELS {
            assert_eq!(
                Label::new(&format!("race-label-{i}")).as_str(),
                format!("race-label-{i}")
            );
        }
    }
}
